"""Human-readable summaries of a trace: the phase tree and hot outputs.

Consumes the canonical record list (``Trace.records()`` or
:func:`repro.obs.export.read_trace`) and aggregates spans by their
*name path* — the chain of span names from the root — so repeated
phases (one ``eco.output`` per failing output, one ``sat.validate``
per supervised query, ...) collapse into one row with call counts,
total wall time, and the SAT-conflict / BDD-node deltas attributed to
that phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple


@dataclass
class PhaseNode:
    """Aggregated statistics of one phase (a span name path)."""

    name: str
    depth: int
    calls: int = 0
    seconds: float = 0.0
    sat_conflicts: int = 0
    bdd_nodes: int = 0
    children: "List[PhaseNode]" = field(default_factory=list)


@dataclass
class HotOutput:
    """One per-output rectification, for the hottest-outputs table."""

    output: str
    seconds: float
    how: str
    sat_conflicts: int
    bdd_nodes: int


@dataclass
class TraceSummary:
    """Everything the ``repro trace`` renderer needs."""

    name: str
    wall_seconds: float
    roots: List[PhaseNode]
    hot_outputs: List[HotOutput]
    events: List[Dict[str, Any]]
    counters: Dict[str, int]
    degraded: bool
    #: fraction of root wall time covered by its direct child phases
    coverage: float

    def top_phases(self, limit: int = 6) -> List[PhaseNode]:
        """Flattened phases ordered by total time, deepest-first rows
        excluded in favor of their parents when times tie exactly."""
        flat: List[PhaseNode] = []

        def walk(node: PhaseNode) -> None:
            flat.append(node)
            for c in node.children:
                walk(c)

        for r in self.roots:
            walk(r)
        flat.sort(key=lambda n: -n.seconds)
        return flat[:limit]


def summarize(records: Sequence[Dict[str, Any]]) -> TraceSummary:
    """Aggregate a record list into a :class:`TraceSummary`."""
    meta: Dict[str, Any] = {}
    spans: List[Dict[str, Any]] = []
    events: List[Dict[str, Any]] = []
    for rec in records:
        kind = rec.get("type")
        if kind == "meta":
            meta = rec
        elif kind == "span":
            spans.append(rec)
        elif kind == "event":
            events.append(rec)

    by_id = {s["id"]: s for s in spans}

    def name_path(span: Dict[str, Any]) -> Tuple[str, ...]:
        path = [span["name"]]
        parent = span.get("parent")
        seen = set()
        while parent is not None and parent in by_id and parent not in seen:
            seen.add(parent)
            node = by_id[parent]
            path.append(node["name"])
            parent = node.get("parent")
        return tuple(reversed(path))

    nodes: Dict[Tuple[str, ...], PhaseNode] = {}
    for span in spans:
        path = name_path(span)
        node = nodes.get(path)
        if node is None:
            node = PhaseNode(name=path[-1], depth=len(path) - 1)
            nodes[path] = node
        node.calls += 1
        node.seconds += span.get("dur", 0.0)
        counters = span.get("counters") or {}
        node.sat_conflicts += counters.get("sat_conflicts_spent", 0)
        node.bdd_nodes += counters.get("bdd_nodes_spent", 0)

    roots: List[PhaseNode] = []
    for path in sorted(nodes, key=lambda p: (len(p), p)):
        node = nodes[path]
        if len(path) == 1:
            roots.append(node)
        else:
            parent = nodes.get(path[:-1])
            if parent is not None:
                parent.children.append(node)
            else:
                roots.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: -n.seconds)
    roots.sort(key=lambda n: -n.seconds)

    wall = max((s["ts"] + s.get("dur", 0.0) for s in spans), default=0.0)

    # hottest outputs: the per-output phase spans, slowest first
    hot = [
        HotOutput(
            output=str(s.get("tags", {}).get("output", "?")),
            seconds=s.get("dur", 0.0),
            how=str(s.get("tags", {}).get("how", "?")),
            sat_conflicts=(s.get("counters") or {}).get(
                "sat_conflicts_spent", 0),
            bdd_nodes=(s.get("counters") or {}).get("bdd_nodes_spent", 0),
        )
        for s in spans if s["name"] == "eco.output"
    ]
    hot.sort(key=lambda h: -h.seconds)

    coverage = 1.0
    if roots and roots[0].seconds > 0:
        root = roots[0]
        covered = sum(c.seconds for c in root.children)
        coverage = min(1.0, covered / root.seconds)

    return TraceSummary(
        name=str(meta.get("name", "run")),
        wall_seconds=wall,
        roots=roots,
        hot_outputs=hot,
        events=events,
        counters=dict(meta.get("counters") or {}),
        degraded=bool(meta.get("degraded", False)),
        coverage=coverage,
    )


def format_summary(summary: TraceSummary, hot: int = 5,
                   events: int = 8) -> str:
    """Render the summary tree the ``repro trace`` subcommand prints."""
    lines: List[str] = []
    head = (f"trace summary: {summary.name} "
            f"(wall {summary.wall_seconds:.3f}s"
            f"{', DEGRADED' if summary.degraded else ''})")
    lines.append(head)
    lines.append("=" * len(head))

    total = summary.roots[0].seconds if summary.roots else 0.0
    lines.append(f"{'phase':<42} {'calls':>6} {'time':>9} {'%':>5} "
                 f"{'sat-conf':>9} {'bdd-nodes':>10}")

    def pct(seconds: float) -> str:
        if total <= 0:
            return "-"
        return f"{100.0 * seconds / total:.0f}%"

    def walk(node: PhaseNode, indent: int) -> None:
        label = "  " * indent + node.name
        lines.append(
            f"{label:<42} {node.calls:>6} {node.seconds:>8.3f}s "
            f"{pct(node.seconds):>5} {node.sat_conflicts:>9} "
            f"{node.bdd_nodes:>10}")
        for child in node.children:
            walk(child, indent + 1)

    for root in summary.roots:
        walk(root, 0)

    if summary.roots:
        lines.append(f"phase coverage : {100.0 * summary.coverage:.1f}% "
                     "of root wall time attributed to child phases")

    if summary.hot_outputs:
        lines.append("hottest outputs:")
        for h in summary.hot_outputs[:hot]:
            lines.append(
                f"  {h.output:<20} {h.seconds:>8.3f}s  {h.how:<18} "
                f"sat-conf={h.sat_conflicts} bdd-nodes={h.bdd_nodes}")

    if summary.events:
        lines.append(f"events ({len(summary.events)}):")
        for e in summary.events[:events]:
            tags = " ".join(f"{k}={v}" for k, v in
                            sorted(e.get("tags", {}).items()))
            lines.append(f"  {e['ts']:>9.3f}s {e['name']} {tags}".rstrip())
        if len(summary.events) > events:
            lines.append(f"  ... {len(summary.events) - events} more")

    if summary.counters:
        interesting = {k: v for k, v in sorted(summary.counters.items())
                       if v}
        if interesting:
            lines.append("run counters   : " + ", ".join(
                f"{k}={v}" for k, v in interesting.items()))
    return "\n".join(lines)


def brief_phase_lines(records: Sequence[Dict[str, Any]],
                      limit: int = 5) -> List[str]:
    """Compact per-phase lines for embedding in the patch report."""
    summary = summarize(records)
    out = []
    for node in summary.top_phases(limit):
        out.append(f"{node.name:<20} calls={node.calls} "
                   f"time={node.seconds:.3f}s "
                   f"sat-conf={node.sat_conflicts} "
                   f"bdd-nodes={node.bdd_nodes}")
    return out
