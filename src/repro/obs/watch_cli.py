"""``repro watch``: a live TTY dashboard over runs (pure ANSI).

Two sources, one renderer:

* **Record mode** (default) — ``repro watch [REF]`` loads a run-store
  record (``last`` when omitted) and renders its phase tree, the
  per-output resolution progress, counter sparklines from the
  persisted ``obs.sample`` timeline, and per-phase latency percentiles
  from the stored histogram snapshots.
* **Live mode** — ``repro watch --url http://127.0.0.1:PORT`` polls
  the ``/healthz`` and ``/metrics`` endpoints of a running ``repro eco
  --serve-metrics`` process, parses the payload with the strict
  conformance parser (:func:`~repro.obs.metrics
  .parse_prometheus_text`) and renders the current phase stack,
  progress counter, live counter sparklines (history accumulated
  client side, scrape by scrape) and histogram percentiles, refreshing
  in place until the endpoint goes away (run finished) or Ctrl-C.

No dependencies beyond the standard library and no curses — a frame is
plain text plus an ANSI home-and-clear prefix, so it renders anywhere
a terminal does (``--once`` prints a single frame without ANSI for
scripts and tests).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.metrics import histogram_percentiles, parse_prometheus_text
from repro.obs.store import RunRecord, RunStore

#: eight-level bar characters, lowest to highest
SPARK_CHARS = "▁▂▃▄▅▆▇█"

#: ANSI: clear screen, cursor home
CLEAR = "\x1b[2J\x1b[H"

#: sample-timeline counters worth a sparkline, in display order
SPARK_KEYS = ("sat_conflicts_spent", "bdd_nodes", "sat_validations",
              "plan_evals", "mem_peak_kib")


# ----------------------------------------------------------------------
# pure renderers (unit-testable, no I/O)
# ----------------------------------------------------------------------
def sparkline(values: Sequence[float], width: int = 40) -> str:
    """``values`` as a fixed-width bar string (empty input -> '')."""
    points = [float(v) for v in values]
    if not points:
        return ""
    if len(points) > width:
        step = len(points) / width
        points = [points[int(i * step)] for i in range(width)]
    lo, hi = min(points), max(points)
    if hi <= lo:
        return SPARK_CHARS[0] * len(points)
    span = hi - lo
    return "".join(
        SPARK_CHARS[min(len(SPARK_CHARS) - 1,
                        int((v - lo) / span * len(SPARK_CHARS)))]
        for v in points)


def progress_bar(done: int, total: int, width: int = 24) -> str:
    if total <= 0:
        return "[" + " " * width + "]"
    filled = int(width * min(1.0, done / total))
    return ("[" + "#" * filled + "-" * (width - filled)
            + f"] {done}/{total}")


def _fmt_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.2f}s"
    return f"{value * 1000:.1f}ms"


def render_phase_rows(phases: Iterable[Dict[str, Any]],
                      limit: int = 14) -> List[str]:
    """Stored per-phase rows as an indented tree with time/call/SAT."""
    rows = list(phases)
    total = max((r.get("seconds", 0.0) for r in rows), default=0.0)
    lines = []
    for row in rows[:limit]:
        path = str(row.get("phase", "?"))
        depth = path.count("/")
        name = path.rsplit("/", 1)[-1]
        seconds = float(row.get("seconds", 0.0))
        pct = (100.0 * seconds / total) if total else 0.0
        lines.append(
            f"  {'  ' * depth}{name:<24.24} "
            f"{_fmt_seconds(seconds):>9}  {pct:5.1f}%  "
            f"x{row.get('calls', 0):<5} "
            f"sat={row.get('sat_conflicts', 0)}")
    if len(rows) > limit:
        lines.append(f"  ... {len(rows) - limit} more phases")
    return lines


def render_sample_sparks(samples: Sequence[Dict[str, Any]],
                        keys: Sequence[str] = SPARK_KEYS) -> List[str]:
    lines = []
    for key in keys:
        series = [s.get(key, 0) for s in samples if isinstance(
            s.get(key, 0), (int, float))]
        if samples and any(series):
            lines.append(f"  {key:<22.22} {sparkline(series)} "
                         f"{series[-1]:g}")
    return lines


def render_histograms(histograms: Dict[str, Dict[str, Any]]) -> List[str]:
    """Stored histogram snapshots as a percentile table."""
    lines = []
    for family in sorted(histograms):
        snap = histograms[family]
        count = snap.get("count", 0)
        if not count:
            continue
        unit = (_fmt_seconds if family.endswith("_seconds")
                else lambda v: f"{v:g}")
        lines.append(
            f"  {family:<30.30} n={count:<6} "
            f"p50={unit(float(snap.get('p50', 0)))} "
            f"p95={unit(float(snap.get('p95', 0)))} "
            f"p99={unit(float(snap.get('p99', 0)))}")
    return lines


def render_record(record: RunRecord) -> str:
    """One full dashboard frame for a persisted run record."""
    out = [f"run {record.run_id}  [{record.kind}] {record.name}  "
           f"outcome={record.outcome}"
           + ("  DEGRADED" if record.degraded else ""),
           f"wall {record.wall_seconds:.3f}s  git {record.git_sha or '?'}"]
    total_outputs = sum(record.resolution.values())
    if total_outputs:
        fixed = sum(n for how, n in record.resolution.items()
                    if how != "unresolved")
        out.append("outputs  " + progress_bar(fixed, total_outputs)
                   + "   " + ", ".join(
                       f"{how}:{n}" for how, n
                       in sorted(record.resolution.items())))
    if record.phases:
        out.append("")
        out.append("phases:")
        out.extend(render_phase_rows(record.phases))
    sparks = render_sample_sparks(record.samples)
    if sparks:
        out.append("")
        out.append(f"timeline ({len(record.samples)} samples):")
        out.extend(sparks)
    hists = render_histograms(record.histograms)
    if hists:
        out.append("")
        out.append("latency percentiles:")
        out.extend(hists)
    return "\n".join(out) + "\n"


def render_live(health: Dict[str, Any],
                families: Dict[str, Dict[str, Any]],
                history: Dict[str, List[float]]) -> str:
    """One dashboard frame from a live scrape.

    ``families`` is the parsed ``/metrics`` payload; ``history`` holds
    the per-counter series accumulated across previous scrapes.
    """
    status = health.get("status", "?")
    out = [f"run {health.get('run', '?')}  status={status}  "
           f"progress={health.get('progress', '?')}"]
    phase = health.get("phase") or []
    out.append("phase    " + (" > ".join(phase) if phase else "(idle)"))
    if health.get("stalled"):
        out.append("*** STALLED: no span progress within the window ***")
    workers = health.get("workers") or {}
    for worker_id, info in sorted(workers.items()):
        out.append(f"worker {worker_id}: {info.get('open_spans', 0)} "
                   f"open / {info.get('closed_spans', 0)} closed spans, "
                   f"last seen {info.get('age_s', '?')}s ago")

    counter_family = families.get("repro_counter_total")
    if counter_family:
        out.append("")
        out.append("counters:")
        for _, labels, value in counter_family["samples"]:
            key = labels.get("counter", "?")
            series = history.setdefault(key, [])
            if not series or series[-1] != value:
                series.append(value)
            out.append(f"  {key:<22.22} {sparkline(series)} {value:g}")

    hist_lines = []
    for family_name in sorted(families):
        family = families[family_name]
        if family["type"] != "histogram":
            continue
        for labels_key, pcts in sorted(
                histogram_percentiles(family).items()):
            if not pcts.get("count"):
                continue
            unit = (_fmt_seconds if family_name.endswith("_seconds")
                    else lambda v: f"{v:g}")
            label = family_name + (
                "{%s}" % ",".join(f"{k}={v}" for k, v in labels_key)
                if labels_key else "")
            hist_lines.append(
                f"  {label:<30.30} n={int(pcts['count']):<6} "
                f"p50={unit(pcts['p50'])} p95={unit(pcts['p95'])} "
                f"p99={unit(pcts['p99'])}")
    if hist_lines:
        out.append("")
        out.append("latency percentiles:")
        out.extend(hist_lines)
    return "\n".join(out) + "\n"


# ----------------------------------------------------------------------
# live scraping
# ----------------------------------------------------------------------
def scrape(url: str, timeout: float = 2.0
           ) -> Tuple[Dict[str, Any], Dict[str, Dict[str, Any]]]:
    """Fetch and parse ``/healthz`` + ``/metrics`` from ``url``."""
    base = url.rstrip("/")
    with urllib.request.urlopen(base + "/healthz",
                                timeout=timeout) as resp:
        health = json.loads(resp.read().decode("utf-8"))
    with urllib.request.urlopen(base + "/metrics",
                                timeout=timeout) as resp:
        families = parse_prometheus_text(resp.read().decode("utf-8"))
    return health, families


def _watch_live(args: argparse.Namespace) -> int:
    history: Dict[str, List[float]] = {}
    use_ansi = sys.stdout.isatty() and not args.once
    while True:
        try:
            health, families = scrape(args.url)
        except (urllib.error.URLError, OSError, ValueError) as exc:
            if not history:
                print(f"error: cannot scrape {args.url}: {exc}",
                      file=sys.stderr)
                return 3
            print("endpoint gone (run finished?); exiting")
            return 0
        frame = render_live(health, families, history)
        if use_ansi:
            sys.stdout.write(CLEAR + frame)
            sys.stdout.flush()
        else:
            print(frame, end="")
        if args.once:
            return 0
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def _watch_record(args: argparse.Namespace) -> int:
    store = RunStore(args.store)
    record = store.resolve(args.ref)
    print(render_record(record), end="")
    return 0


# ----------------------------------------------------------------------
# CLI plumbing
# ----------------------------------------------------------------------
def add_watch_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "ref", nargs="?", default="last",
        help="run-store record to render (default: last); ignored "
             "with --url")
    parser.add_argument(
        "--url", metavar="URL", default=None,
        help="live mode: poll the /metrics + /healthz endpoint of a "
             "running 'repro eco --serve-metrics' process")
    parser.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="refresh interval in live mode (default: 1.0)")
    parser.add_argument(
        "--once", action="store_true",
        help="render a single frame and exit (no ANSI clearing)")
    parser.add_argument(
        "--store", metavar="DIR", default=None,
        help="run-store directory (default: $REPRO_RUN_STORE or "
             ".repro/runs)")


def run_watch(args: argparse.Namespace) -> int:
    if args.url:
        return _watch_live(args)
    return _watch_record(args)
