"""Streaming worker telemetry: the live event bus.

With ``--jobs N`` the search workers trace into private
:class:`~repro.obs.trace.Trace` objects and ship the records back in
their :class:`~repro.eco.parallel.WorkerResult` — a *post-hoc* graft.
That leaves two holes: nothing is visible while a worker runs, and a
worker killed mid-task (PR 6 retry/quarantine paths) loses its entire
span history.  This module closes both:

* :class:`LiveBus` — the transport.  Real pools use a
  ``multiprocessing.Manager().Queue()`` proxy (picklable through
  ``ProcessPoolExecutor.submit``, unlike a bare ``mp.Queue``); the
  deterministic inline mode (``REPRO_ECO_JOBS_INLINE=1``) swaps in a
  plain ``queue.Queue``.
* :class:`WorkerPublisher` — the worker side.  Bound to the worker's
  trace as its ``listener``, it publishes ``span_open`` immediately
  and ``span_close`` with the full span record; counter totals ride as
  throttled ``heartbeat`` events (piggybacked on span activity, plus
  one at worker start and one final flush at close).  Publishing is
  best-effort: a broken queue (dead supervisor) degrades to silence,
  never to a worker crash.
* :class:`LiveAggregator` — the supervisor side.  A daemon thread
  drains the bus, feeds every streamed ``span_close`` into the run's
  :class:`~repro.obs.metrics.MetricsRegistry` (live latency
  histograms) and buffers the records per worker.  Reconciliation
  against the final graft is exact: a worker that returns normally has
  its buffer *discarded* (the ``Trace.absorb`` graft of its shipped
  records is authoritative, and ``absorb`` does not re-feed the
  registry, so each span is observed exactly once); a worker that
  *dies* has its buffer **materialized** — closed spans grafted as-is,
  still-open spans synthesized with a ``partial=True`` tag, and the
  last counter snapshot returned so the supervisor can charge the real
  spend.  Partial telemetry therefore survives ``output.quarantined``
  instead of vanishing.

Stdlib only apart from :mod:`repro.runtime.sync` (itself pure
stdlib), which supplies the sanctioned thread/lock/event factories so
the pump thread participates in lock-order tracing.
"""

from __future__ import annotations

import queue as _queue
import time
from typing import Any, Callable, Dict, List, Optional

from repro.runtime.sync import make_event, make_lock, make_thread

#: queue message kinds
SPAN_OPEN = "span_open"
SPAN_CLOSE = "span_close"
HEARTBEAT = "heartbeat"
WORKER_BYE = "bye"

#: minimum seconds between piggybacked counter heartbeats
HEARTBEAT_INTERVAL_S = 0.2

#: gauge families the aggregator maintains
WORKERS_GAUGE = "repro_live_workers"
HEARTBEAT_GAUGE = "repro_worker_heartbeat_ts_seconds"


class LiveBus:
    """Owns the queue the workers publish on.

    Use :meth:`create`; ``bus.queue`` is the handle to ship in worker
    payloads.  :meth:`close` tears the manager process down (no-op for
    the inline queue).
    """

    def __init__(self, q, manager=None):
        self.queue = q
        self._manager = manager

    @classmethod
    def create(cls, inline: bool) -> Optional["LiveBus"]:
        if inline:
            return cls(_queue.Queue())
        try:
            import multiprocessing
            manager = multiprocessing.Manager()
            return cls(manager.Queue(), manager)
        except (OSError, ImportError, EOFError):  # restricted sandboxes
            return None

    def drain(self) -> List[Dict[str, Any]]:
        """All currently-queued messages, non-blocking."""
        out: List[Dict[str, Any]] = []
        while True:
            try:
                out.append(self.queue.get_nowait())
            except _queue.Empty:
                return out
            except (OSError, EOFError, BrokenPipeError):
                return out

    def get(self, timeout: float) -> Optional[Dict[str, Any]]:
        try:
            return self.queue.get(timeout=timeout)
        except _queue.Empty:
            return None
        except (OSError, EOFError, BrokenPipeError):
            return None

    def close(self) -> None:
        if self._manager is not None:
            try:
                self._manager.shutdown()
            except (OSError, EOFError):
                pass
            self._manager = None


class WorkerPublisher:
    """Publishes one worker's trace activity onto the bus.

    Implements the trace ``listener`` protocol (``span_open`` /
    ``span_close``); every publish is wrapped so a torn-down queue can
    never take the worker with it.
    """

    def __init__(self, q, worker_id: str,
                 counters=None,
                 clock: Callable[[], float] = time.monotonic,
                 heartbeat_interval_s: float = HEARTBEAT_INTERVAL_S):
        self._queue = q
        self.worker_id = worker_id
        self._counters = counters
        self._clock = clock
        self._interval = heartbeat_interval_s
        self._last_heartbeat = -1.0

    # -- trace listener protocol ---------------------------------------
    def span_open(self, span) -> None:
        self._put({"kind": SPAN_OPEN, "worker": self.worker_id,
                   "id": span.span_id, "parent": span.parent_id,
                   "name": span.name, "ts": span.t_start,
                   "tags": dict(span.tags)})
        self._maybe_heartbeat()

    def span_close(self, span) -> None:
        self._put({"kind": SPAN_CLOSE, "worker": self.worker_id,
                   "record": {
                       "type": "span",
                       "id": span.span_id,
                       "parent": span.parent_id,
                       "name": span.name,
                       "ts": span.t_start,
                       "dur": span.duration,
                       "tags": dict(span.tags),
                       "counters": dict(span.counters),
                   }})
        self._maybe_heartbeat()

    # ------------------------------------------------------------------
    def heartbeat(self, force: bool = False) -> None:
        """Publish a heartbeat with the current counter totals."""
        now = self._clock()
        if not force and now - self._last_heartbeat < self._interval:
            return
        self._last_heartbeat = now
        totals = (self._counters.as_dict()
                  if self._counters is not None else {})
        self._put({"kind": HEARTBEAT, "worker": self.worker_id,
                   "counters": {k: v for k, v in totals.items() if v}})

    def _maybe_heartbeat(self) -> None:
        self.heartbeat(force=False)

    def close(self) -> None:
        """Final flush: one forced heartbeat, then the goodbye marker."""
        self.heartbeat(force=True)
        self._put({"kind": WORKER_BYE, "worker": self.worker_id})

    def _put(self, message: Dict[str, Any]) -> None:
        try:
            self._queue.put_nowait(message)
        except (OSError, EOFError, BrokenPipeError, _queue.Full):
            pass


class _WorkerState:
    __slots__ = ("open_spans", "closed", "counters", "last_seen", "gone")

    def __init__(self):
        #: span_id -> span_open message (still running)
        self.open_spans: Dict[int, Dict[str, Any]] = {}
        #: finished span records, in close order
        self.closed: List[Dict[str, Any]] = []
        #: last streamed counter totals
        self.counters: Dict[str, int] = {}
        self.last_seen = 0.0
        self.gone = False


class LiveAggregator:
    """Supervisor-side consumer of the live bus.

    ``start()`` spawns a daemon thread that drains the bus; ``stop()``
    joins it and drains the tail.  :meth:`discard` /
    :meth:`flush_dead` implement the graft reconciliation described in
    the module docstring.
    """

    def __init__(self, trace, bus: LiveBus, registry=None,
                 clock: Callable[[], float] = time.monotonic):
        self.trace = trace
        self.bus = bus
        self.registry = registry
        self._clock = clock
        self._workers: Dict[str, _WorkerState] = {}
        #: workers already reconciled (discarded or flushed): late bus
        #: messages from them must not resurrect a state entry, or a
        #: racing pump could re-synthesize spans a flush already grafted
        self._finalized: set = set()
        self._lock = make_lock("live.aggregator")
        self._stop = make_event("live.stop")
        self._thread: Optional[Any] = None

    # ------------------------------------------------------------------
    def start(self) -> "LiveAggregator":
        self._thread = make_thread(
            self._run, name="repro-obs-live", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5.0)
        self.pump()  # drain whatever arrived during the join

    def _run(self) -> None:
        while not self._stop.is_set():
            message = self.bus.get(timeout=0.05)
            if message is not None:
                self._handle(message)

    def pump(self) -> int:
        """Drain everything queued right now (tests + final drain)."""
        messages = self.bus.drain()
        for message in messages:
            self._handle(message)
        return len(messages)

    # ------------------------------------------------------------------
    def _state(self, worker_id: str) -> _WorkerState:
        state = self._workers.get(worker_id)
        if state is None:
            state = self._workers[worker_id] = _WorkerState()
            self._gauge_workers()
        return state

    def _handle(self, message: Dict[str, Any]) -> None:
        kind = message.get("kind")
        worker_id = str(message.get("worker"))
        with self._lock:
            if worker_id in self._finalized:
                return
            state = self._state(worker_id)
            state.last_seen = self._clock()
            if kind == SPAN_OPEN:
                state.open_spans[message["id"]] = message
            elif kind == SPAN_CLOSE:
                record = message["record"]
                state.open_spans.pop(record["id"], None)
                state.closed.append(record)
                if self.registry is not None:
                    self.registry.observe_span(
                        record["name"], record.get("dur", 0.0),
                        record.get("tags"))
            elif kind == HEARTBEAT:
                state.counters = dict(message.get("counters", {}))
                if self.registry is not None:
                    self.registry.gauge(
                        HEARTBEAT_GAUGE, {"worker": worker_id},
                        help="monotonic time of each live worker's last "
                        "heartbeat").set(state.last_seen)
            elif kind == WORKER_BYE:
                state.gone = True
                self._gauge_workers()

    def _gauge_workers(self) -> None:
        if self.registry is not None:
            alive = sum(1 for s in self._workers.values() if not s.gone)
            self.registry.gauge(
                WORKERS_GAUGE,
                help="search workers currently streaming telemetry"
            ).set(alive)

    # -- reconciliation -------------------------------------------------
    def discard(self, worker_id: str) -> None:
        """The worker returned normally: its shipped records are the
        truth, drop the live buffer (the registry already saw every
        closed span exactly once — ``Trace.absorb`` does not re-feed
        it)."""
        with self._lock:
            self._workers.pop(worker_id, None)
            self._finalized.add(worker_id)
            self._gauge_workers()

    def flush_dead(self, worker_id: str,
                   parent: Optional[int] = None) -> Dict[str, int]:
        """The worker died: graft its partial telemetry into the main
        trace and return its last counter totals (for
        ``RunSupervisor.absorb_worker`` — real spend must be charged).

        Closed spans graft verbatim; spans still open at death are
        synthesized with ``partial=True`` and a duration running to the
        worker's last published activity.
        """
        with self._lock:
            state = self._workers.pop(worker_id, None)
            self._finalized.add(worker_id)
            self._gauge_workers()
        if state is None:
            return {}
        records = list(state.closed)
        last_ts = max(
            [r["ts"] + r.get("dur", 0.0) for r in records]
            + [m["ts"] for m in state.open_spans.values()], default=0.0)
        for message in sorted(state.open_spans.values(),
                              key=lambda m: m["id"]):
            records.append({
                "type": "span",
                "id": message["id"],
                "parent": message["parent"],
                "name": message["name"],
                "ts": message["ts"],
                "dur": max(0.0, last_ts - message["ts"]),
                "tags": dict(message["tags"], partial=True,
                             worker=worker_id),
                "counters": {},
            })
        if records:
            records.sort(key=lambda r: r["id"])
            self.trace.absorb(records, parent=parent)
            self.trace.event("worker.partial_telemetry",
                             worker=worker_id, spans=len(records),
                             counters=sum(state.counters.values()))
        return dict(state.counters)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Live worker view for ``/healthz``."""
        now = self._clock()
        with self._lock:
            return {
                worker_id: {
                    "open_spans": len(state.open_spans),
                    "closed_spans": len(state.closed),
                    "age_s": round(now - state.last_seen, 3),
                    "gone": state.gone,
                }
                for worker_id, state in self._workers.items()
            }
