"""The persistent run store: cross-run history under ``.repro/runs/``.

Every engine, CLI and bench invocation can publish a :class:`RunRecord`
— config, git SHA, final counters, the per-phase span summary, the
``obs.sample`` counter timeline, lint-screen stats, degradation state
and exit outcome — into a :class:`RunStore`:

* ``records.jsonl`` — the append-only source of truth, one JSON record
  per line.  All writes are atomic (tmp file + fsync + rename via
  :mod:`repro.obs.atomicio`), so a killed run never leaves a truncated
  record.
* ``index.json`` — a lightweight summary per run for fast listing;
  derived data, rebuilt automatically whenever it is missing or stale.

On top of the store sit :func:`diff_records` (field-by-field metric
deltas between two runs) and :func:`check_regressions` (noise-aware
regression detection over wall time, SAT conflicts, BDD nodes and
resolution outcomes) — the machinery behind ``repro runs
list|show|diff|regress``.

The store depends on the standard library only; the wall clock is read
through the sanctioned :func:`repro.runtime.clock.now` seam (imported
lazily to keep ``obs`` at the bottom of the layering).
"""

from __future__ import annotations

import dataclasses
import json
import logging
import os
import subprocess
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.obs.atomicio import (
    append_jsonl_line,
    atomic_write_text,
    read_jsonl,
    salvage_jsonl,
    sweep_temp_leftovers,
)

logger = logging.getLogger("repro.obs")

RECORD_VERSION = 1

#: default store location, relative to the working directory; the
#: ``REPRO_RUN_STORE`` environment variable overrides it
DEFAULT_STORE_DIR = os.path.join(".repro", "runs")

#: samples kept per persisted record (timeline is downsampled evenly,
#: always keeping the first and last snapshot)
MAX_STORED_SAMPLES = 256


class RunStoreError(ReproError):
    """A run-store operation failed (unknown ref, ambiguous prefix, ...)."""


# ----------------------------------------------------------------------
# the record
# ----------------------------------------------------------------------
@dataclass
class RunRecord:
    """One run's persisted telemetry.

    Unknown keys found in stored JSON are preserved in ``extra`` and
    written back verbatim — forward compatibility across versions of
    this schema.
    """

    run_id: str
    kind: str                     # "eco" | "bench" | "quickstart" | ...
    name: str                     # design / case label
    started_at: float             # epoch seconds (repro.runtime.clock)
    wall_seconds: float
    outcome: str                  # "ok" | "degraded" | "interrupted" | "failed"
    degraded: bool = False
    degrade_reason: Optional[str] = None
    strict: bool = False
    git_sha: Optional[str] = None
    config: Dict[str, Any] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    phases: List[Dict[str, Any]] = field(default_factory=list)
    samples: List[Dict[str, Any]] = field(default_factory=list)
    events: Dict[str, int] = field(default_factory=dict)
    lint: Dict[str, Any] = field(default_factory=dict)
    resolution: Dict[str, int] = field(default_factory=dict)
    #: per-family histogram snapshots (count / sum / cumulative buckets
    #: / derived p50-p95-p99) from the run's metrics registry — the
    #: substrate of the tail-latency regression gate
    histograms: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    tags: Dict[str, Any] = field(default_factory=dict)
    version: int = RECORD_VERSION
    extra: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        payload = dataclasses.asdict(self)
        extra = payload.pop("extra")
        payload.update(extra)
        return payload

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "RunRecord":
        known = {f.name for f in dataclasses.fields(cls)} - {"extra"}
        kwargs = {k: v for k, v in payload.items() if k in known}
        extra = {k: v for k, v in payload.items() if k not in known}
        kwargs.setdefault("run_id", "?")
        kwargs.setdefault("kind", "?")
        kwargs.setdefault("name", "?")
        kwargs.setdefault("started_at", 0.0)
        kwargs.setdefault("wall_seconds", 0.0)
        kwargs.setdefault("outcome", "?")
        return cls(extra=extra, **kwargs)

    def index_entry(self) -> Dict[str, Any]:
        """The lightweight summary ``index.json`` keeps per run."""
        return {
            "run_id": self.run_id,
            "kind": self.kind,
            "name": self.name,
            "started_at": self.started_at,
            "wall_seconds": self.wall_seconds,
            "outcome": self.outcome,
            "degraded": self.degraded,
            "git_sha": self.git_sha,
        }


# ----------------------------------------------------------------------
# record construction
# ----------------------------------------------------------------------
_GIT_SHA_CACHE: Dict[str, Optional[str]] = {}


def current_git_sha(cwd: Optional[str] = None) -> Optional[str]:
    """Short SHA of HEAD, or None outside a git checkout."""
    key = cwd or os.getcwd()
    if key not in _GIT_SHA_CACHE:
        try:
            out = subprocess.run(
                ["git", "rev-parse", "--short=12", "HEAD"],
                cwd=cwd, capture_output=True, text=True, timeout=5)
            sha = out.stdout.strip() if out.returncode == 0 else None
        except (OSError, subprocess.SubprocessError):
            sha = None
        _GIT_SHA_CACHE[key] = sha or None
    return _GIT_SHA_CACHE[key]


def new_run_id(started_at: float) -> str:
    """Sortable, collision-safe run id: UTC timestamp + random hex."""
    import time as _time
    stamp = _time.strftime("%Y%m%d-%H%M%S", _time.gmtime(started_at))
    return f"{stamp}-{os.urandom(4).hex()}"


def _downsample(samples: List[Dict[str, Any]],
                limit: int = MAX_STORED_SAMPLES) -> List[Dict[str, Any]]:
    if len(samples) <= limit:
        return samples
    step = (len(samples) - 1) / (limit - 1)
    picked = [samples[round(i * step)] for i in range(limit - 1)]
    picked.append(samples[-1])
    return picked


def _normalize_sample_ts(samples: List[Dict[str, Any]]
                         ) -> List[Dict[str, Any]]:
    """Rebase the timeline so the first sample is ``ts=0``.

    Sample timestamps arrive relative to the *trace* epoch, which is
    set at ``Trace`` construction — an arbitrary monotonic instant that
    differs across processes and across how long the CLI fiddled before
    the run started.  Rebasing to the first sample makes timelines
    directly comparable in ``runs diff``.
    """
    if not samples:
        return samples
    t0 = min((s["ts"] for s in samples if s.get("ts") is not None),
             default=None)
    if t0 is None:
        return samples
    for sample in samples:
        if sample.get("ts") is not None:
            sample["ts"] = round(sample["ts"] - t0, 6)
    return samples


def _phase_rows(records: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Flatten the trace summary tree into per-phase rows."""
    from repro.obs.summary import summarize
    rows: List[Dict[str, Any]] = []

    def walk(node, path: Tuple[str, ...]) -> None:
        full = path + (node.name,)
        rows.append({
            "phase": "/".join(full),
            "calls": node.calls,
            "seconds": round(node.seconds, 6),
            "sat_conflicts": node.sat_conflicts,
            "bdd_nodes": node.bdd_nodes,
        })
        for child in node.children:
            walk(child, full)

    for root in summarize(records).roots:
        walk(root, ())
    return rows


def record_from_result(result, trace=None, kind: str = "eco",
                       name: Optional[str] = None,
                       config: Optional[Any] = None,
                       outcome: Optional[str] = None,
                       tags: Optional[Dict[str, Any]] = None,
                       run_id: Optional[str] = None,
                       metrics: Optional[Any] = None) -> RunRecord:
    """Build a :class:`RunRecord` from a ``RectificationResult``.

    ``trace`` (when the run was traced) supplies the per-phase summary,
    the ``obs.sample`` timeline and the supervised wall time — the
    supervisor's budget clock observes fault-injected stalls, so the
    recorded wall time is exactly what regression tracking should see.
    ``config`` accepts an ``EcoConfig`` (or any dataclass) or a plain
    dict.  ``run_id`` pins the record to an identity the caller chose
    up front (journaled runs use the journal's id so ``--resume`` and
    the run record agree); omitted, a fresh id is generated.

    When the trace carries a metrics registry (or ``metrics`` is given
    explicitly), its per-family histogram snapshots are persisted so
    ``repro runs diff/regress`` can gate on tail latency.
    """
    from repro.runtime.clock import now  # lazy: obs sits below runtime

    trace = trace if trace is not None else getattr(result, "trace", None)
    records: List[Dict[str, Any]] = []
    meta: Dict[str, Any] = {}
    if trace is not None and getattr(trace, "enabled", False):
        records = trace.records()
        meta = records[0] if records else {}

    wall = meta.get("supervised_elapsed_s")
    if wall is None:
        wall = getattr(result, "runtime_seconds", 0.0)

    samples = [dict(rec.get("tags", {}), ts=rec.get("ts"))
               for rec in records
               if rec.get("type") == "event" and rec.get("name") == "obs.sample"]
    samples = _normalize_sample_ts(samples)
    event_counts: Dict[str, int] = {}
    for rec in records:
        if rec.get("type") == "event":
            evname = str(rec.get("name"))
            event_counts[evname] = event_counts.get(evname, 0) + 1

    if config is not None and dataclasses.is_dataclass(config):
        config_dict = dataclasses.asdict(config)
    else:
        config_dict = dict(config or {})

    counters = result.counters.as_dict()
    per_output = getattr(result, "per_output", {}) or {}
    resolution: Dict[str, int] = {}
    for how in per_output.values():
        resolution[how] = resolution.get(how, 0) + 1

    degraded = bool(getattr(result, "degraded", False))
    if outcome is None:
        outcome = "degraded" if degraded else "ok"

    started_at = now() - float(getattr(result, "runtime_seconds", 0.0))
    screens = counters.get("lint_screens", 0)
    rejects = counters.get("lint_rejects", 0)
    registry = metrics if metrics is not None else \
        getattr(trace, "metrics", None)
    histograms = (registry.histogram_snapshots()
                  if registry is not None else {})
    record = RunRecord(
        run_id=run_id or new_run_id(started_at),
        kind=kind,
        name=name or meta.get("impl") or meta.get("name") or "run",
        started_at=round(started_at, 3),
        wall_seconds=round(float(wall), 6),
        outcome=outcome,
        degraded=degraded,
        degrade_reason=getattr(result, "degrade_reason", None),
        strict=not config_dict.get("degrade_on_budget", True),
        git_sha=current_git_sha(),
        config=config_dict,
        counters=counters,
        phases=_phase_rows(records),
        samples=_downsample(samples),
        events=event_counts,
        lint={
            "lint_screens": screens,
            "lint_rejects": rejects,
            "lint_reject_rate": (rejects / screens) if screens else 0.0,
        },
        resolution=resolution,
        histograms=histograms,
        tags=dict(tags or {}),
    )
    return record


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------
class RunStore:
    """Append-only registry of run records plus a derived index."""

    def __init__(self, root: Optional[str] = None):
        if root is None:
            root = os.environ.get("REPRO_RUN_STORE") or DEFAULT_STORE_DIR
        self.root = root
        self.records_path = os.path.join(root, "records.jsonl")
        self.index_path = os.path.join(root, "index.json")
        #: unparsable record lines skipped by the last load
        self.skipped = 0
        # lazy: obs sits below runtime, but sync is pure stdlib
        from repro.runtime.sync import make_lock
        self._publish_lock = make_lock("store.publish")

    # ------------------------------------------------------------------
    def publish(self, record: RunRecord) -> str:
        """Append ``record`` and update the index; returns the run id.

        Serialized per store instance: the append itself is atomic,
        but the read-modify-write of the derived index is not — two
        concurrent publishers (e.g. the CI smoke script's scrape
        thread racing the engine) would otherwise drop an entry.
        """
        with self._publish_lock:
            os.makedirs(self.root, exist_ok=True)
            append_jsonl_line(self.records_path, record.to_json())
            entries = self._index_entries()
            entries.append(record.index_entry())
            self._write_index(entries)
            return record.run_id

    def load_all(self) -> List[RunRecord]:
        """Every record, oldest first; corrupt lines are skipped and
        counted in :attr:`skipped`."""
        payloads, self.skipped = read_jsonl(self.records_path)
        return [RunRecord.from_json(p) for p in payloads]

    def list(self) -> List[Dict[str, Any]]:
        """Index entries (oldest first), rebuilding a stale index."""
        entries = self._index_entries()
        line_count = self._record_count()
        if len(entries) != line_count:
            records = self.load_all()
            entries = [r.index_entry() for r in records]
            if os.path.isdir(self.root):
                self._write_index(entries)
        return entries

    def resolve(self, ref: str) -> RunRecord:
        """A record by reference.

        ``last`` / ``first`` name the newest / oldest record; a
        negative integer indexes from the end (``-1`` = newest); any
        other string matches a unique ``run_id`` prefix.
        """
        records = self.load_all()
        if not records:
            raise RunStoreError(
                f"run store {self.root!r} is empty (ref {ref!r})")
        if ref in ("last", "latest", "-1"):
            return records[-1]
        if ref in ("first", "oldest"):
            return records[0]
        try:
            index = int(ref)
        except ValueError:
            index = None
        if index is not None and index < 0:
            if -index > len(records):
                raise RunStoreError(
                    f"ref {ref}: store has only {len(records)} run(s)")
            return records[index]
        matches = [r for r in records if r.run_id.startswith(ref)]
        if not matches:
            raise RunStoreError(f"no run matches ref {ref!r}")
        if len(matches) > 1:
            ids = ", ".join(r.run_id for r in matches[:4])
            raise RunStoreError(
                f"ref {ref!r} is ambiguous ({len(matches)} matches: "
                f"{ids}{', ...' if len(matches) > 4 else ''})")
        return matches[0]

    # ------------------------------------------------------------------
    def _record_count(self) -> int:
        if not os.path.exists(self.records_path):
            return 0
        with open(self.records_path, "r", encoding="utf-8") as fh:
            return sum(1 for line in fh if line.strip())

    def recover(self) -> Dict[str, Any]:
        """Crash-recovery sweep of the store directory.

        Salvages a torn trailing line a legacy writer may have left in
        ``records.jsonl``, rebuilds ``index.json`` from the surviving
        records, removes orphaned ``.tmp-*`` files, and lists the
        checkpoint journals of runs that never finished (the ones
        ``repro eco --resume`` can continue).  Safe to run any time —
        a healthy store passes through untouched.
        """
        # lazy: checkpoint sits above obs in the layering
        from repro.eco.checkpoint import list_resumable

        fragment = None
        if os.path.exists(self.records_path):
            fragment = salvage_jsonl(self.records_path)
            if fragment is not None:
                logger.warning(
                    "run store %s: dropped torn trailing record "
                    "(%d bytes)", self.records_path, len(fragment))
        records = self.load_all()
        if os.path.isdir(self.root):
            self._write_index([r.index_entry() for r in records])
        swept = sweep_temp_leftovers(self.root)
        return {
            "records": len(records),
            "skipped_lines": self.skipped,
            "salvaged_fragment": fragment,
            "swept_tmp": len(swept),
            "resumable": list_resumable(self.root),
        }

    # ------------------------------------------------------------------
    def _index_entries(self) -> List[Dict[str, Any]]:
        if not os.path.exists(self.index_path):
            return []
        try:
            with open(self.index_path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (json.JSONDecodeError, OSError) as exc:
            # a half-written or garbage index is derived data: warn and
            # let the caller rebuild it from records.jsonl
            logger.warning("run-store index %s unreadable (%s); "
                           "rebuilding from records.jsonl",
                           self.index_path, exc)
            return []
        runs = payload.get("runs") if isinstance(payload, dict) else None
        if not isinstance(runs, list):
            logger.warning("run-store index %s malformed; rebuilding "
                           "from records.jsonl", self.index_path)
            return []
        return list(runs)

    def _write_index(self, entries: List[Dict[str, Any]]) -> None:
        atomic_write_text(self.index_path, json.dumps(
            {"version": RECORD_VERSION, "runs": entries},
            indent=2, sort_keys=True) + "\n")


# ----------------------------------------------------------------------
# diffing and regression tracking
# ----------------------------------------------------------------------
@dataclass
class MetricDelta:
    """One compared metric between a baseline and a current run."""

    metric: str
    baseline: float
    current: float

    @property
    def delta(self) -> float:
        return self.current - self.baseline

    @property
    def pct(self) -> Optional[float]:
        if self.baseline == 0:
            return None
        return 100.0 * self.delta / self.baseline


def diff_records(baseline: RunRecord,
                 current: RunRecord) -> List[MetricDelta]:
    """Field-by-field metric deltas (wall time, every counter, and the
    p95 of every histogram family present in both records)."""
    deltas = [MetricDelta("wall_seconds", baseline.wall_seconds,
                          current.wall_seconds)]
    keys = sorted(set(baseline.counters) | set(current.counters))
    for key in keys:
        base = baseline.counters.get(key, 0)
        cur = current.counters.get(key, 0)
        if base or cur:
            deltas.append(MetricDelta(f"counters.{key}", base, cur))
    for family in sorted(set(baseline.histograms)
                         & set(current.histograms)):
        base = float(baseline.histograms[family].get("p95", 0.0))
        cur = float(current.histograms[family].get("p95", 0.0))
        if base or cur:
            deltas.append(
                MetricDelta(f"histograms.{family}.p95", base, cur))
    return deltas


@dataclass
class RegressionThresholds:
    """Noise thresholds: a metric regresses only when it exceeds the
    baseline by *both* the relative and the absolute floor."""

    wall_pct: float = 25.0
    wall_floor_s: float = 0.1
    sat_pct: float = 10.0
    sat_floor: int = 50
    bdd_pct: float = 10.0
    bdd_floor: int = 1000
    #: tail-latency gate over persisted histogram p95s (``*_seconds``
    #: families present in both records)
    p95_pct: float = 50.0
    p95_floor_s: float = 0.05


@dataclass
class Regression:
    """One detected regression against the baseline."""

    metric: str
    baseline: float
    current: float
    message: str


def _exceeds(base: float, cur: float, pct: float, floor: float) -> bool:
    return (cur - base) > floor and cur > base * (1.0 + pct / 100.0)


def check_regressions(
        baseline: RunRecord, current: RunRecord,
        thresholds: Optional[RegressionThresholds] = None
) -> List[Regression]:
    """Regressions of ``current`` vs. ``baseline``.

    Checked dimensions: wall time, aggregate SAT conflicts, aggregate
    BDD nodes (each under the noise thresholds) and resolution outcomes
    (any new degradation, failure, or increase in fallback-completed /
    degraded outputs — these have no noise margin: with identical
    configs the search is deterministic).
    """
    t = thresholds or RegressionThresholds()
    found: List[Regression] = []

    base_wall, cur_wall = baseline.wall_seconds, current.wall_seconds
    if _exceeds(base_wall, cur_wall, t.wall_pct, t.wall_floor_s):
        found.append(Regression(
            "wall_seconds", base_wall, cur_wall,
            f"wall time {cur_wall:.3f}s vs baseline {base_wall:.3f}s "
            f"(>{t.wall_pct:.0f}% and >{t.wall_floor_s}s slower)"))

    checks = (
        ("sat_conflicts_spent", t.sat_pct, float(t.sat_floor),
         "SAT conflicts"),
        ("bdd_nodes_spent", t.bdd_pct, float(t.bdd_floor), "BDD nodes"),
    )
    for key, pct, floor, label in checks:
        base = float(baseline.counters.get(key, 0))
        cur = float(current.counters.get(key, 0))
        if _exceeds(base, cur, pct, floor):
            found.append(Regression(
                f"counters.{key}", base, cur,
                f"{label} {cur:.0f} vs baseline {base:.0f} "
                f"(>{pct:.0f}% and >{floor:.0f} more)"))

    for family in sorted(set(baseline.histograms)
                         & set(current.histograms)):
        if not family.endswith("_seconds"):
            continue
        base = float(baseline.histograms[family].get("p95", 0.0))
        cur = float(current.histograms[family].get("p95", 0.0))
        if _exceeds(base, cur, t.p95_pct, t.p95_floor_s):
            found.append(Regression(
                f"histograms.{family}.p95", base, cur,
                f"{family} p95 {cur * 1000:.1f}ms vs baseline "
                f"{base * 1000:.1f}ms (>{t.p95_pct:.0f}% and "
                f">{t.p95_floor_s * 1000:.0f}ms slower)"))

    outcome_rank = {"ok": 0, "degraded": 1, "interrupted": 2, "failed": 2}
    if outcome_rank.get(current.outcome, 2) > \
            outcome_rank.get(baseline.outcome, 2):
        found.append(Regression(
            "outcome", outcome_rank.get(baseline.outcome, 2),
            outcome_rank.get(current.outcome, 2),
            f"outcome worsened: {baseline.outcome!r} -> "
            f"{current.outcome!r}"))
    if current.degraded and not baseline.degraded:
        found.append(Regression(
            "degraded", 0, 1, "run degraded where the baseline did not"))
    for key, label in (("fallbacks", "fallback-completed outputs"),
                       ("degraded_outputs", "degraded outputs")):
        base = baseline.counters.get(key, 0)
        cur = current.counters.get(key, 0)
        if cur > base:
            found.append(Regression(
                f"counters.{key}", base, cur,
                f"{label} rose {base} -> {cur}"))
    return found
