"""In-run telemetry sampling: counter time-series and stall detection.

Span traces attribute *deltas* to phases, but a long phase is a black
box while it runs.  :class:`RunSampler` fixes that: while the engine
works, a small daemon thread periodically snapshots the run's
:class:`~repro.runtime.counters.RunCounters`, the live BDD node count
(via a supervisor callback) and — when enabled — the ``tracemalloc``
peak, emitting each snapshot as an ``obs.sample`` event on the trace.
The result is a *timeline*: BDD-node growth, SAT-conflict spend and
memory high-water marks over the run, exported and summarized like any
other trace content and persisted per run by
:mod:`repro.obs.store`.

Each tick doubles as a supervisor heartbeat with a **stall detector**:
the tracer bumps a monotone ``progress`` counter on every span open /
finish; when no span progresses within ``stall_window_s`` the sampler
emits a single ``run.stalled`` event carrying the idle time and a
degradation hint (``--deadline`` / ``--total-sat-budget``), and re-arms
once progress resumes.

When tracing is disabled the engine never constructs a sampler at all
(the ``NULL_TRACE`` no-op path allocates nothing and starts no
thread); with tracing on but ``interval_s=0`` the sampler degrades to
two deterministic snapshots — one at :meth:`start`, one at
:meth:`stop` — so every traced run still gets a (short) timeline.

Stdlib only apart from :mod:`repro.runtime.sync` (itself pure
stdlib), which supplies the sanctioned thread/event factories so the
tick thread participates in lock-order tracing.
"""

from __future__ import annotations

import time
import tracemalloc
from typing import Any, Callable, Dict, Optional

from repro.runtime.sync import make_event, make_thread

#: event kinds emitted by the sampler
SAMPLE_EVENT = "obs.sample"
STALL_EVENT = "run.stalled"

STALL_HINT = ("no span progress; consider --deadline / "
              "--total-sat-budget / --total-bdd-nodes")


class RunSampler:
    """Periodic telemetry snapshots of one run, written to its trace.

    Args:
        trace: the run's :class:`~repro.obs.trace.Trace`.  Callers must
            not construct a sampler for a disabled trace — use
            :func:`maybe_sampler`.
        counters: a ``RunCounters``-shaped object (``as_dict()``);
            every snapshot embeds its nonzero values.
        bdd_stats: zero-argument callable returning a dict of live BDD
            statistics (the run supervisor's ``live_bdd_stats``);
            cumulative, so sampled node counts are non-decreasing.
        interval_s: seconds between samples; ``0`` disables the thread
            (only the start/stop snapshots are taken).
        stall_window_s: span-progress silence that counts as a stall.
        gauge_hook: optional callable invoked with the trace's metrics
            registry on every sample — the run supervisor publishes
            its budget/quarantine heartbeat gauges through this.
        clock: monotonic time source (injectable for tests).
        trace_malloc: start ``tracemalloc`` for the duration of the run
            and record the traced-memory peak per sample (KiB).  When
            False, the peak is still recorded if the caller already has
            ``tracemalloc`` tracing.
    """

    def __init__(self, trace, counters=None,
                 bdd_stats: Optional[Callable[[], Dict[str, int]]] = None,
                 interval_s: float = 0.05,
                 stall_window_s: float = 30.0,
                 gauge_hook: Optional[Callable[[Any], None]] = None,
                 clock: Callable[[], float] = time.monotonic,
                 trace_malloc: bool = False):
        self.trace = trace
        self.counters = counters
        self.bdd_stats = bdd_stats
        self.gauge_hook = gauge_hook
        self.interval_s = max(0.0, float(interval_s))
        self.stall_window_s = float(stall_window_s)
        self._clock = clock
        self._trace_malloc = trace_malloc
        self._started_malloc = False
        self._seq = 0
        self._stalled = False
        self._last_progress = -1
        self._last_change = clock()
        self._stop = make_event("sampler.stop")
        self._thread: Optional[Any] = None

    # ------------------------------------------------------------------
    def start(self) -> "RunSampler":
        """Take the initial sample and start the tick thread (if any)."""
        if self._trace_malloc and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_malloc = True
        self._last_change = self._clock()
        self.sample()
        if self.interval_s > 0:
            self._thread = make_thread(
                self._run, name="repro-obs-sampler", daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the tick thread and take the final sample.

        Join-first and exception-safe: the thread is always signalled
        and joined (and ``tracemalloc`` always stopped) even when the
        final sample raises — a failing trace exporter must not leave
        the daemon thread ticking into the next run.
        """
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5.0)
        try:
            self.sample()
        finally:
            if self._started_malloc:
                tracemalloc.stop()
                self._started_malloc = False

    def __enter__(self) -> "RunSampler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # ------------------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.tick()

    def tick(self) -> None:
        """One heartbeat: snapshot plus stall check (thread + tests)."""
        self.sample()
        self._check_stall()

    def sample(self) -> None:
        """Emit one ``obs.sample`` event with the current telemetry.

        When the trace carries a
        :class:`~repro.obs.metrics.MetricsRegistry`, each tick also
        syncs the monotone counter totals into labeled counter series
        and the live BDD/progress values into gauges, so ``/metrics``
        scrapes see the same timeline the trace records.
        """
        self._seq += 1
        tags: Dict[str, Any] = {"seq": self._seq}
        if self.counters is not None:
            for key, value in self.counters.as_dict().items():
                if value:
                    tags[key] = value
        if self.bdd_stats is not None:
            tags.update(self.bdd_stats())
        if tracemalloc.is_tracing():
            current, peak = tracemalloc.get_traced_memory()
            tags["mem_kib"] = current // 1024
            tags["mem_peak_kib"] = peak // 1024
        self._emit(SAMPLE_EVENT, tags)
        self._sync_registry(tags)

    def _sync_registry(self, tags: Dict[str, Any]) -> None:
        registry = getattr(self.trace, "metrics", None)
        if registry is None:
            return
        if self.counters is not None:
            registry.sync_counters(self.counters.as_dict())
        if "bdd_nodes" in tags:
            registry.gauge("repro_bdd_live_nodes",
                           help="cumulative BDD nodes incl. live sessions"
                           ).set(tags["bdd_nodes"])
        if self.gauge_hook is not None:
            try:
                self.gauge_hook(registry)
            except Exception:  # a gauge must never take the tick down
                pass
        if "mem_peak_kib" in tags:
            registry.gauge("repro_mem_peak_kib",
                           help="tracemalloc peak of the current run (KiB)"
                           ).set(tags["mem_peak_kib"])
        registry.gauge("repro_trace_progress",
                       help="monotone span-activity counter"
                       ).set(self.trace.progress)

    def _check_stall(self) -> None:
        now = self._clock()
        progress = self.trace.progress
        if progress != self._last_progress:
            self._last_progress = progress
            self._last_change = now
            self._stalled = False  # re-arm once the run moves again
            self._stall_gauge(0)
            return
        idle = now - self._last_change
        if idle >= self.stall_window_s and not self._stalled:
            self._stalled = True
            self._stall_gauge(1)
            self._emit(STALL_EVENT, {
                "idle_s": round(idle, 3),
                "window_s": self.stall_window_s,
                "progress": progress,
                "hint": STALL_HINT,
            })

    @property
    def stalled(self) -> bool:
        """Current stall verdict (``/healthz`` reads this)."""
        return self._stalled

    def _stall_gauge(self, value: int) -> None:
        registry = getattr(self.trace, "metrics", None)
        if registry is not None:
            registry.gauge("repro_run_stalled",
                           help="1 while the stall detector is tripped"
                           ).set(value)

    def _emit(self, name: str, tags: Dict[str, Any]) -> None:
        # the tick thread races the engine's span stack; losing one
        # sample to a concurrent pop is fine, corrupting the run is not
        try:
            self.trace.event(name, **tags)
        except (IndexError, RuntimeError):
            pass


def maybe_sampler(trace, **kwargs) -> Optional[RunSampler]:
    """A sampler for an enabled trace; ``None`` (no allocation, no
    thread) when tracing is off."""
    if not getattr(trace, "enabled", False):
        return None
    return RunSampler(trace, **kwargs)
