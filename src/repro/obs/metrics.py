"""Labeled metrics registry: counters, gauges, log-bucketed histograms.

The span tracer answers *where did the time go* after a run; this
module answers *what is the latency distribution right now*.  A
:class:`MetricsRegistry` is a process-wide (or per-run) collection of

* :class:`Counter` — monotone totals (``repro_counter_total``),
* :class:`Gauge` — point-in-time values (run progress, live BDD nodes,
  worker heartbeat ages),
* :class:`Histogram` — log-bucketed latency/size distributions with
  Prometheus-style cumulative buckets and derived p50/p95/p99.

Every metric family may carry *labels*; ``registry.counter(name,
labels)`` returns the one series for that ``(name, labels)`` pair, so
hot paths can cache the series object and pay one ``+=`` per update.

The tracer feeds the registry automatically: :meth:`Span.finish`
routes the span through :meth:`MetricsRegistry.observe_span`, which
maps instrumented phase names onto histogram families
(:data:`SPAN_HISTOGRAMS` — SAT-call latency, incremental-validation
latency, candidate screen time, BDD node growth) — and
:class:`~repro.obs.sampler.RunSampler` syncs ``RunCounters`` deltas
into counter series on every tick.

:func:`render_prometheus` emits the registry in strict exposition
format — ``# HELP``/``# TYPE`` for every family, histogram
``_bucket``/``_sum``/``_count`` series with cumulative counts and a
``+Inf`` bucket — and :func:`parse_prometheus_text` is the matching
strict parser (used by the conformance tests, the CI smoke job and the
``repro watch`` live dashboard).

Stdlib only apart from :mod:`repro.runtime.sync` (itself pure stdlib),
which supplies the sanctioned lock factories: every series carries a
small update lock so concurrent ``inc``/``observe`` calls from worker
pump threads never lose increments (``x += y`` is not atomic), and
under ``REPRO_SYNC_DEBUG`` all registry locks join the global
lock-order graph.
"""

from __future__ import annotations

import math
import re
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.export import sanitize_metric_name
from repro.runtime.sync import make_lock

LabelPairs = Tuple[Tuple[str, str], ...]


def _label_key(labels: Optional[Dict[str, str]]) -> LabelPairs:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def log_buckets(start: float, factor: float, count: int) -> List[float]:
    """Geometric bucket boundaries: ``start * factor**i``.

    The implicit ``+Inf`` bucket is not included — every histogram
    gets it for free at render time.
    """
    if start <= 0 or factor <= 1.0 or count < 1:
        raise ValueError("log_buckets needs start>0, factor>1, count>=1")
    return [start * factor ** i for i in range(count)]


#: default latency boundaries: 100 us .. ~52 s, x2 per bucket
LATENCY_BUCKETS = log_buckets(0.0001, 2.0, 20)

#: default size boundaries (BDD nodes, bytes, ...): 64 .. ~1.07 G, x4
SIZE_BUCKETS = log_buckets(64, 4.0, 13)


class Counter:
    """One monotone counter series (thread-safe updates)."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: LabelPairs):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = make_lock("metrics.series")

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount

    def set_to_at_least(self, total: float) -> None:
        """Raise the counter to ``total`` (sync from a monotone source
        like ``RunCounters``); never lowers it."""
        with self._lock:
            if total > self.value:
                self.value = total


class Gauge:
    """One point-in-time gauge series (thread-safe updates)."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: LabelPairs):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = make_lock("metrics.series")

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount


class Histogram:
    """One log-bucketed histogram series.

    ``bucket_counts[i]`` counts observations ``<= bounds[i]``
    *non-cumulatively*; the exposition renderer accumulates.  The
    overflow count (observations above the last bound) lands in the
    implicit ``+Inf`` bucket.
    """

    __slots__ = ("name", "labels", "bounds", "bucket_counts",
                 "count", "sum", "_lock")

    def __init__(self, name: str, labels: LabelPairs,
                 bounds: Sequence[float]):
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram bounds must be strictly increasing")
        self.name = name
        self.labels = labels
        self.bounds = tuple(float(b) for b in bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)  # + overflow
        self.count = 0
        self.sum = 0.0
        self._lock = make_lock("metrics.series")

    def observe(self, value: float) -> None:
        with self._lock:
            self.bucket_counts[bisect_left(self.bounds, value)] += 1
            self.count += 1
            self.sum += value

    # ------------------------------------------------------------------
    def percentile(self, q: float) -> float:
        """Approximate ``q``-quantile (``0 < q <= 1``) from the buckets.

        Linear interpolation inside the containing bucket; the overflow
        bucket reports its lower bound (the last finite boundary) — a
        conservative answer for an unbounded tail.  ``0.0`` when empty.
        """
        with self._lock:
            return self._percentile_locked(q)

    def _percentile_locked(self, q: float) -> float:
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, n in enumerate(self.bucket_counts):
            if n == 0:
                continue
            if cumulative + n >= rank:
                if i >= len(self.bounds):     # +Inf bucket
                    return self.bounds[-1] if self.bounds else 0.0
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = self.bounds[i]
                fraction = (rank - cumulative) / n
                return lo + (hi - lo) * fraction
            cumulative += n
        return self.bounds[-1] if self.bounds else 0.0

    def snapshot(self) -> Dict[str, Any]:
        """Serializable state: count/sum/cumulative buckets + derived
        percentiles — the form persisted into ``RunRecord.histograms``.

        Taken atomically under the series lock, so a scrape racing an
        ``observe`` never sees a count/bucket mismatch.
        """
        with self._lock:
            cumulative = 0
            buckets: List[List[Any]] = []
            for bound, n in zip(self.bounds, self.bucket_counts):
                cumulative += n
                buckets.append([bound, cumulative])
            buckets.append(["+Inf", self.count])
            return {
                "count": self.count,
                "sum": round(self.sum, 9),
                "buckets": buckets,
                "p50": round(self._percentile_locked(0.50), 9),
                "p95": round(self._percentile_locked(0.95), 9),
                "p99": round(self._percentile_locked(0.99), 9),
            }

    def merge_counts(self, other: "Histogram") -> None:
        """Fold another series' observations in (same bounds required).

        The two locks are taken sequentially, never nested, so merging
        cannot participate in a lock-order cycle.
        """
        with other._lock:
            bounds = other.bounds
            counts = list(other.bucket_counts)
            count = other.count
            total = other.sum
        if bounds != self.bounds:
            raise ValueError("cannot merge histograms with different "
                             "bucket boundaries")
        with self._lock:
            for i, n in enumerate(counts):
                self.bucket_counts[i] += n
            self.count += count
            self.sum += total


# ----------------------------------------------------------------------
# span -> histogram routing
# ----------------------------------------------------------------------
#: instrumented span names routed into latency histogram families by
#: :meth:`MetricsRegistry.observe_span`
SPAN_HISTOGRAMS: Dict[str, Tuple[str, str]] = {
    "sat.validate": ("repro_sat_call_seconds",
                     "supervised SAT validation call latency"),
    "eco.validate": ("repro_validation_seconds",
                     "full-domain candidate validation latency"),
    "sim.screen": ("repro_screen_seconds",
                   "simulation candidate-screen latency"),
    "lint.screen": ("repro_lint_screen_seconds",
                    "static candidate-screen latency"),
    "eco.output": ("repro_output_seconds",
                   "per-output rectification latency"),
    "eco.search": ("repro_search_seconds",
                   "symbolic search attempt latency"),
}

#: span name whose node count feeds the BDD-growth size histogram
BDD_SESSION_SPAN = "bdd.session"
BDD_NODES_HISTOGRAM = ("repro_bdd_session_nodes",
                       "BDD nodes grown per symbolic session")

JOURNAL_APPEND_HISTOGRAM = ("repro_journal_append_seconds",
                            "checkpoint-journal append latency")


class MetricsRegistry:
    """A named collection of metric families and their series.

    Thread-safe throughout: series creation is double-checked-locked
    (the hot path is one unlocked dict hit; the slow path re-checks
    under the registry lock, so a kind collision can never slip
    through the lock-free read), every series update takes the series'
    own lock (no lost increments), and the read paths copy under the
    registry lock so a mid-run scrape never iterates a dict another
    thread is growing.
    """

    def __init__(self):
        self._lock = make_lock("metrics.registry")
        #: family name -> (kind, help)
        self._families: Dict[str, Tuple[str, str]] = {}
        self._series: Dict[Tuple[str, LabelPairs], Any] = {}

    # ------------------------------------------------------------------
    def _get(self, kind: str, cls, name: str,
             labels: Optional[Dict[str, str]], help_: str, **kwargs):
        name = sanitize_metric_name(name)
        key = (name, _label_key(labels))
        series = self._series.get(key)
        if series is not None:
            if not isinstance(series, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{self._families[name][0]}, not {kind}")
            return series
        with self._lock:
            series = self._series.get(key)
            if series is None:
                family = self._families.get(name)
                if family is not None and family[0] != kind:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{family[0]}, not {kind}")
                if family is None:
                    self._families[name] = (kind, help_ or name)
                series = cls(name, key[1], **kwargs)
                self._series[key] = series
        return series

    def counter(self, name: str,
                labels: Optional[Dict[str, str]] = None,
                help: str = "") -> Counter:
        return self._get("counter", Counter, name, labels, help)

    def gauge(self, name: str,
              labels: Optional[Dict[str, str]] = None,
              help: str = "") -> Gauge:
        return self._get("gauge", Gauge, name, labels, help)

    def histogram(self, name: str,
                  labels: Optional[Dict[str, str]] = None,
                  help: str = "",
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        return self._get("histogram", Histogram, name, labels, help,
                         bounds=tuple(buckets if buckets is not None
                                      else LATENCY_BUCKETS))

    # ------------------------------------------------------------------
    def observe_span(self, name: str, duration: float,
                     tags: Optional[Dict[str, Any]] = None) -> None:
        """Route one finished span into its histogram family (if any).

        Called by :meth:`Trace._finish` for every span and by the live
        aggregator for streamed worker spans; unmapped names cost one
        dict miss.
        """
        mapped = SPAN_HISTOGRAMS.get(name)
        if mapped is not None:
            self.histogram(mapped[0], help=mapped[1]).observe(duration)
        elif name == BDD_SESSION_SPAN and tags:
            nodes = tags.get("nodes")
            if nodes is not None:
                self.histogram(BDD_NODES_HISTOGRAM[0],
                               help=BDD_NODES_HISTOGRAM[1],
                               buckets=SIZE_BUCKETS).observe(float(nodes))

    def sync_counters(self, totals: Dict[str, int],
                      prefix: str = "repro_counter_total") -> None:
        """Sync monotone ``RunCounters`` totals into labeled counters.

        The sampler calls this every tick; deltas accumulate because
        :meth:`Counter.set_to_at_least` never lowers a series.
        """
        for key, value in totals.items():
            if value:
                self.counter(prefix, labels={"counter": key},
                             help="RunCounters totals of the current run"
                             ).set_to_at_least(value)

    # ------------------------------------------------------------------
    def families(self) -> Dict[str, Tuple[str, str]]:
        with self._lock:
            return dict(self._families)

    def series(self, name: Optional[str] = None) -> List[Any]:
        name = sanitize_metric_name(name) if name else None
        with self._lock:
            items = sorted(self._series.items())
        return [s for (n, _), s in items if name is None or n == name]

    def histogram_snapshots(self) -> Dict[str, Dict[str, Any]]:
        """Per-family snapshots with label series merged.

        This is what :func:`repro.obs.store.record_from_result`
        persists into ``RunRecord.histograms`` so ``repro runs
        diff/regress`` can gate on tail latency.
        """
        with self._lock:
            items = sorted(self._series.items())
        merged: Dict[str, Histogram] = {}
        for (name, _), series in items:
            if not isinstance(series, Histogram):
                continue
            base = merged.get(name)
            if base is None:
                base = Histogram(name, (), series.bounds)
                merged[name] = base
            base.merge_counts(series)
        return {name: h.snapshot() for name, h in merged.items()}


#: the process-wide default registry (`--serve-metrics` serves the
#: run's registry, which the CLI aliases to this one)
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY


# ----------------------------------------------------------------------
# exposition rendering
# ----------------------------------------------------------------------
def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n"))


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _fmt_value(value: float) -> str:
    if value != value:                      # NaN
        return "NaN"
    if value in (math.inf, -math.inf):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _fmt_bound(bound: float) -> str:
    return "+Inf" if bound == math.inf else _fmt_value(bound)


def _labels_text(pairs: Iterable[Tuple[str, str]]) -> str:
    inner = ",".join(f'{sanitize_metric_name(k)}="{_escape_label(v)}"'
                     for k, v in pairs)
    return "{" + inner + "}" if inner else ""


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in strict Prometheus exposition format.

    One ``# HELP`` + ``# TYPE`` pair per family, histogram families as
    cumulative ``_bucket`` series (``le`` labels, terminal ``+Inf``)
    plus ``_sum`` and ``_count``.
    """
    lines: List[str] = []
    for name, (kind, help_) in sorted(registry.families().items()):
        lines.append(f"# HELP {name} {_escape_help(help_)}")
        lines.append(f"# TYPE {name} {kind}")
        for series in registry.series(name):
            labels = series.labels
            if kind == "histogram":
                # one atomic read per series: a scrape racing observe()
                # must never see bucket sums disagree with _count (the
                # strict parser rejects exactly that)
                with series._lock:
                    bucket_counts = list(series.bucket_counts)
                    count = series.count
                    total = series.sum
                cumulative = 0
                for bound, n in zip(series.bounds, bucket_counts):
                    cumulative += n
                    le = labels + (("le", _fmt_bound(bound)),)
                    lines.append(f"{name}_bucket{_labels_text(le)} "
                                 f"{cumulative}")
                le = labels + (("le", "+Inf"),)
                lines.append(f"{name}_bucket{_labels_text(le)} "
                             f"{count}")
                lines.append(f"{name}_sum{_labels_text(labels)} "
                             f"{_fmt_value(total)}")
                lines.append(f"{name}_count{_labels_text(labels)} "
                             f"{count}")
            else:
                lines.append(f"{name}{_labels_text(labels)} "
                             f"{_fmt_value(series.value)}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# strict exposition parsing (conformance tests + `repro watch`)
# ----------------------------------------------------------------------
class PrometheusParseError(ValueError):
    """The text violates the exposition format contract."""


_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)(?:\s+(?P<ts>-?\d+))?$")
_LABEL_RE = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>(?:\\.|[^"\\])*)"')


def _unescape_label(value: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _parse_labels(text: Optional[str], line: str) -> Dict[str, str]:
    if not text:
        return {}
    labels: Dict[str, str] = {}
    rest = text
    while rest:
        match = _LABEL_RE.match(rest)
        if match is None:
            raise PrometheusParseError(f"malformed labels in: {line!r}")
        labels[match.group("key")] = _unescape_label(match.group("val"))
        rest = rest[match.end():]
        if rest.startswith(","):
            rest = rest[1:]
        elif rest:
            raise PrometheusParseError(f"malformed labels in: {line!r}")
    return labels


def _parse_value(text: str, line: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        raise PrometheusParseError(
            f"unparsable sample value in: {line!r}") from None


def parse_prometheus_text(text: str) -> Dict[str, Dict[str, Any]]:
    """Strictly parse exposition text into family dicts.

    Returns ``{family: {"type": ..., "help": ..., "samples":
    [(name, labels, value), ...]}}`` and *validates* the contract the
    conformance satellite demands:

    * every sample belongs to a family announced by ``# TYPE`` (the
      ``_bucket``/``_sum``/``_count`` suffixes of a histogram family
      included) and every ``# TYPE`` has a ``# HELP``;
    * histogram bucket series carry ``le`` labels, end with ``+Inf``,
      have non-decreasing cumulative counts, and the ``+Inf`` bucket
      equals the family ``_count``.
    """
    families: Dict[str, Dict[str, Any]] = {}
    help_seen: Dict[str, str] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_ = rest.partition(" ")
            if not _NAME_RE.match(name):
                raise PrometheusParseError(f"bad HELP name in: {line!r}")
            help_seen[name] = help_
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            if not _NAME_RE.match(name):
                raise PrometheusParseError(f"bad TYPE name in: {line!r}")
            if kind not in ("counter", "gauge", "histogram", "summary",
                            "untyped"):
                raise PrometheusParseError(
                    f"unknown metric type {kind!r} in: {line!r}")
            if name in families:
                raise PrometheusParseError(
                    f"duplicate # TYPE for family {name!r}")
            if name not in help_seen:
                raise PrometheusParseError(
                    f"family {name!r} has # TYPE but no # HELP")
            families[name] = {"type": kind, "help": help_seen[name],
                              "samples": []}
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise PrometheusParseError(f"unparsable sample: {line!r}")
        sample_name = match.group("name")
        family = _family_of(sample_name, families)
        if family is None:
            raise PrometheusParseError(
                f"sample {sample_name!r} has no # TYPE family")
        labels = _parse_labels(match.group("labels"), line)
        value = _parse_value(match.group("value"), line)
        families[family]["samples"].append((sample_name, labels, value))
    _validate_histograms(families)
    return families


def _family_of(sample_name: str,
               families: Dict[str, Dict[str, Any]]) -> Optional[str]:
    if sample_name in families:
        return sample_name
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[:-len(suffix)]
            if base in families and families[base]["type"] == "histogram":
                return base
    return None


def _validate_histograms(families: Dict[str, Dict[str, Any]]) -> None:
    for name, family in families.items():
        if family["type"] != "histogram":
            continue
        series: Dict[LabelPairs, Dict[str, Any]] = {}
        for sample_name, labels, value in family["samples"]:
            base_labels = _label_key(
                {k: v for k, v in labels.items() if k != "le"})
            entry = series.setdefault(
                base_labels, {"buckets": [], "count": None, "sum": None})
            if sample_name == name + "_bucket":
                if "le" not in labels:
                    raise PrometheusParseError(
                        f"{name}_bucket sample without le label")
                entry["buckets"].append(
                    (_parse_value(labels["le"], labels["le"]), value))
            elif sample_name == name + "_count":
                entry["count"] = value
            elif sample_name == name + "_sum":
                entry["sum"] = value
        for labels_key, entry in series.items():
            buckets = entry["buckets"]
            if not buckets:
                raise PrometheusParseError(
                    f"histogram {name!r} has no _bucket series")
            bounds = [b for b, _ in buckets]
            if bounds != sorted(bounds):
                raise PrometheusParseError(
                    f"histogram {name!r} buckets out of le order")
            counts = [c for _, c in buckets]
            if any(b > a for a, b in zip(counts[1:], counts)):
                raise PrometheusParseError(
                    f"histogram {name!r} bucket counts not cumulative")
            if bounds[-1] != math.inf:
                raise PrometheusParseError(
                    f"histogram {name!r} is missing the +Inf bucket")
            if entry["count"] is None or entry["sum"] is None:
                raise PrometheusParseError(
                    f"histogram {name!r} is missing _count or _sum")
            if counts[-1] != entry["count"]:
                raise PrometheusParseError(
                    f"histogram {name!r} +Inf bucket ({counts[-1]}) != "
                    f"_count ({entry['count']})")


def histogram_percentiles(family: Dict[str, Any]
                          ) -> Dict[LabelPairs, Dict[str, float]]:
    """Derive p50/p95/p99 from a parsed histogram family's buckets.

    The ``repro watch`` live dashboard uses this on scraped
    ``/metrics`` payloads.
    """
    out: Dict[LabelPairs, Dict[str, float]] = {}
    series: Dict[LabelPairs, List[Tuple[float, float]]] = {}
    for sample_name, labels, value in family["samples"]:
        if not sample_name.endswith("_bucket"):
            continue
        base = _label_key({k: v for k, v in labels.items() if k != "le"})
        series.setdefault(base, []).append(
            (_parse_value(labels["le"], labels["le"]), value))
    for labels_key, buckets in series.items():
        buckets.sort()
        finite = [(b, c) for b, c in buckets if b != math.inf]
        total = buckets[-1][1] if buckets else 0
        hist = Histogram("tmp", (), [b for b, _ in finite] or [1.0])
        previous = 0
        for i, (_, cumulative) in enumerate(finite):
            hist.bucket_counts[i] = int(cumulative - previous)
            previous = int(cumulative)
        hist.bucket_counts[len(finite)] = int(total - previous)
        hist.count = int(total)
        out[labels_key] = {"p50": hist.percentile(0.50),
                           "p95": hist.percentile(0.95),
                           "p99": hist.percentile(0.99),
                           "count": float(total)}
    return out
