"""Hierarchical span tracing for the rectification engine.

A :class:`Trace` records a tree of named, timed *spans* — one per
phase of a run (per-output rectification, point-set enumeration,
choice search, SAT validation, BDD sessions, ...) — plus instant
*events* (degradation, escalation retries, node-limit hits).  Each
span carries free-form tags and, when the trace is bound to a
:class:`~repro.runtime.counters.RunCounters` object, the *delta* of
every counter over the span's lifetime, so SAT conflicts and BDD nodes
can be attributed phase by phase.

Spans are context managers::

    with trace.span("eco.output", output="o3") as sp:
        ...
        sp.tag(how="rewire")

or started/finished manually when the boundaries are not lexical
(the supervisor's BDD sessions use this)::

    sp = trace.span("bdd.session")
    ...
    sp.tag(nodes=manager.num_nodes).finish()

When tracing is off the engine threads :data:`NULL_TRACE` instead — a
singleton whose ``span``/``event`` calls return a shared inert object,
so the instrumented hot paths pay one attribute lookup and one call,
nothing else.

The module depends on nothing but the standard library; ``runtime``
and ``eco`` sit above it.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional


class Span:
    """One timed, tagged phase of a run.

    Timestamps are seconds relative to the owning trace's epoch
    (monotonic clock).  ``counters`` holds the nonzero deltas of the
    bound counters object between enter and finish.
    """

    __slots__ = ("trace", "span_id", "parent_id", "name", "tags",
                 "t_start", "t_end", "counters", "_snapshot")

    def __init__(self, trace: "Trace", span_id: int,
                 parent_id: Optional[int], name: str,
                 tags: Dict[str, Any], t_start: float,
                 snapshot: Optional[Dict[str, int]]):
        self.trace = trace
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.tags = tags
        self.t_start = t_start
        self.t_end: Optional[float] = None
        self.counters: Dict[str, int] = {}
        self._snapshot = snapshot

    # ------------------------------------------------------------------
    def tag(self, **tags: Any) -> "Span":
        """Attach or overwrite tags; returns self for chaining."""
        self.tags.update(tags)
        return self

    def finish(self) -> None:
        if self.t_end is None:
            self.trace._finish(self)

    @property
    def duration(self) -> float:
        if self.t_end is None:
            return 0.0
        return self.t_end - self.t_start

    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None and "error" not in self.tags:
            self.tags["error"] = exc_type.__name__
        self.finish()
        return False

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, id={self.span_id}, "
                f"t={self.t_start:.4f}..{self.t_end}, tags={self.tags})")


class Event:
    """An instant, tagged occurrence attached to the enclosing span."""

    __slots__ = ("name", "t", "span_id", "tags")

    def __init__(self, name: str, t: float, span_id: Optional[int],
                 tags: Dict[str, Any]):
        self.name = name
        self.t = t
        self.span_id = span_id
        self.tags = tags


class Trace:
    """Collects the spans and events of one rectification run.

    Args:
        name: run label (usually the implementation's name).
        clock: monotonic time source (injectable for tests).
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`;
            when bound, every finished span is routed into its latency
            histogram family (``sat.validate`` →
            ``repro_sat_call_seconds``, ...) so ``/metrics`` and the
            persisted ``RunRecord.histograms`` see live distributions.
    """

    enabled = True

    def __init__(self, name: str = "run",
                 clock: Callable[[], float] = time.monotonic,
                 metrics=None):
        self.name = name
        self._clock = clock
        self.epoch = clock()
        #: bound MetricsRegistry or None
        self.metrics = metrics
        #: optional live listener (``span_open(span)`` /
        #: ``span_close(span)``) — parallel workers bind a
        #: :class:`~repro.obs.live.WorkerPublisher` here to stream
        #: span activity to the supervisor while they run
        self.listener = None
        #: finished spans, in finish order
        self.spans: List[Span] = []
        self.events: List[Event] = []
        #: run-level metadata (final counters, degradation, ...)
        self.meta: Dict[str, Any] = {"name": name}
        #: monotone span-activity counter (bumped on every span open /
        #: finish); the sampler's stall detector watches it to tell a
        #: long-running span from a wedged run
        self.progress = 0
        self._stack: List[Span] = []
        self._counters = None
        self._next_id = 1

    # ------------------------------------------------------------------
    def set_counters(self, counters) -> None:
        """Bind a ``RunCounters``-shaped object (needs ``as_dict()``);
        subsequent spans capture its per-span deltas."""
        self._counters = counters

    def span(self, name: str, **tags: Any) -> Span:
        """Open a child span of the currently-open span."""
        parent = self._stack[-1].span_id if self._stack else None
        snapshot = (self._counters.as_dict()
                    if self._counters is not None else None)
        sp = Span(self, self._next_id, parent, name, dict(tags),
                  self._clock() - self.epoch, snapshot)
        self._next_id += 1
        self.progress += 1
        self._stack.append(sp)
        if self.listener is not None:
            self.listener.span_open(sp)
        return sp

    def event(self, name: str, **tags: Any) -> None:
        parent = self._stack[-1].span_id if self._stack else None
        self.events.append(
            Event(name, self._clock() - self.epoch, parent, dict(tags)))

    def _finish(self, span: Span) -> None:
        span.t_end = self._clock() - self.epoch
        if span._snapshot is not None and self._counters is not None:
            now = self._counters.as_dict()
            before = span._snapshot
            span.counters = {k: v - before.get(k, 0)
                             for k, v in now.items()
                             if v != before.get(k, 0)}
        try:
            self._stack.remove(span)
        except ValueError:
            pass
        self.progress += 1
        self.spans.append(span)
        if self.metrics is not None:
            self.metrics.observe_span(span.name, span.duration, span.tags)
        if self.listener is not None:
            self.listener.span_close(span)

    # ------------------------------------------------------------------
    def absorb(self, records: List[Dict[str, Any]],
               parent: Optional[int] = None,
               offset_s: float = 0.0) -> None:
        """Graft another trace's :meth:`records` into this trace.

        Parallel workers trace into private :class:`Trace` objects and
        ship the serialized records back; absorbing re-ids every span
        (offset by this trace's id counter, so ids stay unique), hangs
        worker roots under ``parent`` (or under the currently open span
        when ``None``) and shifts timestamps by ``offset_s``.  ``meta``
        records are dropped — the parent run owns the metadata.
        """
        base = self._next_id
        if parent is None and self._stack:
            parent = self._stack[-1].span_id
        max_id = 0
        for rec in records:
            kind = rec.get("type")
            if kind == "span":
                max_id = max(max_id, rec["id"])
                sp = Span(self, base + rec["id"],
                          (parent if rec.get("parent") is None
                           else base + rec["parent"]),
                          rec["name"], dict(rec.get("tags", {})),
                          rec["ts"] + offset_s, None)
                sp.t_end = sp.t_start + rec.get("dur", 0.0)
                sp.counters = dict(rec.get("counters", {}))
                self.spans.append(sp)
            elif kind == "event":
                span_id = rec.get("span")
                self.events.append(Event(
                    rec["name"], rec["ts"] + offset_s,
                    parent if span_id is None else base + span_id,
                    dict(rec.get("tags", {}))))
        self._next_id = base + max_id + 1
        self.progress += 1

    # ------------------------------------------------------------------
    @property
    def wall_seconds(self) -> float:
        """End of the latest finished span (= attributed wall time)."""
        return max((s.t_end for s in self.spans if s.t_end is not None),
                   default=0.0)

    def records(self) -> List[Dict[str, Any]]:
        """The trace as plain serializable records.

        One ``meta`` record, then every finished span (start order) and
        every event, merged in timestamp order.  This is the canonical
        interchange form: the exporters serialize it and the summary
        renderer consumes it (from a live trace or re-loaded file).
        """
        out: List[Dict[str, Any]] = [dict(self.meta, type="meta")]
        items: List[Dict[str, Any]] = []
        for s in self.spans:
            items.append({
                "type": "span",
                "id": s.span_id,
                "parent": s.parent_id,
                "name": s.name,
                "ts": s.t_start,
                "dur": s.duration,
                "tags": dict(s.tags),
                "counters": dict(s.counters),
            })
        for e in self.events:
            items.append({
                "type": "event",
                "name": e.name,
                "ts": e.t,
                "span": e.span_id,
                "tags": dict(e.tags),
            })
        items.sort(key=lambda r: r["ts"])
        out.extend(items)
        return out


class _NullSpan:
    """Inert span: accepts the full :class:`Span` surface, does nothing."""

    __slots__ = ()
    tags: Dict[str, Any] = {}
    counters: Dict[str, int] = {}
    duration = 0.0

    def tag(self, **tags: Any) -> "_NullSpan":
        return self

    def finish(self) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTrace:
    """No-op trace: the default when observability is not requested.

    ``span``/``event`` cost one attribute lookup and one call; nothing
    is allocated or recorded, so instrumented code needs no ``if
    enabled`` guards.
    """

    enabled = False
    spans: List[Span] = []
    events: List[Event] = []
    wall_seconds = 0.0
    progress = 0
    metrics = None
    listener = None

    @property
    def meta(self) -> Dict[str, Any]:
        # a fresh throwaway dict per access: writes vanish silently
        return {}

    def set_counters(self, counters) -> None:
        pass

    def span(self, name: str, **tags: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **tags: Any) -> None:
        pass

    def absorb(self, records: List[Dict[str, Any]],
               parent: Optional[int] = None,
               offset_s: float = 0.0) -> None:
        pass

    def records(self) -> List[Dict[str, Any]]:
        return []


NULL_TRACE = NullTrace()


def ensure_trace(trace: Optional[Trace]):
    """``trace`` itself, or :data:`NULL_TRACE` for ``None``."""
    return trace if trace is not None else NULL_TRACE
