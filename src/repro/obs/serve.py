"""``--serve-metrics``: the in-process Prometheus/health endpoint.

A single daemon thread runs a stdlib ``ThreadingHTTPServer`` for the
duration of a run, serving

* ``GET /metrics`` — the run's :class:`~repro.obs.metrics
  .MetricsRegistry` in strict Prometheus exposition format
  (:func:`~repro.obs.metrics.render_prometheus`: ``# HELP``/``# TYPE``
  per family, histogram ``_bucket``/``_sum``/``_count`` with ``le``
  labels and ``+Inf``), followed by the per-phase snapshot the PR 2/4
  exporter derives from the trace;
* ``GET /healthz`` — a JSON liveness document: run name and phase
  (the open span stack), the tracer's monotone progress counter, the
  stall verdict from the PR 4 detector, plus anything the caller's
  ``health_provider`` contributes (outputs completed, live workers).

Port ``0`` binds an ephemeral port (tests, parallel CI); the bound
port is on :attr:`MetricsServer.port` and in the startup log line.
Request logging is routed to the ``repro.obs`` logger at DEBUG so a
scrape loop cannot spam stderr.

Shutdown is idempotent and leak-free: ``stop()`` may be called any
number of times, closes the listening socket even when joining the
serve thread raises mid-run, and the request threads are daemons — so
two sequential runs can bind the same port.

Stdlib only apart from :mod:`repro.runtime.sync` (itself pure
stdlib), which supplies the sanctioned thread factory.
"""

from __future__ import annotations

import json
import logging
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional

from repro.obs.metrics import MetricsRegistry, render_prometheus
from repro.runtime.sync import make_thread

logger = logging.getLogger("repro.obs")

HealthProvider = Callable[[], Dict[str, Any]]


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-metrics/1"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = self.server.owner.metrics_text()
            self._reply(200, body, "text/plain; version=0.0.4")
        elif path == "/healthz":
            body = json.dumps(self.server.owner.health(), indent=2,
                              sort_keys=True, default=str) + "\n"
            self._reply(200, body, "application/json")
        else:
            self._reply(404, "not found: try /metrics or /healthz\n",
                        "text/plain")

    def _reply(self, status: int, body: str, content_type: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, fmt: str, *args: Any) -> None:
        logger.debug("metrics endpoint: " + fmt, *args)


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    owner: "MetricsServer"


class MetricsServer:
    """The endpoint's lifecycle: bind, serve on a daemon thread, stop.

    Args:
        registry: the run's metrics registry (``/metrics`` body).
        health_provider: zero-argument callable merged into the
            ``/healthz`` document on every request; keep it cheap and
            lock-free (it runs on the request thread).
        trace: optional trace whose per-phase snapshot is appended to
            ``/metrics`` (the PR 2/4 ``prometheus_text`` exporter).
        port: TCP port; ``0`` binds an ephemeral one.
        host: bind address (loopback by default — this is an
            introspection endpoint, not a public listener).
    """

    def __init__(self, registry: MetricsRegistry,
                 health_provider: Optional[HealthProvider] = None,
                 trace=None, port: int = 0, host: str = "127.0.0.1"):
        self.registry = registry
        self.health_provider = health_provider
        self.trace = trace
        self._server = _Server((host, port), _Handler)
        self._server.owner = self
        self.host, self.port = self._server.server_address[:2]
        self._thread: Optional[Any] = None
        self._stopped = False

    # ------------------------------------------------------------------
    def start(self) -> "MetricsServer":
        self._thread = make_thread(
            self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-obs-serve", daemon=True)
        self._thread.start()
        logger.info("metrics endpoint on http://%s:%d "
                    "(/metrics, /healthz)", self.host, self.port)
        return self

    def stop(self) -> None:
        """Tear the endpoint down; safe to call repeatedly.

        The listening socket is closed in a ``finally`` so the port is
        released even when the serve thread refuses to shut down (a
        hung handler, a join timeout mid-exception) — a later run must
        always be able to bind the same port.
        """
        if self._stopped:
            return
        self._stopped = True
        thread, self._thread = self._thread, None
        try:
            if thread is not None:
                self._server.shutdown()
                thread.join(timeout=5.0)
        finally:
            self._server.server_close()

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    def metrics_text(self) -> str:
        if self.trace is not None and getattr(self.trace, "enabled",
                                              False):
            from repro.obs.export import prometheus_text
            try:
                return prometheus_text(self.trace,
                                       registry=self.registry)
            except Exception:  # scrape must survive a mid-run race
                logger.debug("phase snapshot unavailable mid-run",
                             exc_info=True)
        return render_prometheus(self.registry)

    def health(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"status": "ok"}
        trace = self.trace
        if trace is not None and getattr(trace, "enabled", False):
            doc["run"] = trace.name
            doc["progress"] = trace.progress
            stack = getattr(trace, "_stack", [])
            doc["phase"] = [sp.name for sp in stack]
            doc["spans_finished"] = len(trace.spans)
            stalled = any(e.name == "run.stalled" for e in trace.events)
            doc["stalled"] = stalled
            if stalled:
                doc["status"] = "stalled"
        if self.health_provider is not None:
            try:
                doc.update(self.health_provider())
            except Exception as exc:
                doc["health_provider_error"] = repr(exc)
        return doc


def maybe_serve(registry, port: Optional[int],
                health_provider: Optional[HealthProvider] = None,
                trace=None) -> Optional[MetricsServer]:
    """A started server when ``port`` is not ``None``; else ``None``.

    Binding failures (port in use, no loopback in the sandbox) degrade
    to a warning — telemetry must never take the run down.
    """
    if port is None:
        return None
    try:
        return MetricsServer(registry, health_provider=health_provider,
                             trace=trace, port=port).start()
    except OSError as exc:
        logger.warning("cannot serve metrics on port %s: %s", port, exc)
        return None
