"""Trace exporters and the loader used by ``repro trace``.

Three output formats:

* **JSONL** — one record per line (a ``meta`` header, then spans and
  events in timestamp order); trivially greppable and streamable.
* **Chrome trace-event JSON** — a single object with ``traceEvents``
  (complete ``"X"`` events for spans, instant ``"i"`` events), openable
  directly in Perfetto (https://ui.perfetto.dev) or
  ``chrome://tracing``.  Span ids, tags and counter deltas ride in
  ``args`` so the file round-trips losslessly through
  :func:`read_trace`.
* **Prometheus text** — a point-in-time metrics snapshot: per-phase
  time/call/conflict/node totals plus every run counter, suitable for
  a textfile-collector scrape.

:func:`read_trace` sniffs the format (JSONL vs. Chrome) and returns
the canonical record list that :mod:`repro.obs.summary` consumes.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Sequence

from repro.obs.atomicio import atomic_write_text
from repro.obs.summary import summarize


def _records_of(trace_or_records) -> List[Dict[str, Any]]:
    if hasattr(trace_or_records, "records"):
        return trace_or_records.records()
    return list(trace_or_records)


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def write_jsonl(trace_or_records, path: str) -> None:
    """One canonical record per line (written atomically)."""
    records = _records_of(trace_or_records)
    lines = [json.dumps(rec, sort_keys=True, default=str)
             for rec in records]
    atomic_write_text(path, "".join(line + "\n" for line in lines))


# ----------------------------------------------------------------------
# Chrome trace-event format
# ----------------------------------------------------------------------
_PID = 1
_TID = 1


def chrome_payload(trace_or_records) -> Dict[str, Any]:
    """The Chrome trace-event object (before serialization)."""
    records = _records_of(trace_or_records)
    meta: Dict[str, Any] = {}
    events: List[Dict[str, Any]] = []
    for rec in records:
        kind = rec.get("type")
        if kind == "meta":
            meta = {k: v for k, v in rec.items() if k != "type"}
        elif kind == "span":
            events.append({
                "name": rec["name"],
                "cat": "repro",
                "ph": "X",
                "ts": rec["ts"] * 1e6,          # microseconds
                "dur": rec.get("dur", 0.0) * 1e6,
                "pid": _PID,
                "tid": _TID,
                "args": {
                    "id": rec.get("id"),
                    "parent": rec.get("parent"),
                    "tags": rec.get("tags", {}),
                    "counters": rec.get("counters", {}),
                },
            })
        elif kind == "event":
            events.append({
                "name": rec["name"],
                "cat": "repro",
                "ph": "i",
                "s": "t",
                "ts": rec["ts"] * 1e6,
                "pid": _PID,
                "tid": _TID,
                "args": {
                    "span": rec.get("span"),
                    "tags": rec.get("tags", {}),
                },
            })
        else:
            # forward compatibility: a record kind this writer does not
            # know still rides along as a raw instant event and is
            # restored verbatim by read_trace
            events.append({
                "name": str(kind),
                "cat": "repro.raw",
                "ph": "i",
                "s": "t",
                "ts": float(rec.get("ts", 0.0)) * 1e6,
                "pid": _PID,
                "tid": _TID,
                "args": {"record": rec},
            })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": meta,
    }


def write_chrome(trace_or_records, path: str) -> None:
    """Perfetto / ``chrome://tracing`` compatible JSON (atomic write)."""
    atomic_write_text(
        path, json.dumps(chrome_payload(trace_or_records), default=str))


# ----------------------------------------------------------------------
# Prometheus text snapshot
# ----------------------------------------------------------------------
def _escape(value: str) -> str:
    """Escape a label value per the Prometheus exposition format.

    Backslash, double quote *and line feed* must be escaped — phase
    names contain ``.``/``/`` (legal in label values) but user-supplied
    tags and run names can contain anything.
    """
    return (value.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n"))


_METRIC_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str) -> str:
    """Coerce ``name`` into a legal Prometheus metric name.

    Illegal characters (``.`` in phase names, ``-``, whitespace, ...)
    become ``_``; a leading digit is prefixed with ``_``.
    """
    cleaned = _METRIC_NAME_RE.sub("_", name) or "_"
    if cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def prometheus_text(trace_or_records, registry=None) -> str:
    """Per-phase and per-run metrics in Prometheus exposition format.

    With a :class:`~repro.obs.metrics.MetricsRegistry` (passed
    explicitly, or found on a live trace's ``metrics`` attribute) the
    payload leads with the registry's series — labeled counters,
    gauges and full histogram ``_bucket``/``_sum``/``_count`` families
    — followed by the per-phase snapshot derived from the trace.
    """
    if registry is None:
        registry = getattr(trace_or_records, "metrics", None)
    prefix = ""
    if registry is not None:
        from repro.obs.metrics import render_prometheus
        prefix = render_prometheus(registry)
    records = _records_of(trace_or_records)
    summary = summarize(records)

    flat = []

    def walk(node, path):
        full = path + (node.name,)
        flat.append(("/".join(full), node))
        for c in node.children:
            walk(c, full)

    for root in summary.roots:
        walk(root, ())

    lines: List[str] = []

    def emit(metric: str, mtype: str, help_: str,
             samples: Sequence) -> None:
        metric = sanitize_metric_name(metric)
        lines.append(f"# HELP {metric} {help_}")
        lines.append(f"# TYPE {metric} {mtype}")
        for labels, value in samples:
            label_s = ""
            if labels:
                inner = ",".join(
                    f'{sanitize_metric_name(str(k))}="{_escape(str(v))}"'
                    for k, v in labels)
                label_s = "{" + inner + "}"
            lines.append(f"{metric}{label_s} {value}")

    emit("repro_run_info", "gauge",
         "constant 1; the run name rides in the label",
         [((("name", summary.name),), 1)])
    emit("repro_phase_seconds_total", "counter",
         "wall seconds spent per phase (children included)",
         [(((("phase", name),)), f"{node.seconds:.6f}")
          for name, node in flat])
    emit("repro_phase_calls_total", "counter",
         "spans recorded per phase",
         [(((("phase", name),)), node.calls) for name, node in flat])
    emit("repro_phase_sat_conflicts_total", "counter",
         "SAT conflicts attributed per phase",
         [(((("phase", name),)), node.sat_conflicts)
          for name, node in flat])
    emit("repro_phase_bdd_nodes_total", "counter",
         "BDD nodes attributed per phase",
         [(((("phase", name),)), node.bdd_nodes) for name, node in flat])
    emit("repro_run_wall_seconds", "gauge",
         "wall time covered by the trace",
         [((), f"{summary.wall_seconds:.6f}")])
    emit("repro_run_degraded", "gauge",
         "1 when the run degraded to the guaranteed fallback",
         [((), int(summary.degraded))])
    if summary.counters:
        emit("repro_run_counter_total", "counter",
             "final RunCounters values of the run",
             [((("counter", k),), v)
              for k, v in sorted(summary.counters.items())])
    return prefix + "\n".join(lines) + "\n"


def write_prometheus(trace_or_records, path: str, registry=None) -> None:
    atomic_write_text(path, prometheus_text(trace_or_records,
                                            registry=registry))


# ----------------------------------------------------------------------
# loading
# ----------------------------------------------------------------------
def read_trace(path: str) -> List[Dict[str, Any]]:
    """Load a saved trace (JSONL or Chrome format) as canonical records."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        payload = None
    if isinstance(payload, dict) and "traceEvents" in payload:
        return _records_from_chrome(payload)
    if isinstance(payload, dict):
        return [payload]  # single-record JSONL file
    records = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


def _records_from_chrome(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    meta = dict(payload.get("otherData") or {})
    meta["type"] = "meta"
    records: List[Dict[str, Any]] = [meta]
    next_id = 1
    for ev in payload.get("traceEvents", ()):
        args = ev.get("args") or {}
        if ev.get("ph") == "X":
            span_id = args.get("id")
            if span_id is None:
                span_id = f"x{next_id}"
                next_id += 1
            records.append({
                "type": "span",
                "id": span_id,
                "parent": args.get("parent"),
                "name": ev.get("name", "?"),
                "ts": ev.get("ts", 0.0) / 1e6,
                "dur": ev.get("dur", 0.0) / 1e6,
                "tags": args.get("tags", {}),
                "counters": args.get("counters", {}),
            })
        elif ev.get("ph") == "i":
            if ev.get("cat") == "repro.raw" and "record" in args:
                # a record kind unknown to the writer, preserved verbatim
                records.append(args["record"])
                continue
            records.append({
                "type": "event",
                "name": ev.get("name", "?"),
                "ts": ev.get("ts", 0.0) / 1e6,
                "span": args.get("span"),
                "tags": args.get("tags", {}),
            })
    return records
