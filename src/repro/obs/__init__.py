"""Observability: hierarchical run tracing, exporters, summaries.

The engine is instrumented with :class:`Trace` spans end to end — per
failing output, point-set enumeration, candidate ranking, choice
search, the simulation screen, every supervised SAT validation, every
BDD session, resynthesis, and the degradation events.  A finished
trace exports as JSONL, Chrome trace-event JSON (Perfetto /
``chrome://tracing``), or a Prometheus-style metrics snapshot, and
renders as a phase tree with SAT-conflict and BDD-node attribution
(``repro trace <file>``).

When no trace is requested the engine threads :data:`NULL_TRACE`,
whose calls are inert — instrumentation costs one attribute lookup
and one call per site.

Like ``runtime``, this package sits at the bottom of the layering: it
depends on the standard library only and is driven by ``eco`` and
``cli``.
"""

from repro.obs.trace import (
    NULL_TRACE,
    Event,
    NullTrace,
    Span,
    Trace,
    ensure_trace,
)
from repro.obs.atomicio import (
    atomic_write_text,
    detect_torn_tail,
    salvage_jsonl,
)
from repro.obs.export import (
    chrome_payload,
    prometheus_text,
    read_trace,
    sanitize_metric_name,
    write_chrome,
    write_jsonl,
    write_prometheus,
)
from repro.obs.live import LiveAggregator, LiveBus, WorkerPublisher
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    SIZE_BUCKETS,
    SPAN_HISTOGRAMS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PrometheusParseError,
    get_registry,
    histogram_percentiles,
    log_buckets,
    parse_prometheus_text,
    render_prometheus,
)
from repro.obs.sampler import RunSampler, maybe_sampler
from repro.obs.serve import MetricsServer, maybe_serve
from repro.obs.store import (
    DEFAULT_STORE_DIR,
    MetricDelta,
    Regression,
    RegressionThresholds,
    RunRecord,
    RunStore,
    RunStoreError,
    check_regressions,
    diff_records,
    record_from_result,
)
from repro.obs.summary import (
    HotOutput,
    PhaseNode,
    TraceSummary,
    brief_phase_lines,
    format_summary,
    summarize,
)

__all__ = [
    "NULL_TRACE",
    "Event",
    "NullTrace",
    "Span",
    "Trace",
    "ensure_trace",
    "atomic_write_text",
    "detect_torn_tail",
    "salvage_jsonl",
    "chrome_payload",
    "prometheus_text",
    "read_trace",
    "sanitize_metric_name",
    "write_chrome",
    "write_jsonl",
    "write_prometheus",
    "LiveAggregator",
    "LiveBus",
    "WorkerPublisher",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "SPAN_HISTOGRAMS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PrometheusParseError",
    "get_registry",
    "histogram_percentiles",
    "log_buckets",
    "parse_prometheus_text",
    "render_prometheus",
    "MetricsServer",
    "maybe_serve",
    "RunSampler",
    "maybe_sampler",
    "DEFAULT_STORE_DIR",
    "MetricDelta",
    "Regression",
    "RegressionThresholds",
    "RunRecord",
    "RunStore",
    "RunStoreError",
    "check_regressions",
    "diff_records",
    "record_from_result",
    "HotOutput",
    "PhaseNode",
    "TraceSummary",
    "brief_phase_lines",
    "format_summary",
    "summarize",
]
