"""The ``repro runs`` subcommand: inspect the persistent run store.

Five verbs over :class:`~repro.obs.store.RunStore`:

* ``list``    — one line per recorded run (id, kind, name, age, wall
  time, outcome);
* ``show``    — the full record of one run (``--json`` for the raw
  payload);
* ``diff``    — metric deltas between two runs;
* ``regress`` — compare a run against a baseline under noise
  thresholds; exits ``1`` when a regression is detected, which makes
  it usable as a CI gate;
* ``recover`` — crash-recovery sweep: salvage torn writes, rebuild the
  index, and list the interrupted runs ``repro eco --resume`` can
  continue.

Run references accept ``last`` / ``first``, negative indexes (``-2`` =
second newest) and unique run-id prefixes.  This module is on the
``RI006`` print allowlist — it *is* CLI surface, driven from
:mod:`repro.cli`.
"""

from __future__ import annotations

import argparse
import json
from typing import Any, Dict, List

from repro.obs.store import (
    MetricDelta,
    RegressionThresholds,
    RunRecord,
    RunStore,
    check_regressions,
    diff_records,
)


# ----------------------------------------------------------------------
# rendering helpers
# ----------------------------------------------------------------------
def _age(entry_started: float, now_s: float) -> str:
    delta = max(0.0, now_s - entry_started)
    if delta < 120:
        return f"{delta:.0f}s ago"
    if delta < 7200:
        return f"{delta / 60:.0f}m ago"
    if delta < 172800:
        return f"{delta / 3600:.1f}h ago"
    return f"{delta / 86400:.1f}d ago"


def _format_list(entries: List[Dict[str, Any]], now_s: float) -> str:
    lines = [f"{'run id':<24} {'kind':<10} {'name':<18} {'age':>9} "
             f"{'wall':>9} outcome"]
    for e in entries:
        outcome = str(e.get("outcome", "?"))
        if e.get("degraded"):
            outcome += " (degraded)"
        lines.append(
            f"{str(e.get('run_id', '?')):<24} "
            f"{str(e.get('kind', '?')):<10} "
            f"{str(e.get('name', '?')):<18} "
            f"{_age(float(e.get('started_at', 0.0)), now_s):>9} "
            f"{float(e.get('wall_seconds', 0.0)):>8.3f}s {outcome}")
    return "\n".join(lines)


def _fmt_latency(value: float) -> str:
    if value >= 1.0:
        return f"{value:.2f}s"
    return f"{value * 1000:.1f}ms"


def _format_show(record: RunRecord) -> str:
    lines = [
        f"run      : {record.run_id}",
        f"kind     : {record.kind}",
        f"name     : {record.name}",
        f"git sha  : {record.git_sha or '?'}",
        f"wall     : {record.wall_seconds:.3f}s",
        f"outcome  : {record.outcome}"
        + (f" (degraded: {record.degrade_reason})" if record.degraded
           else ""),
        f"strict   : {record.strict}",
    ]
    nonzero = {k: v for k, v in sorted(record.counters.items()) if v}
    if nonzero:
        lines.append("counters : " + ", ".join(
            f"{k}={v}" for k, v in nonzero.items()))
    if record.resolution:
        lines.append("resolved : " + ", ".join(
            f"{k}={v}" for k, v in sorted(record.resolution.items())))
    if record.lint.get("lint_screens"):
        lines.append(
            f"lint     : {record.lint['lint_screens']} screens, "
            f"{record.lint['lint_rejects']} rejects "
            f"({100.0 * record.lint['lint_reject_rate']:.0f}%)")
    if record.phases:
        lines.append(f"{'phase':<42} {'calls':>6} {'time':>9} "
                     f"{'sat-conf':>9} {'bdd-nodes':>10}")
        for row in record.phases:
            depth = row["phase"].count("/")
            name = "  " * depth + row["phase"].rsplit("/", 1)[-1]
            lines.append(
                f"{name:<42} {row['calls']:>6} {row['seconds']:>8.3f}s "
                f"{row['sat_conflicts']:>9} {row['bdd_nodes']:>10}")
    if record.samples:
        first, last = record.samples[0], record.samples[-1]
        lines.append(
            f"samples  : {len(record.samples)} obs.sample points, "
            f"bdd_nodes {first.get('bdd_nodes', 0)} -> "
            f"{last.get('bdd_nodes', 0)}")
    populated = {name: snap for name, snap
                 in sorted(record.histograms.items())
                 if snap.get("count")}
    if populated:
        lines.append(f"{'histogram':<32} {'n':>6} {'p50':>10} "
                     f"{'p95':>10} {'p99':>10}")
        for name, snap in populated.items():
            unit = (_fmt_latency if name.endswith("_seconds")
                    else lambda v: f"{v:g}")
            lines.append(
                f"{name:<32} {snap['count']:>6} "
                f"{unit(float(snap.get('p50', 0))):>10} "
                f"{unit(float(snap.get('p95', 0))):>10} "
                f"{unit(float(snap.get('p99', 0))):>10}")
    if record.events:
        lines.append("events   : " + ", ".join(
            f"{k}={v}" for k, v in sorted(record.events.items())))
    return "\n".join(lines)


def _format_diff(baseline: RunRecord, current: RunRecord,
                 deltas: List[MetricDelta]) -> str:
    lines = [f"diff: {baseline.run_id} (baseline) -> {current.run_id}",
             f"{'metric':<32} {'baseline':>12} {'current':>12} "
             f"{'delta':>12} {'%':>8}"]
    for d in deltas:
        pct = f"{d.pct:+.1f}%" if d.pct is not None else "-"
        lines.append(f"{d.metric:<32} {d.baseline:>12.3f} "
                     f"{d.current:>12.3f} {d.delta:>+12.3f} {pct:>8}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# verbs
# ----------------------------------------------------------------------
def _cmd_list(store: RunStore, args: argparse.Namespace) -> int:
    entries = store.list()
    if args.limit:
        entries = entries[-args.limit:]
    if args.json:
        print(json.dumps(entries, indent=2, sort_keys=True))
        return 0
    if not entries:
        print(f"no runs recorded (store: {store.root})")
        return 0
    from repro.runtime.clock import now
    print(_format_list(entries, now()))
    if store.skipped:
        print(f"warning: skipped {store.skipped} unparsable record "
              "line(s)")
    return 0


def _cmd_show(store: RunStore, args: argparse.Namespace) -> int:
    record = store.resolve(args.ref)
    if args.json:
        print(json.dumps(record.to_json(), indent=2, sort_keys=True))
    else:
        print(_format_show(record))
    return 0


def _cmd_diff(store: RunStore, args: argparse.Namespace) -> int:
    baseline = store.resolve(args.baseline_ref)
    current = store.resolve(args.current_ref)
    deltas = diff_records(baseline, current)
    if args.json:
        print(json.dumps([{
            "metric": d.metric, "baseline": d.baseline,
            "current": d.current, "delta": d.delta, "pct": d.pct,
        } for d in deltas], indent=2, sort_keys=True))
    else:
        print(_format_diff(baseline, current, deltas))
    return 0


def _cmd_regress(store: RunStore, args: argparse.Namespace) -> int:
    baseline = store.resolve(args.baseline)
    current = store.resolve(args.ref)
    thresholds = RegressionThresholds(
        wall_pct=args.wall_pct, wall_floor_s=args.wall_floor,
        sat_pct=args.sat_pct, sat_floor=args.sat_floor,
        bdd_pct=args.bdd_pct, bdd_floor=args.bdd_floor,
        p95_pct=args.p95_pct, p95_floor_s=args.p95_floor)
    regressions = check_regressions(baseline, current, thresholds)
    if args.json:
        print(json.dumps({
            "baseline": baseline.run_id,
            "current": current.run_id,
            "regressions": [{
                "metric": r.metric, "baseline": r.baseline,
                "current": r.current, "message": r.message,
            } for r in regressions],
        }, indent=2, sort_keys=True))
        return 1 if regressions else 0
    print(f"regression check: {current.run_id} vs baseline "
          f"{baseline.run_id}")
    if not regressions:
        print("PASS: no regression beyond noise thresholds")
        return 0
    for r in regressions:
        print(f"REGRESSION [{r.metric}]: {r.message}")
    print(f"FAIL: {len(regressions)} regression(s) detected")
    return 1


def _cmd_recover(store: RunStore, args: argparse.Namespace) -> int:
    report = store.recover()
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    print(f"store    : {store.root}")
    print(f"records  : {report['records']} intact"
          + (f", {report['skipped_lines']} unparsable line(s) skipped"
             if report["skipped_lines"] else ""))
    if report["salvaged_fragment"] is not None:
        print(f"salvaged : dropped torn trailing record "
              f"({len(report['salvaged_fragment'])} bytes)")
    if report["swept_tmp"]:
        print(f"swept    : {report['swept_tmp']} orphaned tmp file(s)")
    resumable = report["resumable"]
    if not resumable:
        print("resumable: none")
        return 0
    print(f"resumable: {len(resumable)} interrupted run(s)")
    for entry in resumable:
        salvaged = " [journal salvaged]" if entry["salvaged"] else ""
        print(f"  {entry['run_id']}  {entry['impl'] or '?':<18} "
              f"{entry['commits']} commit(s){salvaged}")
        print(f"    resume with: repro eco --resume {entry['run_id']} ...")
    return 0


# ----------------------------------------------------------------------
# argparse surface
# ----------------------------------------------------------------------
def add_runs_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store", metavar="DIR", default=None,
        help="run-store directory (default: $REPRO_RUN_STORE or "
             ".repro/runs)")
    sub = parser.add_subparsers(dest="runs_command", required=True)

    p = sub.add_parser("list", help="list recorded runs")
    p.add_argument("--limit", type=int, default=0, metavar="N",
                   help="show only the N most recent runs")
    p.add_argument("--json", action="store_true",
                   help="machine-readable index entries")
    p.set_defaults(runs_func=_cmd_list)

    p = sub.add_parser("show", help="show one run record")
    p.add_argument("ref", help="run ref: id prefix, 'last', 'first', "
                               "or a negative index")
    p.add_argument("--json", action="store_true",
                   help="dump the raw record")
    p.set_defaults(runs_func=_cmd_show)

    p = sub.add_parser("diff", help="metric deltas between two runs")
    p.add_argument("baseline_ref", help="baseline run ref")
    p.add_argument("current_ref", help="current run ref")
    p.add_argument("--json", action="store_true")
    p.set_defaults(runs_func=_cmd_diff)

    p = sub.add_parser(
        "regress",
        help="check a run against a baseline; exit 1 on regression")
    p.add_argument("ref", nargs="?", default="last",
                   help="run to check (default: last)")
    p.add_argument("--baseline", required=True, metavar="REF",
                   help="baseline run ref")
    p.add_argument("--wall-pct", type=float, default=25.0,
                   help="wall-time noise threshold in percent")
    p.add_argument("--wall-floor", type=float, default=0.1,
                   metavar="SECONDS",
                   help="absolute wall-time noise floor")
    p.add_argument("--sat-pct", type=float, default=10.0,
                   help="SAT-conflict noise threshold in percent")
    p.add_argument("--sat-floor", type=int, default=50,
                   help="absolute SAT-conflict noise floor")
    p.add_argument("--bdd-pct", type=float, default=10.0,
                   help="BDD-node noise threshold in percent")
    p.add_argument("--bdd-floor", type=int, default=1000,
                   help="absolute BDD-node noise floor")
    p.add_argument("--p95-pct", type=float, default=50.0,
                   help="latency-histogram p95 noise threshold in "
                        "percent")
    p.add_argument("--p95-floor", type=float, default=0.05,
                   metavar="SECONDS",
                   help="absolute p95 latency noise floor")
    p.add_argument("--json", action="store_true")
    p.set_defaults(runs_func=_cmd_regress)

    p = sub.add_parser(
        "recover",
        help="salvage the store after a crash and list resumable runs")
    p.add_argument("--json", action="store_true",
                   help="machine-readable recovery report")
    p.set_defaults(runs_func=_cmd_recover)


def run_runs(args: argparse.Namespace) -> int:
    """Entry point delegated to by ``repro runs``."""
    store = RunStore(args.store)
    return args.runs_func(store, args)
