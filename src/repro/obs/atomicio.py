"""Crash-safe file writes for traces and run records.

Every trace export and every run-store write goes through
:func:`atomic_write_text`: the content is written to a temporary file
in the *same directory* as the target, flushed and fsynced, then
renamed over the target with ``os.replace``.  POSIX rename is atomic,
so a reader never observes a half-written file and a killed writer
leaves at worst an orphaned ``.tmp-*`` file — never a truncated trace
that breaks ``repro runs list`` or ``repro trace``.

Appending to a JSONL file is implemented as read + append + atomic
rewrite (:func:`append_jsonl_line`).  Run records are a few KB and
stores hold hundreds of runs, so the rewrite cost is irrelevant next
to the durability guarantee.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, Iterator, List, Optional, Tuple


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` atomically (tmp file + fsync + rename)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-",
                               suffix=os.path.basename(path))
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def append_jsonl_line(path: str, record: Dict[str, Any]) -> None:
    """Append one JSON record to a JSONL file, atomically.

    The existing content is read back, the new line appended, and the
    whole file rewritten via :func:`atomic_write_text` — an interrupted
    append can never leave a partial trailing line.
    """
    line = json.dumps(record, sort_keys=True, default=str)
    existing = ""
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as fh:
            existing = fh.read()
    if existing and not existing.endswith("\n"):
        existing += "\n"
    atomic_write_text(path, existing + line + "\n")


def read_jsonl(path: str) -> Tuple[List[Dict[str, Any]], int]:
    """Load a JSONL file defensively.

    Returns ``(records, skipped)`` where ``skipped`` counts lines that
    failed to parse (e.g. a partial line from a legacy non-atomic
    writer killed mid-append).  Records keep unknown keys verbatim.
    """
    records: List[Dict[str, Any]] = []
    skipped = 0
    if not os.path.exists(path):
        return records, skipped
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if isinstance(payload, dict):
                records.append(payload)
            else:
                skipped += 1
    return records, skipped


def detect_torn_tail(path: str) -> Optional[str]:
    """The torn trailing fragment of a JSONL file, or ``None``.

    A writer killed mid-append (a legacy non-atomic writer, or a
    kernel dying between ``write`` and ``fsync``) leaves a partial
    final record: the last non-empty line fails to parse as JSON.
    Returns that fragment verbatim so recovery can report it; mid-file
    garbage is *not* a torn tail (it is skipped by :func:`read_jsonl`
    like any other corrupt line).
    """
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    lines = [ln for ln in text.split("\n") if ln.strip()]
    if not lines:
        return None
    tail = lines[-1]
    try:
        json.loads(tail)
    except json.JSONDecodeError:
        return tail
    return None


def salvage_jsonl(path: str) -> Optional[str]:
    """Drop a torn trailing fragment from a JSONL file, in place.

    Everything before the torn write survives: the file is rewritten
    atomically without the fragment (and with a normalized trailing
    newline).  Returns the dropped fragment, or ``None`` when the file
    needed no salvage.
    """
    fragment = detect_torn_tail(path)
    if fragment is None:
        return None
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    kept = [ln for ln in text.split("\n") if ln.strip()][:-1]
    atomic_write_text(path, "".join(ln + "\n" for ln in kept))
    return fragment


def iter_temp_leftovers(directory: str) -> Iterator[str]:
    """Orphaned ``.tmp-*`` files a crashed writer may have left behind."""
    if not os.path.isdir(directory):
        return
    for name in sorted(os.listdir(directory)):
        if name.startswith(".tmp-"):
            yield os.path.join(directory, name)


def sweep_temp_leftovers(directory: str,
                         unlink: Optional[bool] = True) -> List[str]:
    """Remove (or just list, with ``unlink=False``) orphaned tmp files."""
    leftovers = list(iter_temp_leftovers(directory))
    if unlink:
        for path in leftovers:
            try:
                os.unlink(path)
            except OSError:
                pass
    return leftovers
