"""Codebase analyzer: AST rules enforcing the repo's own invariants.

``python -m repro.lint --self`` (or ``repro lint --self``) parses every
module under ``src/repro`` and checks the conventions the architecture
relies on but Python cannot express:

* ``RI001`` — no ``time.time()`` outside :mod:`repro.runtime`; wall
  clocks must go through :func:`repro.runtime.now` so deadlines and
  fault-injected clocks see every read.
* ``RI002`` — no module-level ``random.*`` calls and no unseeded
  ``random.Random()``; all randomness must be a seeded
  ``random.Random(seed)`` instance (reproducibility contract).
* ``RI003`` — no direct ``.solve()`` calls outside the sanctioned
  solver modules; engine code must route SAT queries through
  :meth:`repro.runtime.supervisor.RunSupervisor.check_pair_supervised`
  so budgets and escalation apply.
* ``RI004`` — no bare ``except:`` (it swallows ``KeyboardInterrupt``
  and masks programming errors).
* ``RI005`` — no mutation of :class:`~repro.netlist.circuit.Circuit`
  topology (``rewire_pin`` / ``replace_net`` / ``remove_gate`` /
  subscript assignment to ``.fanins`` / ``.outputs`` / ``.gates``)
  outside the sanctioned packages.
* ``RI006`` — no ``print()`` in library modules; only the CLI prints,
  everything else logs.
* ``RI007`` — no ``numpy`` imports outside the vector kernel module
  :mod:`repro.netlist.simd`; numpy is an *optional* extra
  (``repro[perf]``) and every other module must stay importable
  without it, reaching the arrays only through the simd facade.

Allowlists are module-path prefixes relative to the package root
(POSIX separators); they are part of the invariant definition and are
documented in ``docs/static-analysis.md``.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable, List, Optional, Tuple

from repro.lint.diag import Diagnostic, LintReport, error

#: modules allowed to read the wall clock directly
WALL_CLOCK_ALLOWED: Tuple[str, ...] = (
    "repro/runtime/",
)

#: modules allowed to call ``<solver>.solve(...)`` directly; each takes
#: an explicit conflict budget and is driven by supervised code
SOLVE_ALLOWED: Tuple[str, ...] = (
    "repro/sat/",
    "repro/cec/",
    "repro/eco/samples.py",
    "repro/eco/resynth.py",
    "repro/eco/sweep.py",
    "repro/eco/incremental.py",
    "repro/baselines/",
    "repro/runtime/",
)

#: packages sanctioned to mutate Circuit topology
MUTATION_ALLOWED: Tuple[str, ...] = (
    "repro/netlist/",
    "repro/eco/",
    "repro/synth/",
    "repro/cec/",
    "repro/baselines/",
    "repro/workloads/",
)

#: the only module allowed to import numpy (the optional ``perf``
#: extra); everything else goes through the repro.netlist.simd facade
NUMPY_ALLOWED: Tuple[str, ...] = (
    "repro/netlist/simd.py",
)

#: modules allowed to print to stdout
PRINT_ALLOWED: Tuple[str, ...] = (
    "repro/cli.py",
    "repro/lint/cli.py",
    "repro/obs/runs_cli.py",
    "repro/obs/watch_cli.py",
)

#: ``random`` module functions that use the shared global RNG
_GLOBAL_RANDOM_FNS = frozenset({
    "random", "randint", "randrange", "uniform", "gauss", "choice",
    "choices", "shuffle", "sample", "seed", "getrandbits", "betavariate",
    "expovariate", "vonmisesvariate", "triangular",
})

_MUTATING_METHODS = frozenset({"rewire_pin", "replace_net", "remove_gate"})
_MUTATING_SUBSCRIPTS = frozenset({"fanins", "outputs", "gates"})


def _allowed(module: str, prefixes: Iterable[str]) -> bool:
    return any(module == p or module.startswith(p) for p in prefixes)


class _InvariantVisitor(ast.NodeVisitor):
    """Collects RI diagnostics for one module."""

    def __init__(self, module: str, display_path: str):
        self.module = module
        self.display_path = display_path
        self.diagnostics: List[Diagnostic] = []

    # ------------------------------------------------------------------
    def _where(self, node: ast.AST) -> str:
        lineno = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        return f"{self.display_path}:{lineno}:{col + 1}"

    def _flag(self, code: str, message: str, node: ast.AST,
              hint: Optional[str] = None) -> None:
        self.diagnostics.append(
            error(code, message, where=self._where(node), hint=hint))

    # ------------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            self._check_attribute_call(node, func)
        elif isinstance(func, ast.Name):
            if func.id == "print" \
                    and not _allowed(self.module, PRINT_ALLOWED):
                self._flag(
                    "RI006",
                    "print() in a library module",
                    node,
                    hint="use logging (or return the string); only the "
                         "CLI prints")
        self.generic_visit(node)

    def _check_attribute_call(self, node: ast.Call,
                              func: ast.Attribute) -> None:
        base = func.value
        base_name = base.id if isinstance(base, ast.Name) else None
        if base_name == "time" and func.attr == "time" \
                and not _allowed(self.module, WALL_CLOCK_ALLOWED):
            self._flag(
                "RI001",
                "direct wall-clock read time.time() outside "
                "repro.runtime",
                node,
                hint="use repro.runtime.now() so deadline supervision "
                     "and fault-injected clocks observe the read")
        if base_name == "random":
            if func.attr in _GLOBAL_RANDOM_FNS:
                self._flag(
                    "RI002",
                    f"random.{func.attr}() uses the shared global RNG",
                    node,
                    hint="construct a seeded random.Random(seed) "
                         "instance")
            elif func.attr == "Random" and not node.args \
                    and not node.keywords:
                self._flag(
                    "RI002",
                    "unseeded random.Random() breaks run "
                    "reproducibility",
                    node,
                    hint="pass an explicit seed")
        if func.attr == "solve" \
                and not _allowed(self.module, SOLVE_ALLOWED):
            self._flag(
                "RI003",
                "direct .solve() call outside the sanctioned solver "
                "modules",
                node,
                hint="route the query through "
                     "RunSupervisor.check_pair_supervised so budgets "
                     "and escalation apply")
        if func.attr in _MUTATING_METHODS \
                and not _allowed(self.module, MUTATION_ALLOWED):
            self._flag(
                "RI005",
                f"Circuit mutation .{func.attr}() outside the "
                "sanctioned packages",
                node,
                hint="work on a Circuit.copy() or move the edit into "
                     "repro.netlist / repro.eco / repro.synth")

    # ------------------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".", 1)[0]
            if root == "numpy" \
                    and not _allowed(self.module, NUMPY_ALLOWED):
                self._flag(
                    "RI007",
                    "numpy import outside the vector kernel module",
                    node,
                    hint="numpy is the optional repro[perf] extra; go "
                         "through repro.netlist.simd so every module "
                         "stays importable without it")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        root = (node.module or "").split(".", 1)[0]
        if root == "numpy" and node.level == 0 \
                and not _allowed(self.module, NUMPY_ALLOWED):
            self._flag(
                "RI007",
                "numpy import outside the vector kernel module",
                node,
                hint="numpy is the optional repro[perf] extra; go "
                     "through repro.netlist.simd so every module "
                     "stays importable without it")
        self.generic_visit(node)

    # ------------------------------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._flag(
                "RI004",
                "bare except: swallows KeyboardInterrupt and masks "
                "programming errors",
                node,
                hint="catch ReproError (or a concrete exception) "
                     "instead")
        self.generic_visit(node)

    # ------------------------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_mutating_target(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_mutating_target(node.target, node)
        self.generic_visit(node)

    def _check_mutating_target(self, target: ast.expr,
                               node: ast.AST) -> None:
        if _allowed(self.module, MUTATION_ALLOWED):
            return
        if isinstance(target, ast.Subscript) \
                and isinstance(target.value, ast.Attribute) \
                and target.value.attr in _MUTATING_SUBSCRIPTS:
            self._flag(
                "RI005",
                f"subscript assignment to .{target.value.attr}[...] "
                "mutates Circuit topology outside the sanctioned "
                "packages",
                node,
                hint="use the Circuit editing API from a sanctioned "
                     "module")


# ----------------------------------------------------------------------
def lint_source_text(text: str, module: str,
                     display_path: Optional[str] = None) -> LintReport:
    """Run the invariant rules on one module's source text.

    ``module`` is the package-root-relative POSIX path (e.g.
    ``repro/eco/engine.py``) the allowlists match against;
    ``display_path`` is what diagnostics print (defaults to
    ``module``).
    """
    report = LintReport(tool="self", subject=module)
    try:
        tree = ast.parse(text)
    except SyntaxError as exc:
        report.add(error(
            "RI000", f"syntax error: {exc.msg}",
            where=f"{display_path or module}:{exc.lineno or 0}:"
                  f"{(exc.offset or 0)}"))
        return report
    visitor = _InvariantVisitor(module, display_path or module)
    visitor.visit(tree)
    report.extend(visitor.diagnostics)
    return report


def package_root() -> str:
    """Directory of the installed ``repro`` package sources."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def lint_sources(root: Optional[str] = None) -> LintReport:
    """Run the invariant + concurrency rules on every module under
    ``root``.

    ``root`` defaults to the directory containing the ``repro``
    package itself, so ``repro lint --self`` checks whatever
    installation is running it.  Each module gets both the ``RI``
    repo-invariant pass and the ``CC`` concurrency pass
    (:mod:`repro.lint.concur_rules`).
    """
    from repro.lint.concur_rules import lint_concur_source_text

    if root is None:
        root = package_root()
    root = os.path.abspath(root)
    parent = os.path.dirname(root)
    report = LintReport(tool="self", subject=os.path.basename(root))
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            module = os.path.relpath(path, parent).replace(os.sep, "/")
            with open(path, "r", encoding="utf-8") as fh:
                text = fh.read()
            report.merge(lint_source_text(text, module,
                                          display_path=module))
            report.merge(lint_concur_source_text(text, module,
                                                 display_path=module))
    return report
