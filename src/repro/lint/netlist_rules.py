"""Netlist analyzer: structural diagnostics for :class:`Circuit`.

Supersedes the string list of ``repro.netlist.validate`` (which now
delegates here).  Two tiers of rules:

* **well-formedness** (``NL001``–``NL010``, errors except the ``NL004``
  port/net-collision warning) — the invariants every circuit must
  satisfy before any engine touches it: name consistency, arity, no
  dangling nets, acyclicity (reported with the actual cycle path);
* **hygiene** (``NL020``–``NL030``, warnings/infos) — findings that do
  not make a circuit invalid but indicate wasted or suspicious logic:
  floating nets, dead logic, constant-foldable gates, structurally
  duplicate gates (via :mod:`repro.netlist.hashing`), and word-level
  width gaps in bit-indexed port groups.

``lint_netlist`` runs both tiers; ``well_formedness`` only the first
(that is what ``validate()`` raises on).
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.diag import Diagnostic, LintReport, error, info, warning
from repro.netlist.circuit import Circuit
from repro.netlist.gate import GateType, eval_gate_bool
from repro.netlist.hashing import structural_hash
from repro.netlist.traverse import topological_order, transitive_fanin


def find_cycle(circuit: Circuit) -> Optional[List[str]]:
    """One combinational cycle as an explicit net path, or ``None``.

    The returned list starts and ends on the same net:
    ``['g1', 'g4', 'g2', 'g1']``.  Iterative DFS over the fanin
    relation; the first back edge found is expanded into its path.
    """
    state: Dict[str, int] = {}  # 0 = on stack, 1 = done
    for root in circuit.gates:
        if state.get(root) == 1:
            continue
        # stack of (net, fanin iterator); parallel path of nets on stack
        path: List[str] = []
        stack: List[Tuple[str, Iterable[str]]] = []

        def push(net: str) -> None:
            state[net] = 0
            path.append(net)
            stack.append((net, iter(circuit.gates[net].fanins)))

        push(root)
        while stack:
            net, fanins = stack[-1]
            advanced = False
            for nxt in fanins:
                if nxt not in circuit.gates:
                    continue  # primary input: never part of a cycle
                st = state.get(nxt)
                if st == 0:
                    # back edge: nxt is on the current path
                    start = path.index(nxt)
                    cycle = path[start:] + [nxt]
                    cycle.reverse()  # report in signal-flow direction
                    return cycle
                if st is None:
                    push(nxt)
                    advanced = True
                    break
            if not advanced:
                state[net] = 1
                stack.pop()
                path.pop()
    return None


# ----------------------------------------------------------------------
# tier 1: well-formedness (errors)
# ----------------------------------------------------------------------
def well_formedness(circuit: Circuit) -> List[Diagnostic]:
    """The error-tier structural rules (``NL001``–``NL010``)."""
    diags: List[Diagnostic] = []
    input_set = set(circuit.inputs)
    if len(input_set) != len(circuit.inputs):
        seen: Set[str] = set()
        dups: List[str] = []
        for n in circuit.inputs:
            if n in seen and n not in dups:
                dups.append(n)
            seen.add(n)
        diags.append(error(
            "NL001", "duplicate primary input names: " + ", ".join(dups),
            where="inputs",
            hint="every primary input must be declared exactly once"))
    for name, gate in circuit.gates.items():
        if name != gate.name:
            diags.append(error(
                "NL002",
                f"gate key {name!r} != gate name {gate.name!r}",
                where=f"gate {name!r}"))
        if name in input_set:
            diags.append(error(
                "NL003", f"net name {name!r} is both input and gate",
                where=f"net {name!r}"))
        if not gate.gtype.arity_ok(len(gate.fanins)):
            diags.append(error(
                "NL005",
                f"gate {name!r}: arity {len(gate.fanins)} invalid for "
                f"{gate.gtype.value}",
                where=f"gate {name!r}"))
        for i, f in enumerate(gate.fanins):
            if not circuit.has_net(f):
                diags.append(error(
                    "NL006", f"gate {name!r} pin {i}: dangling net {f!r}",
                    where=f"gate {name!r} pin {i}"))
    for port, net in circuit.outputs.items():
        if not circuit.has_net(net):
            diags.append(error(
                "NL007", f"output {port!r}: dangling net {net!r}",
                where=f"output {port!r}"))
        if net != port and circuit.has_net(port):
            # a gate or input named like the port but driving a
            # different net confuses readers of the netlist; writers
            # must (and do) mangle the colliding net on serialization
            diags.append(warning(
                "NL004",
                f"output port {port!r} collides with an unrelated net "
                f"of the same name (port observes {net!r})",
                where=f"output {port!r}",
                hint="rename the port or the net; the BLIF writer "
                     "emits the colliding net under a mangled name"))
    if not circuit.outputs:
        diags.append(error("NL008", "circuit has no outputs",
                           where="outputs"))
    cycle = find_cycle(circuit)
    if cycle is not None:
        diags.append(error(
            "NL010",
            "combinational cycle: " + " -> ".join(cycle),
            where=f"net {cycle[0]!r}",
            hint="a rewire drove a pin from a net inside its own "
                 "fanout cone"))
    return diags


# ----------------------------------------------------------------------
# tier 2: hygiene (warnings / infos)
# ----------------------------------------------------------------------
def _hygiene(circuit: Circuit) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    observed = set(circuit.outputs.values())
    sink_map = circuit.sink_map()
    live = transitive_fanin(circuit, circuit.outputs.values())

    for name in circuit.inputs:
        if not sink_map[name] and name not in observed:
            diags.append(info(
                "NL025", f"primary input {name!r} is never read",
                where=f"input {name!r}"))
    for name in circuit.gates:
        if name in live:
            continue
        if not sink_map[name] and name not in observed:
            diags.append(warning(
                "NL020",
                f"floating net {name!r}: no sinks and not observed by "
                "any output",
                where=f"net {name!r}",
                hint="remove the gate or wire it somewhere"))
        else:
            diags.append(warning(
                "NL023",
                f"dead logic: gate {name!r} is unreachable from every "
                "output",
                where=f"gate {name!r}",
                hint="its whole fanout cone is dead; sweep it"))

    diags.extend(_constant_folding(circuit))
    diags.extend(_duplicate_structure(circuit))
    diags.extend(_width_gaps(circuit))
    return diags


def _constant_folding(circuit: Circuit) -> List[Diagnostic]:
    """``NL021``: gates whose output is constant for every input."""
    diags: List[Diagnostic] = []
    const: Dict[str, bool] = {}
    for name in topological_order(circuit):
        gate = circuit.gates[name]
        value: Optional[bool] = None
        if gate.gtype is GateType.CONST0:
            const[name] = False
            continue
        if gate.gtype is GateType.CONST1:
            const[name] = True
            continue
        operands = [const.get(f) for f in gate.fanins]
        if all(v is not None for v in operands):
            value = eval_gate_bool(
                gate.gtype, [bool(v) for v in operands])
        elif gate.gtype in (GateType.AND, GateType.NAND) \
                and any(v is False for v in operands):
            value = gate.gtype is GateType.NAND
        elif gate.gtype in (GateType.OR, GateType.NOR) \
                and any(v is True for v in operands):
            value = gate.gtype is GateType.OR
        elif gate.gtype in (GateType.XOR, GateType.XNOR) \
                and len(gate.fanins) == 2 \
                and gate.fanins[0] == gate.fanins[1]:
            value = gate.gtype is GateType.XNOR
        if value is not None:
            const[name] = value
            diags.append(warning(
                "NL021",
                f"gate {name!r} ({gate.gtype.value}) always evaluates "
                f"to {int(value)}",
                where=f"gate {name!r}",
                hint="fold it into a constant"))
    return diags


def _duplicate_structure(circuit: Circuit) -> List[Diagnostic]:
    """``NL022``: gates computing structurally identical functions."""
    diags: List[Diagnostic] = []
    groups: Dict[int, List[str]] = {}
    keys = structural_hash(circuit)
    for name in circuit.gates:
        groups.setdefault(keys[name], []).append(name)
    for names in groups.values():
        if len(names) < 2:
            continue
        names = sorted(names)
        diags.append(info(
            "NL022",
            "structurally duplicate gates: " + ", ".join(
                repr(n) for n in names),
            where=f"gate {names[0]!r}",
            hint="strash would merge these"))
    return diags


_BIT_NAME = re.compile(r"^(?P<prefix>.*?)(?P<index>\d+)$")


def _width_gaps(circuit: Circuit) -> List[Diagnostic]:
    """``NL030``: bit-indexed port groups with missing indices.

    Ports named ``sum0, sum1, sum3`` declare a word with a hole at
    bit 2 — almost always a mis-declared width rather than intent.
    """
    diags: List[Diagnostic] = []
    for kind, names in (("input", circuit.inputs),
                        ("output", list(circuit.outputs))):
        words: Dict[str, List[int]] = {}
        for name in names:
            m = _BIT_NAME.match(name)
            if m and m.group("prefix"):
                words.setdefault(m.group("prefix"), []).append(
                    int(m.group("index")))
        for prefix, indices in sorted(words.items()):
            if len(indices) < 2:
                continue
            present = set(indices)
            expected = range(min(present), max(present) + 1)
            missing = [i for i in expected if i not in present]
            if missing:
                diags.append(warning(
                    "NL030",
                    f"{kind} word {prefix!r} has width gap(s): missing "
                    + ", ".join(f"{prefix}{i}" for i in missing),
                    where=f"{kind} word {prefix!r}",
                    hint="bit-indexed ports should form a contiguous "
                         "0-based range"))
    return diags


# ----------------------------------------------------------------------
def lint_netlist(circuit: Circuit, deep: bool = True) -> LintReport:
    """Run the netlist analyzer on one circuit.

    ``deep=False`` restricts the run to the well-formedness tier — the
    cheap subset the engine asserts after every patch commit.  The
    hygiene tier is skipped automatically while well-formedness errors
    are present (its passes assume a sane, acyclic circuit).
    """
    report = LintReport(tool="netlist", subject=circuit.name)
    report.extend(well_formedness(circuit))
    if deep and report.ok:
        report.extend(_hygiene(circuit))
    return report
