"""Concurrency analyzer: AST rules enforcing the threading discipline.

``repro lint --self`` runs these ``CC...`` rules alongside the ``RI``
repo invariants.  They encode the concurrency architecture documented
in ``docs/static-analysis.md`` ("Concurrency rules"):

* ``CC001`` — raw ``threading`` primitives (``Lock`` / ``RLock`` /
  ``Condition`` / ``Event`` / ``Semaphore`` / ``Barrier`` /
  ``Thread`` / ``local``) constructed outside
  :mod:`repro.runtime.sync`; everything must go through the
  ``make_*`` factories so lock-order tracing can see it.
* ``CC002`` — explicit ``.acquire()`` not release-protected: the only
  sanctioned shapes are ``with lock:``, ``acquire()`` immediately
  followed by ``try/finally: release()``, or ``acquire()`` as the
  first statement of such a ``try`` body.  Non-blocking and
  timeout-bounded acquires (try-lock patterns) are exempt.
* ``CC003`` — blocking call inside a held-lock region: ``time.sleep``
  at all, or a zero-argument ``.join()`` / ``.wait()`` / ``.get()``
  (all of which block forever) while a lock is held.
* ``CC004`` — module-level state rebound (``global X; X = ...``) from
  a thread-spawning module outside a held-lock region.
* ``CC005`` — ``ProcessPoolExecutor`` without an explicit
  ``mp_context=`` (the fork-after-thread hazard; use
  :func:`repro.runtime.sync.safe_mp_context`).
* ``CC006`` — a class that starts threads but has no ``.join(...)``
  anywhere on its teardown surface, or a thread started off an
  unowned constructor chain (``make_thread(...).start()``).
* ``CC007`` — ``sys.setswitchinterval`` outside the race harness
  (interpreter-global tuning belongs to ``repro.lint.racecheck``).
* ``CC008`` — unbounded ``.join()`` / ``.wait()`` (no timeout)
  anywhere in library code: shutdown paths must not hang forever.
* ``CC009`` — process-global start-method mutation
  (``multiprocessing.set_start_method`` / ``os.fork``); pools must
  take a local context from :func:`~repro.runtime.sync.safe_mp_context`.
* ``CC010`` (warning) — nested acquisition of two distinct locks; the
  ordering becomes part of the global lock-order discipline and should
  be exercised under ``REPRO_SYNC_DEBUG=1`` (see the runtime
  lock-order graph).  The race harness itself is exempt — its
  inversion demo nests in both orders on purpose.

Like the RI rules, these are AST-level approximations tuned for zero
false positives on this codebase; the allowlists are part of the rule
definitions.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Tuple

from repro.lint.diag import Diagnostic, LintReport, error, warning

#: the one module allowed to touch raw ``threading`` primitives
SYNC_ALLOWED: Tuple[str, ...] = (
    "repro/runtime/sync.py",
)

#: modules allowed to call ``sys.setswitchinterval``
SWITCH_INTERVAL_ALLOWED: Tuple[str, ...] = (
    "repro/lint/racecheck.py",
)

#: modules exempt from the CC010 nesting advisory — the race harness
#: *intentionally* nests locks in both orders (the inversion demo
#: that proves the runtime detector fires)
NESTED_ALLOWED: Tuple[str, ...] = (
    "repro/lint/racecheck.py",
)

#: raw ``threading.*`` constructors CC001 fences off
_RAW_PRIMITIVES = frozenset({
    "Lock", "RLock", "Condition", "Event", "Semaphore",
    "BoundedSemaphore", "Barrier", "Thread", "Timer", "local",
})

#: receiver names that mark a ``with`` block as a held-lock region
_LOCKISH = re.compile(r"lock|mutex|guard|cond", re.IGNORECASE)

#: zero-argument methods that block forever (CC003 / CC008)
_BLOCKING_METHODS = frozenset({"join", "wait", "get"})


def _allowed(module: str, prefixes: Tuple[str, ...]) -> bool:
    return any(module == p or module.startswith(p) for p in prefixes)


def _terminal_name(expr: ast.expr) -> Optional[str]:
    """The last identifier of ``a.b.c`` / ``c`` / ``c()`` chains."""
    if isinstance(expr, ast.Call):
        expr = expr.func
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return None


def _is_lockish(expr: ast.expr) -> bool:
    name = _terminal_name(expr)
    return bool(name and _LOCKISH.search(name))


def _receiver_key(func: ast.Attribute) -> str:
    """Canonical text of a method call's receiver (``self._lock``)."""
    try:
        return ast.unparse(func.value)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return ast.dump(func.value)


def _calls_with_attr(node: ast.AST, attr: str) -> List[ast.Call]:
    return [n for n in ast.walk(node)
            if isinstance(n, ast.Call)
            and isinstance(n.func, ast.Attribute)
            and n.func.attr == attr]


def _is_thread_ctor(call: ast.Call) -> bool:
    """``make_thread(...)`` or ``threading.Thread(...)`` / ``Thread(...)``."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id in ("make_thread", "Thread")
    if isinstance(func, ast.Attribute):
        return func.attr in ("Thread", "make_thread")
    return False


class _ConcurrencyVisitor(ast.NodeVisitor):
    """Collects CC diagnostics for one module."""

    def __init__(self, module: str, display_path: str,
                 spawns_threads: bool):
        self.module = module
        self.display_path = display_path
        self.spawns_threads = spawns_threads
        self.diagnostics: List[Diagnostic] = []
        #: stack of held-lock receiver keys (with-block nesting)
        self._lock_stack: List[str] = []
        self._parents: Dict[ast.AST, ast.AST] = {}
        #: names from ``from threading import X`` (CC001 via bare name)
        self._threading_names: set = set()
        self._pool_names: set = set()

    # ------------------------------------------------------------------
    def analyze(self, tree: ast.Module) -> List[Diagnostic]:
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
            if isinstance(parent, ast.ImportFrom):
                names = {a.asname or a.name for a in parent.names}
                if parent.module == "threading":
                    self._threading_names.update(names)
                elif parent.module in ("concurrent.futures",
                                       "multiprocessing"):
                    self._pool_names.update(
                        n for n in names if n == "ProcessPoolExecutor")
        self.visit(tree)
        return self.diagnostics

    def _where(self, node: ast.AST) -> str:
        lineno = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        return f"{self.display_path}:{lineno}:{col + 1}"

    def _flag(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    # -- held-lock regions ---------------------------------------------
    def visit_With(self, node: ast.With) -> None:
        lockish = [item.context_expr for item in node.items
                   if _is_lockish(item.context_expr)]
        keys = []
        for expr in lockish:
            try:
                keys.append(ast.unparse(expr))
            except Exception:  # pragma: no cover
                keys.append(ast.dump(expr))
        if keys and self._lock_stack \
                and set(keys) - set(self._lock_stack) \
                and not _allowed(self.module, NESTED_ALLOWED):
            self._flag(warning(
                "CC010",
                f"nested lock acquisition ({self._lock_stack[-1]} -> "
                f"{keys[0]}) adds an edge to the global lock-order "
                "discipline",
                where=self._where(node),
                hint="exercise this path under REPRO_SYNC_DEBUG=1 so "
                     "the lock-order graph verifies the ordering"))
        self._lock_stack.extend(keys)
        try:
            self.generic_visit(node)
        finally:
            del self._lock_stack[len(self._lock_stack) - len(keys):]

    # -- calls ----------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            self._check_attribute_call(node, func)
        elif isinstance(func, ast.Name):
            self._check_name_call(node, func)
        self._check_unowned_thread_start(node)
        self.generic_visit(node)

    def _check_name_call(self, node: ast.Call, func: ast.Name) -> None:
        if func.id in self._threading_names \
                and func.id in _RAW_PRIMITIVES \
                and not _allowed(self.module, SYNC_ALLOWED):
            self._flag(error(
                "CC001",
                f"raw threading {func.id}() outside repro.runtime.sync",
                where=self._where(node),
                hint="use the repro.runtime.sync make_* factories so "
                     "lock-order tracing sees the primitive"))
        if func.id in self._pool_names \
                and not any(k.arg == "mp_context"
                            for k in node.keywords):
            self._flag(error(
                "CC005",
                "ProcessPoolExecutor without an explicit mp_context "
                "(fork-after-thread hazard)",
                where=self._where(node),
                hint="pass mp_context=repro.runtime.sync."
                     "safe_mp_context()"))

    def _check_attribute_call(self, node: ast.Call,
                              func: ast.Attribute) -> None:
        base = func.value
        base_name = base.id if isinstance(base, ast.Name) else None

        # CC001: raw threading primitives
        if base_name == "threading" and func.attr in _RAW_PRIMITIVES \
                and not _allowed(self.module, SYNC_ALLOWED):
            self._flag(error(
                "CC001",
                f"raw threading.{func.attr}() outside "
                "repro.runtime.sync",
                where=self._where(node),
                hint="use repro.runtime.sync.make_lock/make_rlock/"
                     "make_condition/make_event/make_thread so "
                     "lock-order tracing sees the primitive"))

        # CC002: unprotected explicit acquire
        if func.attr == "acquire" \
                and not _allowed(self.module, SYNC_ALLOWED) \
                and not node.args and not node.keywords \
                and not self._release_protected(node, func):
            self._flag(error(
                "CC002",
                f"{_receiver_key(func)}.acquire() without with/"
                "try-finally release protection",
                where=self._where(node),
                hint="use `with lock:` (or follow the acquire with "
                     "try/finally: release())"))

        # CC003/CC008: blocking calls
        self._check_blocking(node, func, base_name)

        # CC005: pool without explicit start-method context
        if func.attr == "ProcessPoolExecutor" or (
                base_name == "multiprocessing" and func.attr == "Pool"):
            if not any(k.arg == "mp_context" for k in node.keywords) \
                    and func.attr == "ProcessPoolExecutor":
                self._flag(error(
                    "CC005",
                    "ProcessPoolExecutor without an explicit "
                    "mp_context (fork-after-thread hazard)",
                    where=self._where(node),
                    hint="pass mp_context=repro.runtime.sync."
                         "safe_mp_context()"))
            elif base_name == "multiprocessing":
                self._flag(error(
                    "CC005",
                    "multiprocessing.Pool uses the process-global "
                    "start method (fork-after-thread hazard)",
                    where=self._where(node),
                    hint="use safe_mp_context().Pool(...) instead"))

        # CC007: interpreter-global switch-interval tuning
        if base_name == "sys" and func.attr == "setswitchinterval" \
                and not _allowed(self.module, SWITCH_INTERVAL_ALLOWED):
            self._flag(error(
                "CC007",
                "sys.setswitchinterval() outside the race harness",
                where=self._where(node),
                hint="preemption tuning is process-global; only "
                     "repro.lint.racecheck may change it (and must "
                     "restore it)"))

        # CC009: process-global start-method mutation
        if (base_name == "multiprocessing"
                and func.attr == "set_start_method") \
                or (base_name == "os" and func.attr == "fork"):
            self._flag(error(
                "CC009",
                f"{base_name}.{func.attr}() mutates process-global "
                "fork state",
                where=self._where(node),
                hint="take a local context from safe_mp_context() "
                     "instead of mutating the global default"))

    def _check_blocking(self, node: ast.Call, func: ast.Attribute,
                        base_name: Optional[str]) -> None:
        held = bool(self._lock_stack)
        is_sleep = base_name == "time" and func.attr == "sleep"
        zero_arg_block = (func.attr in _BLOCKING_METHODS
                          and not node.args and not node.keywords)
        if held and (is_sleep or zero_arg_block):
            what = "time.sleep()" if is_sleep \
                else f".{func.attr}() with no timeout"
            self._flag(error(
                "CC003",
                f"blocking call {what} inside held-lock region "
                f"({self._lock_stack[-1]})",
                where=self._where(node),
                hint="move the blocking call outside the lock, or "
                     "bound it with a timeout"))
        elif zero_arg_block and func.attr in ("join", "wait"):
            # str.join / dict.get always take arguments, so a
            # zero-argument join/wait is a thread/event blocking call
            self._flag(error(
                "CC008",
                f"unbounded {_receiver_key(func)}.{func.attr}() "
                "can hang shutdown forever",
                where=self._where(node),
                hint="pass an explicit timeout and handle expiry"))

    # -- CC002 helper ---------------------------------------------------
    def _release_protected(self, node: ast.Call,
                           func: ast.Attribute) -> bool:
        receiver = _receiver_key(func)
        stmt: Optional[ast.AST] = node
        while stmt is not None and not isinstance(stmt, ast.stmt):
            stmt = self._parents.get(stmt)
        if stmt is None:
            return False
        parent = self._parents.get(stmt)
        if parent is None:
            return False

        def releases(body: List[ast.stmt]) -> bool:
            for sub in body:
                for call in _calls_with_attr(sub, "release"):
                    if isinstance(call.func, ast.Attribute) \
                            and _receiver_key(call.func) == receiver:
                        return True
            return False

        # shape 1: acquire is inside a try body whose finally releases
        if isinstance(parent, ast.Try) and stmt in parent.body \
                and releases(parent.finalbody):
            return True
        # shape 2: acquire statement immediately followed by such a try
        for body in (getattr(parent, "body", []),
                     getattr(parent, "orelse", []),
                     getattr(parent, "finalbody", [])):
            if stmt in body:
                i = body.index(stmt)
                if i + 1 < len(body) and isinstance(body[i + 1], ast.Try) \
                        and releases(body[i + 1].finalbody):
                    return True
        return False

    # -- CC004: global rebinding in thread-spawning modules -------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_global_writes(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_global_writes(node)
        self.generic_visit(node)

    def _check_global_writes(self, node: ast.AST) -> None:
        if not self.spawns_threads:
            return
        declared = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Global):
                declared.update(sub.names)
        if not declared:
            return
        for sub in ast.walk(node):
            if isinstance(sub, (ast.Assign, ast.AugAssign)):
                targets = sub.targets if isinstance(sub, ast.Assign) \
                    else [sub.target]
                for target in targets:
                    if isinstance(target, ast.Name) \
                            and target.id in declared \
                            and not self._write_locked(sub):
                        self._flag(error(
                            "CC004",
                            f"module-global '{target.id}' rebound "
                            "without a lock in a thread-spawning "
                            "module",
                            where=self._where(sub),
                            hint="guard the write with a sync.make_"
                                 "lock() (threads may read the old "
                                 "binding mid-update)"))

    def _write_locked(self, node: ast.AST) -> bool:
        cur = self._parents.get(node)
        while cur is not None:
            if isinstance(cur, ast.With) \
                    and any(_is_lockish(item.context_expr)
                            for item in cur.items):
                return True
            cur = self._parents.get(cur)
        return False

    # -- CC006: thread lifecycle ----------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        ctors = [n for n in ast.walk(node)
                 if isinstance(n, ast.Call) and _is_thread_ctor(n)]
        if ctors:
            joins = _calls_with_attr(node, "join")
            if not joins:
                self._flag(error(
                    "CC006",
                    f"class {node.name} starts threads but never "
                    "joins one on teardown",
                    where=self._where(node),
                    hint="add a stop()/close() that joins the thread "
                         "with a timeout"))
        self.generic_visit(node)

    def _check_unowned_thread_start(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "start" \
                and isinstance(func.value, ast.Call) \
                and _is_thread_ctor(func.value):
            self._flag(error(
                "CC006",
                "thread started off an unowned constructor chain",
                where=self._where(node),
                hint="bind the thread to a variable/attribute so "
                     "teardown can join it"))


# ----------------------------------------------------------------------
def _module_spawns_threads(tree: ast.Module) -> bool:
    return any(isinstance(n, ast.Call) and _is_thread_ctor(n)
               for n in ast.walk(tree))


def lint_concur_source_text(text: str, module: str,
                            display_path: Optional[str] = None
                            ) -> LintReport:
    """Run the concurrency rules on one module's source text.

    Same contract as
    :func:`repro.lint.pylint_rules.lint_source_text`: ``module`` is
    the package-root-relative POSIX path the allowlists match against.
    """
    report = LintReport(tool="self", subject=module)
    try:
        tree = ast.parse(text)
    except SyntaxError as exc:
        report.add(error(
            "CC000", f"syntax error: {exc.msg}",
            where=f"{display_path or module}:{exc.lineno or 0}:"
                  f"{(exc.offset or 0)}"))
        return report
    visitor = _ConcurrencyVisitor(module, display_path or module,
                                  _module_spawns_threads(tree))
    report.extend(visitor.analyze(tree))
    return report
