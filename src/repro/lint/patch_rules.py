"""Patch analyzer: static legality of rewire operations (``PA...``).

Given a set of rewire operations against an implementation, the
analyzer proves — without touching a solver — that the patch

* keeps the netlist acyclic (``PA001``, reported with the cycle path);
* addresses pins that exist, with legal indices (``PA002``, the
  Section 4.2 pin encoding);
* only reads nets whose structural support stays inside the revised
  output's legal support (``PA003``, the Section 4.3 containment);
* names rewiring sources that exist (``PA004``);
* is not a no-op rewire of a pin to its current driver (``PA005``).

The cycle check is *incremental*: a :class:`PatchScreen` builds the
sink adjacency of the circuit once, then answers per-candidate queries
by walking only the fanout cones the candidate actually touches —
never re-deriving the adjacency or re-topo-sorting the whole netlist
per candidate the way ``repro.eco.validate.rewire_acyclic`` does.  The
engine keeps one screen per search context and consults it before any
SAT spend (the ``lint.screen`` trace spans).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import NetlistError
from repro.lint.diag import Diagnostic, LintReport, error, warning
from repro.netlist.circuit import Circuit, Pin


@dataclass(frozen=True)
class ScreenOp:
    """Engine-independent view of one rewire: ``pin/source``.

    Duck-compatible with :class:`repro.eco.patch.RewireOp` (the
    analyzer reads only ``pin``, ``source_net`` and ``from_spec``, so
    either type can be passed).
    """

    pin: Pin
    source_net: str
    from_spec: bool = False


def parse_ops(data: Sequence[Mapping[str, Any]]) -> List[ScreenOp]:
    """Decode rewire ops from their JSON form.

    Each entry is ``{"pin": "gate:NAME:INDEX" | "output:PORT",
    "source": NET, "from_spec": BOOL}`` — the format ``repro lint``
    accepts via ``--patch-ops``.
    """
    ops: List[ScreenOp] = []
    for entry in data:
        spec = str(entry["pin"])
        parts = spec.split(":")
        if parts[0] == "gate" and len(parts) == 3:
            pin = Pin.gate(parts[1], int(parts[2]))
        elif parts[0] == "output" and len(parts) == 2:
            pin = Pin.output(parts[1])
        else:
            raise NetlistError(
                f"bad pin spec {spec!r}: use 'gate:NAME:INDEX' or "
                "'output:PORT'")
        ops.append(ScreenOp(pin=pin, source_net=str(entry["source"]),
                            from_spec=bool(entry.get("from_spec", False))))
    return ops


class PatchScreen:
    """Pre-SAT structural screen for rewire candidates on one circuit.

    Args:
        circuit: the implementation the ops would be applied to.  The
            screen assumes the circuit does not mutate during its
            lifetime (the engine builds one screen per search context).
        spec: the revised specification; enables existence checks for
            spec-sourced ops.
        supports: structural input-support bitmasks of ``circuit``'s
            nets (see :func:`repro.netlist.traverse.support_masks`);
            enables the ``PA003`` containment rule.
        spec_support_mask: union support mask of the revised outputs
            under rectification — the legal pin set of Section 4.3.
    """

    def __init__(self, circuit: Circuit, spec: Optional[Circuit] = None,
                 supports: Optional[Mapping[str, int]] = None,
                 spec_support_mask: Optional[int] = None):
        self.circuit = circuit
        self.spec = spec
        self.supports = supports
        self.spec_support_mask = spec_support_mask
        # sink adjacency, built once: net -> [(gate, pin index), ...]
        self._sinks: Dict[str, List[Tuple[str, int]]] = {}
        for g in circuit.gates.values():
            for i, f in enumerate(g.fanins):
                self._sinks.setdefault(f, []).append((g.name, i))
        self._cones: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------
    # incremental reachability
    # ------------------------------------------------------------------
    def fanout_cone(self, net: str) -> Set[str]:
        """Inclusive transitive fanout of ``net``, memoized.

        Replaces per-pin :func:`repro.netlist.traverse.transitive_fanout`
        calls (each of which rebuilds the adjacency in O(edges)) with
        one shared adjacency and one walk per distinct net.
        """
        cached = self._cones.get(net)
        if cached is not None:
            return cached
        seen: Set[str] = set()
        stack = [net]
        while stack:
            n = stack.pop()
            if n in seen:
                continue
            seen.add(n)
            for gate, _ in self._sinks.get(n, ()):
                if gate not in seen:
                    stack.append(gate)
        self._cones[net] = seen
        return seen

    def cycle_path(self, ops: Sequence[ScreenOp]) -> Optional[List[str]]:
        """Cycle the ops would close, as a net path, or ``None``.

        Exact joint check: walks the sink adjacency with the rewired
        pins' old edges masked and all proposed new edges added at
        once, so cycles through several new edges are found and edges
        the rewires remove cannot produce false rejections.  Only the
        fanout cones of the rewired gates are visited.
        """
        rewired: Set[Tuple[str, int]] = {
            (op.pin.owner, op.pin.index) for op in ops
            if not op.pin.is_output_port
        }
        new_edges: Dict[str, List[str]] = {}
        for op in ops:
            if op.from_spec or op.pin.is_output_port:
                continue  # spec clones are fresh logic: cannot cycle
            new_edges.setdefault(op.source_net, []).append(op.pin.owner)
        if not new_edges:
            return None

        def successors(net: str) -> List[str]:
            out = [gate for gate, idx in self._sinks.get(net, ())
                   if (gate, idx) not in rewired]
            out.extend(new_edges.get(net, ()))
            return out

        # DFS from each new edge's target looking back to its source
        for src, targets in new_edges.items():
            for target in targets:
                parent: Dict[str, Optional[str]] = {target: None}
                stack = [target]
                while stack:
                    n = stack.pop()
                    if n == src:
                        path = [n]
                        cur: Optional[str] = parent[n]
                        while cur is not None:
                            path.append(cur)
                            cur = parent[cur]
                        path.reverse()  # target -> ... -> src
                        # prepend src: the new edge src -> target
                        # closes the loop
                        return [src] + path
                    for nxt in successors(n):
                        if nxt not in parent:
                            parent[nxt] = n
                            stack.append(nxt)
        return None

    # ------------------------------------------------------------------
    # rules
    # ------------------------------------------------------------------
    def _check_pin(self, op: ScreenOp) -> Optional[Diagnostic]:
        pin = op.pin
        if pin.is_output_port:
            if pin.owner not in self.circuit.outputs:
                return error(
                    "PA002", f"no output port {pin.owner!r}",
                    where=repr(pin))
            return None
        gate = self.circuit.gates.get(pin.owner)
        if gate is None:
            return error("PA002", f"no gate {pin.owner!r}",
                         where=repr(pin))
        if not 0 <= pin.index < len(gate.fanins):
            return error(
                "PA002",
                f"gate {pin.owner!r} has no input pin {pin.index} "
                f"(arity {len(gate.fanins)})",
                where=repr(pin),
                hint="pin indices encode (gate, fanin position) per "
                     "Sec. 4.2")
        return None

    def _check_source(self, op: ScreenOp) -> Optional[Diagnostic]:
        if op.from_spec:
            if self.spec is not None \
                    and not self.spec.has_net(op.source_net):
                return error(
                    "PA004",
                    f"rewiring source {op.source_net!r} does not exist "
                    "in the specification",
                    where=repr(op.pin))
            return None
        if not self.circuit.has_net(op.source_net):
            return error(
                "PA004",
                f"rewiring source {op.source_net!r} does not exist in "
                "the implementation",
                where=repr(op.pin))
        return None

    def _check_support(self, op: ScreenOp) -> Optional[Diagnostic]:
        if op.from_spec or self.supports is None \
                or self.spec_support_mask is None:
            return None
        mask = self.supports.get(op.source_net)
        if mask is None:
            return None
        escaped = mask & ~self.spec_support_mask
        if escaped:
            return error(
                "PA003",
                f"support of rewiring source {op.source_net!r} escapes "
                "the revised output's input support",
                where=repr(op.pin),
                hint="Sec. 4.3: a candidate net must read only inputs "
                     "the revised function reads")
        return None

    def check_ops(self, ops: Sequence[ScreenOp]) -> LintReport:
        """All patch rules on one candidate op set."""
        report = LintReport(tool="patch", subject=self.circuit.name)
        sound = True
        for op in ops:
            pin_diag = self._check_pin(op)
            if pin_diag is not None:
                report.add(pin_diag)
                sound = False
                continue
            src_diag = self._check_source(op)
            if src_diag is not None:
                report.add(src_diag)
                sound = False
                continue
            sup_diag = self._check_support(op)
            if sup_diag is not None:
                report.add(sup_diag)
            if not op.from_spec \
                    and self.circuit.pin_driver(op.pin) == op.source_net:
                report.add(warning(
                    "PA005",
                    f"rewire of {op.pin!r} to {op.source_net!r} is a "
                    "no-op (already the driver)",
                    where=repr(op.pin)))
        if sound:
            cycle = self.cycle_path(ops)
            if cycle is not None:
                report.add(error(
                    "PA001",
                    "rewire would close a combinational cycle: "
                    + " -> ".join(cycle),
                    where=repr(ops[0].pin),
                    hint="the source net lies in the rectification "
                         "point's fanout cone"))
        return report


def lint_patch_ops(circuit: Circuit, ops: Sequence[ScreenOp],
                   spec: Optional[Circuit] = None,
                   supports: Optional[Mapping[str, int]] = None,
                   spec_support_mask: Optional[int] = None) -> LintReport:
    """One-shot patch analysis (CLI and ad-hoc use)."""
    screen = PatchScreen(circuit, spec=spec, supports=supports,
                         spec_support_mask=spec_support_mask)
    return screen.check_ops(ops)
