"""Static analysis: netlist, patch and repo-invariant diagnostics.

Three analyzers share one diagnostics core (:mod:`repro.lint.diag`):

* :func:`lint_netlist` — structural netlist diagnostics (``NL...``):
  well-formedness errors with cycle paths plus hygiene findings
  (dead logic, constant-foldable and duplicate gates, width gaps);
* :class:`PatchScreen` / :func:`lint_patch_ops` — static legality of
  rewire operations (``PA...``): incremental cycle proof, pin
  encoding, support containment.  The ECO engine consults a screen
  before every SAT spend;
* :func:`lint_sources` — AST rules enforcing the repo's own
  invariants: the ``RI...`` family (sanctioned wall-clock reads,
  seeded randomness, supervised solver calls, no bare excepts,
  sanctioned Circuit mutation, no library prints) plus the ``CC...``
  concurrency discipline (:mod:`repro.lint.concur_rules` — sanctioned
  sync factories, release-safe acquires, no blocking under locks,
  joinable threads, context-pinned pools).

A fourth, *dynamic* analyzer complements the static ones:
:func:`run_racecheck` (:mod:`repro.lint.racecheck`, ``RC...``) fuzzes
the threaded runtime across seeded preemption schedules and audits
lock order at runtime.

CLI: ``repro lint [NETLIST ...| --patch-ops OPS --impl C | --self |
--race TARGET]`` with ``--format json|text``; also available as
``python -m repro.lint``.  The code catalog lives in
``docs/static-analysis.md``.

The static analyzers depend only on ``errors`` + ``netlist`` (the
self analyzer is pure stdlib); the race harness additionally rides
:mod:`repro.runtime` (fault injection + sync tracing) and imports the
:mod:`repro.obs` workloads lazily — neither imports ``lint`` back, so
``eco`` can still consume this package without layering violations.
"""

from repro.lint.diag import (
    Diagnostic,
    LintReport,
    Severity,
    error,
    info,
    warning,
)
from repro.lint.netlist_rules import find_cycle, lint_netlist, well_formedness
from repro.lint.patch_rules import (
    PatchScreen,
    ScreenOp,
    lint_patch_ops,
    parse_ops,
)
from repro.lint.concur_rules import lint_concur_source_text
from repro.lint.pylint_rules import lint_source_text, lint_sources
from repro.lint.racecheck import (
    SCENARIOS,
    RaceCheckResult,
    race_targets,
    run_racecheck,
)

__all__ = [
    "Diagnostic",
    "LintReport",
    "Severity",
    "error",
    "warning",
    "info",
    "find_cycle",
    "lint_netlist",
    "well_formedness",
    "PatchScreen",
    "ScreenOp",
    "lint_patch_ops",
    "parse_ops",
    "lint_source_text",
    "lint_sources",
    "lint_concur_source_text",
    "SCENARIOS",
    "RaceCheckResult",
    "race_targets",
    "run_racecheck",
]
