"""Command-line surface of the lint subsystem.

Shared by ``repro lint ...`` (the main CLI subcommand) and
``python -m repro.lint ...``.  Three modes:

* ``repro lint NETLIST [NETLIST ...]`` — netlist analyzer on each file;
* ``repro lint --impl C.blif [--spec C2.blif] --patch-ops OPS.json`` —
  patch analyzer on a rewire-op set (see
  :func:`repro.lint.patch_rules.parse_ops` for the JSON format);
* ``repro lint --self`` — repo-invariant analyzer on the running
  ``repro`` package sources (or ``--root DIR``);
* ``repro lint --race TARGET`` — seeded schedule fuzzing of the
  threaded runtime (:mod:`repro.lint.racecheck`); ``TARGET`` is a
  built-in scenario name, ``all``, or a dotted path to a callable.
  ``--race-runs`` / ``--race-seed`` / ``--race-timeout`` control the
  schedule sweep; ``--sync-graph FILE`` dumps the cumulative
  lock-order graph as JSON (the CI artifact).

``--format json`` emits the stable report schema; ``-o FILE`` writes
the report there as well (CI uploads it as an artifact).  Exit status
is 0 when no error-severity findings exist, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.errors import NetlistError
from repro.lint.diag import LintReport


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the shared ``lint`` options on a parser."""
    parser.add_argument(
        "netlists", nargs="*", metavar="NETLIST",
        help="netlist files to analyze (BLIF/Verilog/AIGER)")
    parser.add_argument(
        "--self", dest="self_lint", action="store_true",
        help="run the repo-invariant analyzer on the repro sources")
    parser.add_argument(
        "--root", metavar="DIR", default=None,
        help="package root for --self (default: the running "
             "repro package)")
    parser.add_argument(
        "--impl", metavar="FILE",
        help="implementation netlist for patch analysis")
    parser.add_argument(
        "--spec", metavar="FILE",
        help="specification netlist for patch analysis (optional)")
    parser.add_argument(
        "--patch-ops", metavar="FILE",
        help="JSON rewire-op list to analyze against --impl")
    parser.add_argument(
        "--race", metavar="TARGET", default=None,
        help="race-check TARGET under seeded schedule fuzzing: a "
             "scenario name (metrics, live, sampler, serve, store, "
             "inversion), 'all', or 'pkg.mod:callable'")
    parser.add_argument(
        "--race-runs", type=int, metavar="N", default=None,
        help="seeded executions per race scenario (default: 5)")
    parser.add_argument(
        "--race-seed", type=int, metavar="SEED", default=None,
        help="base seed; run i uses SEED+i (default: 1337)")
    parser.add_argument(
        "--race-timeout", type=float, metavar="S", default=None,
        help="faulthandler watchdog: dump all thread stacks if a race "
             "run wedges for S seconds (default: 120)")
    parser.add_argument(
        "--sync-graph", metavar="FILE", default=None,
        help="with --race: write the cumulative lock-order graph "
             "(locks, edges, violations with stacks) to FILE as JSON")
    parser.add_argument(
        "--format", dest="fmt", choices=["text", "json"],
        default="text", help="report rendering (default: text)")
    parser.add_argument(
        "-o", "--output", metavar="FILE",
        help="also write the report to FILE (in the chosen format)")
    parser.add_argument(
        "--no-deep", dest="deep", action="store_false", default=True,
        help="netlist mode: well-formedness tier only (skip hygiene "
             "rules)")


def run_lint(args: argparse.Namespace) -> int:
    """Execute one lint invocation; returns the process exit status."""
    reports: List[LintReport] = []

    if args.self_lint:
        from repro.lint.pylint_rules import lint_sources
        reports.append(lint_sources(args.root))

    if args.race:
        from repro.lint.racecheck import (
            DEFAULT_RUNS, DEFAULT_SEED, DEFAULT_TIMEOUT_S, run_racecheck)
        try:
            result = run_racecheck(
                args.race,
                runs=(args.race_runs if args.race_runs is not None
                      else DEFAULT_RUNS),
                seed=(args.race_seed if args.race_seed is not None
                      else DEFAULT_SEED),
                timeout_s=(args.race_timeout
                           if args.race_timeout is not None
                           else DEFAULT_TIMEOUT_S))
        except ValueError as exc:  # bad target spec: usage error
            print(f"error: {exc}", file=sys.stderr)
            return 2
        reports.append(result.report)
        if args.sync_graph:
            with open(args.sync_graph, "w", encoding="utf-8") as fh:
                json.dump(result.graph, fh, indent=2, sort_keys=True)
                fh.write("\n")

    if args.patch_ops:
        if not args.impl:
            print("error: --patch-ops requires --impl", file=sys.stderr)
            return 2
        from repro.cli import _load_netlist
        from repro.lint.patch_rules import lint_patch_ops, parse_ops
        impl = _load_netlist(args.impl)
        spec = _load_netlist(args.spec) if args.spec else None
        try:
            with open(args.patch_ops, "r", encoding="utf-8") as fh:
                ops = parse_ops(json.load(fh))
        except (OSError, ValueError, NetlistError) as exc:
            # json.JSONDecodeError and parse_ops' NetlistError both
            # land here; a malformed ops file is a usage error, not a
            # lint finding
            print(f"error: cannot read patch ops {args.patch_ops}: "
                  f"{exc}", file=sys.stderr)
            return 2
        reports.append(lint_patch_ops(impl, ops, spec=spec))

    for path in args.netlists:
        from repro.cli import _load_netlist
        from repro.lint.netlist_rules import lint_netlist
        circuit = _load_netlist(path)
        report = lint_netlist(circuit, deep=args.deep)
        report.subject = f"{path} ({circuit.name})"
        reports.append(report)

    if not reports:
        print("error: nothing to lint (give a netlist, --patch-ops, "
              "--race or --self)", file=sys.stderr)
        return 2

    if args.fmt == "json":
        if len(reports) == 1:
            payload = reports[0].as_dict()
        else:
            payload = {
                "tool": "lint",
                "ok": all(r.ok for r in reports),
                "reports": [r.as_dict() for r in reports],
            }
        rendered = json.dumps(payload, indent=2, sort_keys=True)
    else:
        rendered = "\n\n".join(r.render_text() for r in reports)

    print(rendered)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(rendered + "\n")
    return 0 if all(r.ok for r in reports) else 1


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``python -m repro.lint``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="static diagnostics for netlists, patches and the "
                    "repo's own invariants")
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    return run_lint(args)
