"""The diagnostics core shared by all three lint analyzers.

A :class:`Diagnostic` is one finding: a stable code (``NL010``,
``PA001``, ``RI004``, ...), a severity, a human-readable message, the
location it anchors to, and an optional fix hint.  A
:class:`LintReport` aggregates the diagnostics of one analyzer run and
renders them as text (one finding per line, grep-friendly) or JSON
(stable schema for CI artifacts and tooling).

Code families:

* ``NL...`` — netlist analyzer (:mod:`repro.lint.netlist_rules`);
* ``PA...`` — patch analyzer (:mod:`repro.lint.patch_rules`);
* ``RI...`` — repo-invariant analyzer (:mod:`repro.lint.pylint_rules`).

The catalog of all codes lives in ``docs/static-analysis.md``.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings make a report fail (non-zero exit from the CLI
    and rejection in the engine's lint screen); warnings and infos are
    advisory.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]

    def __lt__(self, other: "Severity") -> bool:
        return self.rank < other.rank


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding.

    Attributes:
        code: stable identifier, e.g. ``NL010``; the leading letters
            name the analyzer family, the digits the rule.
        severity: :class:`Severity` of the finding.
        message: one-line human-readable description.
        where: location the finding anchors to — ``"gate 'g' pin 1"``
            for netlist findings, ``"path.py:12:4"`` for code findings.
        hint: optional suggestion for fixing the finding.
    """

    code: str
    severity: Severity
    message: str
    where: str = ""
    hint: Optional[str] = None

    def render(self) -> str:
        """One grep-friendly line: ``code severity where: message``."""
        loc = f" {self.where}" if self.where else ""
        line = f"{self.code} {self.severity.value}{loc}: {self.message}"
        if self.hint:
            line += f" (hint: {self.hint})"
        return line

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "where": self.where,
        }
        if self.hint is not None:
            out["hint"] = self.hint
        return out


def error(code: str, message: str, where: str = "",
          hint: Optional[str] = None) -> Diagnostic:
    return Diagnostic(code, Severity.ERROR, message, where, hint)


def warning(code: str, message: str, where: str = "",
            hint: Optional[str] = None) -> Diagnostic:
    return Diagnostic(code, Severity.WARNING, message, where, hint)


def info(code: str, message: str, where: str = "",
         hint: Optional[str] = None) -> Diagnostic:
    return Diagnostic(code, Severity.INFO, message, where, hint)


@dataclass
class LintReport:
    """Ordered collection of diagnostics from one analyzer run.

    Attributes:
        tool: which analyzer produced the report (``netlist``,
            ``patch`` or ``self``).
        subject: what was analyzed (a circuit name, a path, ...).
        diagnostics: the findings, in discovery order.
    """

    tool: str = "lint"
    subject: str = ""
    diagnostics: List[Diagnostic] = field(default_factory=list)

    # -- collection ----------------------------------------------------
    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def merge(self, other: "LintReport") -> "LintReport":
        """Fold another report's findings into this one; returns self."""
        self.diagnostics.extend(other.diagnostics)
        return self

    # -- queries -------------------------------------------------------
    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def by_severity(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def ok(self) -> bool:
        """True when the report carries no error-severity findings."""
        return not self.errors

    def codes(self) -> List[str]:
        """Distinct codes present, sorted."""
        return sorted({d.code for d in self.diagnostics})

    def exit_code(self) -> int:
        """Process exit status the CLI maps the report to."""
        return 0 if self.ok else 1

    # -- rendering -----------------------------------------------------
    def summary(self) -> Dict[str, int]:
        return {
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "infos": len(self.by_severity(Severity.INFO)),
        }

    def render_text(self) -> str:
        """Human-readable rendering, most severe findings first."""
        header = f"{self.tool} lint"
        if self.subject:
            header += f" of {self.subject}"
        lines = [header]
        ordered = sorted(self.diagnostics,
                         key=lambda d: d.severity.rank)
        lines.extend("  " + d.render() for d in ordered)
        s = self.summary()
        lines.append(
            f"{s['errors']} error(s), {s['warnings']} warning(s), "
            f"{s['infos']} info(s)")
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "tool": self.tool,
            "subject": self.subject,
            "summary": self.summary(),
            "ok": self.ok,
            "diagnostics": [d.as_dict() for d in self.diagnostics],
        }

    def render_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)
