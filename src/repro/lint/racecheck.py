"""Seeded schedule fuzzing of the threaded runtime (``lint --race``).

The static pass (:mod:`repro.lint.concur_rules`) proves the *shape* of
the concurrency code; this module attacks its *behaviour*.  A race
check runs a target workload N times, each time under a different
seeded preemption schedule, and verifies workload-specific invariants
afterwards — lost metric increments, double-synthesized partial spans,
leaked sampler threads, an unreleasable endpoint port, a torn run-store
index.

The schedule fuzzing rides two existing mechanisms rather than a
bespoke scheduler:

* the fault-injection site :data:`~repro.runtime.sync.SITE_SYNC` —
  every traced-lock acquisition observes it, so arming a
  :class:`~repro.runtime.faultinject.FaultInjector` with seeded
  (ordinal, sleep) pairs injects deterministic jitter exactly at
  sync-primitive boundaries, widening the race windows the GIL
  normally hides;
* ``sys.setswitchinterval`` — tightened from the 5 ms default to
  microseconds for the duration of each run (and always restored), so
  the interpreter preempts threads between nearly every bytecode
  burst.  This module is the one sanctioned caller (rule ``CC007``).

Runs happen with sync debugging enabled, so every run also doubles as
a lock-order audit: any order-inversion cycle the workload produces is
reported as a diagnostic, and the accumulated lock-order graph is
available for the CI artifact (``--sync-graph``).

Diagnostic codes (``RC...`` family, cataloged in
``docs/static-analysis.md``):

* ``RC000`` *info* — run summary (seeds, acquisitions fuzzed).
* ``RC001`` *error* — a workload invariant failed under some seed.
* ``RC002`` *error* — a lock-order inversion was detected in a target
  that must be inversion-free.
* ``RC003`` *error* — the target crashed or hung under fuzzing.
* ``RC004`` *error* — an ``expect-violation`` target (the built-in
  ``inversion`` demo) failed to reproduce its inversion — i.e. the
  detector itself regressed.
* ``RC005`` *info* — an expected inversion was reproduced, with both
  acquisition stacks.

Targets are either built-in scenario names (:data:`SCENARIOS`;
``all`` runs every invariant scenario) or a dotted path
``pkg.mod:callable`` / ``pkg.mod.callable`` to a zero-argument
callable returning ``None``/an iterable of failure strings.
"""

from __future__ import annotations

import faulthandler
import importlib
import queue as _queue
import random
import sys
import tempfile
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.lint.diag import LintReport, error, info
from repro.runtime.faultinject import FaultInjector
from repro.runtime.sync import (
    SITE_SYNC,
    disable_sync_debug,
    enable_sync_debug,
    make_lock,
    make_thread,
    sync_graph,
    sync_state,
    sync_violations,
)

DEFAULT_RUNS = 5
DEFAULT_SEED = 1337
DEFAULT_TIMEOUT_S = 120.0

#: switch interval while fuzzing — the CPython default is 5 ms, which
#: lets a thread run thousands of bytecodes between preemptions and
#: hides most races; microseconds forces a context switch per burst
FUZZ_SWITCH_INTERVAL_S = 1e-5

#: jitter faults armed at :data:`SITE_SYNC` per run
JITTER_FAULTS = 24
#: call-ordinal window the faults are scattered over
JITTER_WINDOW = 400
#: maximum per-fault sleep (seconds) — long enough to open a window,
#: short enough that a full run stays interactive
JITTER_MAX_SLEEP_S = 0.002

#: thread-join grace inside scenarios; a thread alive after this is a
#: hang, reported as an invariant failure rather than blocking the CLI
JOIN_TIMEOUT_S = 15.0

ScenarioFn = Callable[[random.Random], List[str]]


@dataclass
class Scenario:
    """One built-in race-check workload."""

    name: str
    doc: str
    fn: ScenarioFn
    #: the workload intentionally inverts a lock order; the harness
    #: *requires* a violation instead of forbidding one
    expect_violation: bool = False


@dataclass
class RaceCheckResult:
    """Everything one ``lint --race`` invocation produced.

    Attributes:
        target: the target spec that was run.
        runs: seeded executions per scenario.
        seed: base seed; run *i* uses ``seed + i``.
        report: the diagnostics (:class:`~repro.lint.diag.LintReport`
            with tool ``"race"``); ``report.ok`` is the pass verdict.
        graph: the cumulative lock-order graph across all runs
            (:func:`~repro.runtime.sync.sync_graph` schema) — the CI
            artifact payload.
        acquisitions: total traced acquisitions fuzzed.
    """

    target: str
    runs: int
    seed: int
    report: LintReport
    graph: Dict[str, Any] = field(default_factory=dict)
    acquisitions: int = 0

    @property
    def ok(self) -> bool:
        return self.report.ok


# ----------------------------------------------------------------------
# built-in scenarios
# ----------------------------------------------------------------------

def _join_all(threads: List[Any], failures: List[str]) -> None:
    for thread in threads:
        thread.join(timeout=JOIN_TIMEOUT_S)
        if thread.is_alive():
            failures.append(f"thread {thread.name!r} hung "
                            f"(> {JOIN_TIMEOUT_S}s)")


def _scenario_metrics(rng: random.Random) -> List[str]:
    """Hammer one registry from several threads; nothing may be lost.

    Covers the double-checked-lock fast path in
    :meth:`~repro.obs.metrics.MetricsRegistry._get`: all threads share
    series, so a torn fast-path read or an unlocked ``+=`` shows up as
    a wrong total.  Also races a kind collision (counter vs. gauge
    under one name) to prove the fast path cannot bypass the kind
    check.
    """
    from repro.obs.metrics import Counter, MetricsRegistry

    registry = MetricsRegistry()
    workers = 4
    rounds = 250
    failures: List[str] = []

    def hammer(wid: int) -> None:
        counter = registry.counter("repro_race_total",
                                   labels={"half": str(wid % 2)})
        hist = registry.histogram("repro_race_seconds")
        for i in range(rounds):
            counter.inc()
            hist.observe((i % 7) * 1e-3)

    threads = [make_thread(hammer, name=f"race-metrics-{i}", args=(i,))
               for i in range(workers)]
    for thread in threads:
        thread.start()
    _join_all(threads, failures)

    total = sum(s.value for s in registry.series("repro_race_total"))
    if total != workers * rounds:
        failures.append(f"lost counter increments: {total} != "
                        f"{workers * rounds}")
    hist = registry.histogram("repro_race_seconds")
    if hist.count != workers * rounds:
        failures.append(f"lost histogram observations: {hist.count} "
                        f"!= {workers * rounds}")

    # racing kind collision: exactly one thread wins the name, the
    # other must get ValueError — never a silently re-kinded series
    outcomes: List[str] = []
    outcome_lock = make_lock("race.metrics.outcomes")

    def collide(kind: str) -> None:
        try:
            if kind == "counter":
                registry.counter("repro_race_kind")
            else:
                registry.gauge("repro_race_kind")
            verdict = "won:" + kind
        except ValueError:
            verdict = "raised:" + kind
        with outcome_lock:
            outcomes.append(verdict)

    pair = [make_thread(collide, name="race-kind-a", args=("counter",)),
            make_thread(collide, name="race-kind-b", args=("gauge",))]
    for thread in pair:
        thread.start()
    _join_all(pair, failures)
    raised = [o for o in outcomes if o.startswith("raised:")]
    if len(raised) != 1:
        failures.append("kind collision not detected exactly once: "
                        f"{sorted(outcomes)}")
    survivor = registry.series("repro_race_kind")
    if len(survivor) != 1:
        failures.append(f"kind collision left {len(survivor)} series")
    elif raised and raised[0] == "raised:counter" and isinstance(
            survivor[0], Counter):
        failures.append("gauge won the race but a Counter survived")
    return failures


def _scenario_live(rng: random.Random) -> List[str]:
    """Race ``flush_dead`` against the pump thread.

    A producer streams span messages for one worker while the main
    thread declares that worker dead mid-stream.  However the two
    interleave, the partial telemetry must be synthesized at most once
    and late messages must not resurrect the flushed worker.
    """
    from repro.obs.live import SPAN_CLOSE, SPAN_OPEN, LiveAggregator, LiveBus
    from repro.obs.trace import Trace

    failures: List[str] = []
    trace = Trace(name="racecheck-live")
    bus = LiveBus(_queue.Queue())
    agg = LiveAggregator(trace, bus).start()
    opens = 40
    flush_after = rng.randrange(5, opens)

    def produce() -> None:
        for i in range(1, opens + 1):
            bus.queue.put_nowait({
                "kind": SPAN_OPEN, "worker": "w1", "id": i,
                "parent": None, "name": f"race.span{i % 4}",
                "ts": float(i), "tags": {}})
            if i % 3 == 0:  # close a third, leave the rest open
                bus.queue.put_nowait({
                    "kind": SPAN_CLOSE, "worker": "w1",
                    "record": {"type": "span", "id": i, "parent": None,
                               "name": f"race.span{i % 4}",
                               "ts": float(i), "dur": 0.5,
                               "tags": {}, "counters": {}}})
            if i == flush_after:
                time.sleep(rng.uniform(0.0, 1e-3))

    producer = make_thread(produce, name="race-live-producer")
    producer.start()
    time.sleep(rng.uniform(0.0, 2e-3))
    agg.flush_dead("w1")
    agg.flush_dead("w1")  # double reconciliation must be a no-op
    _join_all([producer], failures)
    agg.stop()

    partial_events = [e for e in trace.events
                      if e.name == "worker.partial_telemetry"]
    if len(partial_events) > 1:
        failures.append("partial telemetry synthesized "
                        f"{len(partial_events)} times (want <= 1)")
    partial_spans = [sp for sp in trace.spans
                     if sp.tags.get("partial")]
    if len(partial_spans) > opens:
        failures.append(f"{len(partial_spans)} partial spans grafted "
                        f"from {opens} opens — duplicates")
    if agg.snapshot().get("w1"):
        failures.append("flushed worker resurrected in the aggregator")
    return failures


def _scenario_sampler(rng: random.Random) -> List[str]:
    """Start/stop the telemetry sampler under jitter; no leaked thread."""
    from repro.obs.trace import Trace
    from repro.obs.sampler import RunSampler

    import threading

    failures: List[str] = []
    trace = Trace(name="racecheck-sampler")
    sampler = RunSampler(trace, interval_s=1e-3, stall_window_s=60.0)
    sampler.start()
    for i in range(5):
        with trace.span("race.work", i=i):
            time.sleep(rng.uniform(0.0, 1e-3))
    sampler.stop()
    sampler.stop()  # second stop must not raise or double-sample wildly
    leaked = [t.name for t in threading.enumerate()
              if t.name == "repro-obs-sampler" and t.is_alive()]
    if leaked:
        failures.append(f"sampler thread leaked after stop: {leaked}")
    samples = [e for e in trace.events if e.name == "obs.sample"]
    if len(samples) < 2:
        failures.append(f"only {len(samples)} samples recorded "
                        "(want the start and stop snapshots at least)")
    return failures


def _scenario_serve(rng: random.Random) -> List[str]:
    """Stop the metrics endpoint, then rebind the very same port.

    This is the leak check: an un-closed listening socket keeps the
    port in ``TIME_WAIT``/bound state and the second bind fails.
    """
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.serve import MetricsServer

    registry = MetricsRegistry()
    registry.counter("repro_race_serve_total").inc()
    try:
        first = MetricsServer(registry, port=0)
    except OSError:  # no loopback in this sandbox: nothing to check
        return []
    failures: List[str] = []
    port = first.port
    first.start()
    time.sleep(rng.uniform(0.0, 1e-3))
    first.stop()
    first.stop()  # idempotent
    try:
        second = MetricsServer(registry, port=port)
    except OSError as exc:
        return [f"port {port} not released after stop(): {exc}"]
    second.start()
    second.stop()
    return failures


def _scenario_store(rng: random.Random) -> List[str]:
    """Concurrent ``RunStore.publish`` keeps the index consistent."""
    from repro.obs.store import RunRecord, RunStore

    failures: List[str] = []
    workers = 4
    per_worker = 5
    with tempfile.TemporaryDirectory(prefix="repro-racecheck-") as root:
        store = RunStore(root=root)

        def publish(wid: int) -> None:
            for i in range(per_worker):
                store.publish(RunRecord(
                    run_id=f"race-{wid}-{i}", kind="race",
                    name="racecheck", started_at=float(i),
                    wall_seconds=0.0, outcome="ok"))

        threads = [make_thread(publish, name=f"race-store-{i}",
                               args=(i,)) for i in range(workers)]
        for thread in threads:
            thread.start()
        _join_all(threads, failures)

        want = workers * per_worker
        rows = store.list()
        if len(rows) != want:
            failures.append(f"index lost rows: {len(rows)} != {want}")
        ids = {row.get("run_id") for row in rows}
        if len(ids) != len(rows):
            failures.append("index contains duplicate run ids")
        records = store.load_all()
        if len(records) != want:
            failures.append(f"records lost: {len(records)} != {want}")
    return failures


def _scenario_inversion(rng: random.Random) -> List[str]:
    """Deliberate lock-order inversion — the detector must fire.

    Acquires ``a`` then ``b``, later ``b`` then ``a``, sequentially on
    one thread: the order graph gains the cycle without any actual
    deadlock risk, so CI can assert the detection path (cycle plus
    both acquisition stacks) deterministically.
    """
    lock_a = make_lock("race.inversion.a")
    lock_b = make_lock("race.inversion.b")
    with lock_a:
        with lock_b:
            pass
    with lock_b:
        with lock_a:
            pass
    return []


SCENARIOS: Dict[str, Scenario] = {
    s.name: s for s in (
        Scenario("metrics", "registry hammer: no lost increments, "
                 "kind collisions still detected", _scenario_metrics),
        Scenario("live", "flush_dead vs. pump thread: partial spans "
                 "synthesized at most once", _scenario_live),
        Scenario("sampler", "sampler start/stop leaves no thread "
                 "behind", _scenario_sampler),
        Scenario("serve", "endpoint shutdown releases its port for an "
                 "immediate rebind", _scenario_serve),
        Scenario("store", "concurrent publishes keep the run index "
                 "consistent", _scenario_store),
        Scenario("inversion", "intentional a->b / b->a inversion; the "
                 "lock-order detector must report the cycle",
                 _scenario_inversion, expect_violation=True),
    )
}

#: the ``all`` meta-target: every invariant scenario (the inversion
#: demo is opt-in — it intentionally pollutes the order graph)
ALL_TARGET = "all"


def _resolve(target: str) -> List[Scenario]:
    """Target spec → scenarios to run (raises ``ValueError`` if bad)."""
    if target == ALL_TARGET:
        return [s for s in SCENARIOS.values() if not s.expect_violation]
    if target in SCENARIOS:
        return [SCENARIOS[target]]
    if "." in target or ":" in target:
        return [_load_dotted(target)]
    raise ValueError(
        f"unknown race target {target!r}; expected one of "
        f"{', '.join(sorted(SCENARIOS))}, '{ALL_TARGET}', or a dotted "
        "path like 'pkg.mod:callable'")


def _load_dotted(target: str) -> Scenario:
    """``pkg.mod:fn`` / ``pkg.mod.fn`` → a wrapped user scenario."""
    if ":" in target:
        mod_name, _, attr = target.partition(":")
    else:
        mod_name, _, attr = target.rpartition(".")
    try:
        module = importlib.import_module(mod_name)
        fn = getattr(module, attr)
    except (ImportError, AttributeError) as exc:
        raise ValueError(f"cannot load race target {target!r}: {exc}")
    if not callable(fn):
        raise ValueError(f"race target {target!r} is not callable")

    def run(rng: random.Random) -> List[str]:
        result = fn()
        if result is None:
            return []
        return [str(item) for item in result]

    return Scenario(target, f"user callable {target}", run)


# ----------------------------------------------------------------------
# the harness
# ----------------------------------------------------------------------

def run_racecheck(target: str,
                  runs: int = DEFAULT_RUNS,
                  seed: int = DEFAULT_SEED,
                  timeout_s: float = DEFAULT_TIMEOUT_S) -> RaceCheckResult:
    """Fuzz ``target`` across ``runs`` seeded schedules.

    Enables sync debugging for the duration (restoring the previous
    state afterwards), arms seeded preemption jitter at
    :data:`SITE_SYNC` before every run, tightens the interpreter
    switch interval, executes the scenario(s), and turns invariant
    failures / lock-order findings into ``RC...`` diagnostics.

    A ``faulthandler`` watchdog dumps all thread stacks to stderr if a
    run wedges for ``timeout_s`` — the dump is the diagnosis CI needs
    when a deadlock does slip through.
    """
    scenarios = _resolve(target)  # fail fast, before touching state
    report = LintReport(tool="race", subject=target)
    result = RaceCheckResult(target=target, runs=runs, seed=seed,
                             report=report)

    was_enabled = sync_state() is not None
    enable_sync_debug()
    state = sync_state()
    assert state is not None
    prev_interval = sys.getswitchinterval()
    watchdog = False
    try:
        if timeout_s > 0:
            try:
                faulthandler.dump_traceback_later(timeout_s,
                                                  exit=False)
                watchdog = True
            except (RuntimeError, OSError):  # no usable stderr
                watchdog = False
        state.reset()  # cumulative graph starts clean for the artifact
        for scenario in scenarios:
            _fuzz_scenario(scenario, state, report, runs, seed)
        result.acquisitions = int(
            sync_graph().get("acquisitions", 0))
        result.graph = sync_graph()
        report.add(info(
            "RC000",
            f"{len(scenarios)} scenario(s) x {runs} run(s), seeds "
            f"{seed}..{seed + runs - 1}, {result.acquisitions} traced "
            "acquisitions fuzzed"))
    finally:
        if watchdog:
            faulthandler.cancel_dump_traceback_later()
        state.set_jitter(None)
        sys.setswitchinterval(prev_interval)
        if not was_enabled:
            disable_sync_debug()
    return result


def _fuzz_scenario(scenario: Scenario, state: Any, report: LintReport,
                   runs: int, seed: int) -> None:
    reproduced = False
    for i in range(runs):
        run_seed = seed + i
        rng = random.Random(run_seed)
        where = f"{scenario.name} seed={run_seed}"
        injector = FaultInjector()
        for ordinal in rng.sample(range(1, JITTER_WINDOW + 1),
                                  JITTER_FAULTS):
            injector.arm(SITE_SYNC, ordinal,
                         payload=rng.uniform(0.0, JITTER_MAX_SLEEP_S))
        state.set_jitter(injector)
        known = len(sync_violations())
        sys.setswitchinterval(FUZZ_SWITCH_INTERVAL_S)
        try:
            failures = scenario.fn(rng)
        except Exception:
            report.add(error(
                "RC003",
                "scenario crashed: "
                + traceback.format_exc(limit=6).strip().replace(
                    "\n", " | "),
                where=where))
            failures = []
        finally:
            state.set_jitter(None)
        for failure in failures:
            report.add(error("RC001", failure, where=where,
                             hint="re-run with the printed seed to "
                             "reproduce the schedule"))
        fresh = sync_violations()[known:]
        for violation in fresh:
            if scenario.expect_violation:
                reproduced = True
                report.add(info(
                    "RC005",
                    "reproduced expected inversion: "
                    + " -> ".join(violation.cycle),
                    where=where,
                    hint=violation.render()))
            else:
                report.add(error(
                    "RC002",
                    "lock-order inversion: "
                    + " -> ".join(violation.cycle),
                    where=where,
                    hint=violation.render()))
    if scenario.expect_violation and not reproduced:
        report.add(error(
            "RC004",
            f"scenario {scenario.name!r} should produce a lock-order "
            "violation but the detector stayed silent — the runtime "
            "detection path has regressed",
            where=scenario.name))


def race_targets() -> List[Tuple[str, str]]:
    """``(name, description)`` pairs for CLI help and docs."""
    pairs = [(s.name, s.doc) for s in SCENARIOS.values()]
    pairs.append((ALL_TARGET, "every invariant scenario above "
                  "(excludes the inversion demo)"))
    return pairs
