"""Computation of the paper's table rows on the scaled suite."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.netlist.stats import circuit_stats
from repro.cec.equivalence import nonequivalent_outputs
from repro.eco.config import EcoConfig
from repro.eco.engine import SysEco
from repro.eco.patch import PatchStats
from repro.baselines.conemap import ConeMap
from repro.baselines.deltasyn import DeltaSyn
from repro.timing.sta import analyze
from repro.workloads.suite import (
    EcoCase,
    build_suite,
    build_timing_case,
    build_timing_suite,
)


@dataclass
class Table1Row:
    """One row of Table 1: test-case characteristics."""

    case_id: int
    inputs: int
    outputs: int
    gates: int
    nets: int
    sinks: int
    revised_outputs: int
    revised_percent: float


@dataclass
class Table2Row:
    """One row of Table 2: patch attributes from all sources."""

    case_id: int
    designer_estimate: int
    commercial: PatchStats
    commercial_seconds: float
    deltasyn: PatchStats
    deltasyn_seconds: float
    syseco: PatchStats
    syseco_seconds: float


@dataclass
class Table3Row:
    """One row of Table 3: patch gates and post-patch worst slack."""

    case_id: int
    deltasyn_gates: int
    deltasyn_slack_ps: float
    syseco_gates: int
    syseco_slack_ps: float


# ----------------------------------------------------------------------
def table1_row(case: EcoCase) -> Table1Row:
    """Characteristics of one ECO case (Table 1 columns)."""
    stats = circuit_stats(case.impl)
    revised = nonequivalent_outputs(case.impl, case.spec)
    return Table1Row(
        case_id=case.case_id,
        inputs=stats.inputs,
        outputs=stats.outputs,
        gates=stats.gates,
        nets=stats.nets,
        sinks=stats.sinks,
        revised_outputs=len(revised),
        revised_percent=100.0 * len(revised) / max(1, stats.outputs),
    )


def run_table1(ids: Optional[Sequence[int]] = None) -> List[Table1Row]:
    """All Table 1 rows (or a subset of case ids)."""
    return [table1_row(case) for case in build_suite(ids)]


def lint_screen_stats(case: EcoCase,
                      config: Optional[EcoConfig] = None) -> dict:
    """Static-screen effectiveness of one syseco run on a case.

    Runs the engine and reports how the pre-SAT lint screen spent its
    checks: how many candidates it saw, how many it rejected before any
    solver work, and the SAT/sim screen counts for comparison (the
    benches' JSON twins record these per case).
    """
    result = SysEco(config or EcoConfig()).rectify(case.impl, case.spec)
    counters = result.counters
    screens = counters.lint_screens
    rejects = counters.lint_rejects
    return {
        "case_id": case.case_id,
        "lint_screens": screens,
        "lint_rejects": rejects,
        "lint_reject_rate": rejects / screens if screens else 0.0,
        "sim_rejects": counters.sim_rejects,
        "sat_validations": counters.sat_validations,
    }


# ----------------------------------------------------------------------
def table2_row(case: EcoCase,
               config: Optional[EcoConfig] = None) -> Table2Row:
    """Patch attributes of the three engines on one case."""
    commercial = ConeMap().rectify(case.impl, case.spec)
    deltasyn = DeltaSyn().rectify(case.impl, case.spec)
    syseco = SysEco(config or EcoConfig()).rectify(case.impl, case.spec)
    return Table2Row(
        case_id=case.case_id,
        designer_estimate=case.designer_estimate,
        commercial=commercial.stats(),
        commercial_seconds=commercial.runtime_seconds,
        deltasyn=deltasyn.stats(),
        deltasyn_seconds=deltasyn.runtime_seconds,
        syseco=syseco.stats(),
        syseco_seconds=syseco.runtime_seconds,
    )


def run_table2(ids: Optional[Sequence[int]] = None,
               config: Optional[EcoConfig] = None) -> List[Table2Row]:
    """All Table 2 rows (or a subset of case ids)."""
    return [table2_row(case, config) for case in build_suite(ids)]


# ----------------------------------------------------------------------
#: extra delay charged per patch cell: ECO cells are placed into
#: leftover space after P&R and pay detour wiring (see DESIGN.md)
ECO_PLACEMENT_PENALTY_PS = 10.0


def table3_row(case: EcoCase) -> Table3Row:
    """Timing impact of the DeltaSyn and syseco patches on one case.

    The clock period is the unmodified implementation's worst arrival
    (the design was timing-closed before the ECO), and each tool's
    post-patch worst slack is measured against that same period, with
    every gate the patch instantiated charged the post-placement
    detour penalty.
    """
    period = analyze(case.impl).period
    deltasyn = DeltaSyn().rectify(case.impl, case.spec)
    syseco = SysEco(EcoConfig(level_aware=True)).rectify(
        case.impl, case.spec)
    d_report = analyze(deltasyn.patched, period=period,
                       eco_gates=deltasyn.patch.cloned_gates,
                       eco_penalty_ps=ECO_PLACEMENT_PENALTY_PS)
    s_report = analyze(syseco.patched, period=period,
                       eco_gates=syseco.patch.cloned_gates,
                       eco_penalty_ps=ECO_PLACEMENT_PENALTY_PS)
    return Table3Row(
        case_id=case.case_id,
        deltasyn_gates=deltasyn.stats().gates,
        deltasyn_slack_ps=d_report.worst_slack,
        syseco_gates=syseco.stats().gates,
        syseco_slack_ps=s_report.worst_slack,
    )


def run_table3(ids: Optional[Sequence[int]] = None) -> List[Table3Row]:
    """All Table 3 rows (timing cases 12-15)."""
    cases = build_timing_suite() if ids is None else \
        [build_timing_case(i) for i in ids]
    return [table3_row(case) for case in cases]
