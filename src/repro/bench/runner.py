"""Computation of the paper's table rows on the scaled suite.

Besides the table rows, this module is the benches' publication seam:
:func:`publish` persists a rendered table (plus its JSON twin) under
``benchmarks/results/`` and pushes any :class:`~repro.obs.store.RunRecord`
the bench produced into the persistent run store, and
:func:`traced_case_run` performs one traced, telemetry-sampled engine
run on a case and hands back both the result and its run record.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.netlist.stats import circuit_stats
from repro.cec.equivalence import nonequivalent_outputs
from repro.eco.config import EcoConfig
from repro.eco.engine import SysEco
from repro.eco.patch import PatchStats
from repro.baselines.conemap import ConeMap
from repro.baselines.deltasyn import DeltaSyn
from repro.timing.sta import analyze
from repro.workloads.suite import (
    EcoCase,
    build_suite,
    build_timing_case,
    build_timing_suite,
)


@dataclass
class Table1Row:
    """One row of Table 1: test-case characteristics."""

    case_id: int
    inputs: int
    outputs: int
    gates: int
    nets: int
    sinks: int
    revised_outputs: int
    revised_percent: float


@dataclass
class Table2Row:
    """One row of Table 2: patch attributes from all sources."""

    case_id: int
    designer_estimate: int
    commercial: PatchStats
    commercial_seconds: float
    deltasyn: PatchStats
    deltasyn_seconds: float
    syseco: PatchStats
    syseco_seconds: float


@dataclass
class Table3Row:
    """One row of Table 3: patch gates and post-patch worst slack."""

    case_id: int
    deltasyn_gates: int
    deltasyn_slack_ps: float
    syseco_gates: int
    syseco_slack_ps: float


# ----------------------------------------------------------------------
def table1_row(case: EcoCase) -> Table1Row:
    """Characteristics of one ECO case (Table 1 columns)."""
    stats = circuit_stats(case.impl)
    revised = nonequivalent_outputs(case.impl, case.spec)
    return Table1Row(
        case_id=case.case_id,
        inputs=stats.inputs,
        outputs=stats.outputs,
        gates=stats.gates,
        nets=stats.nets,
        sinks=stats.sinks,
        revised_outputs=len(revised),
        revised_percent=100.0 * len(revised) / max(1, stats.outputs),
    )


def run_table1(ids: Optional[Sequence[int]] = None) -> List[Table1Row]:
    """All Table 1 rows (or a subset of case ids)."""
    return [table1_row(case) for case in build_suite(ids)]


def traced_case_run(case: EcoCase,
                    config: Optional[EcoConfig] = None,
                    kind: str = "bench",
                    tags: Optional[dict] = None) -> Tuple[object, object]:
    """One traced, telemetry-sampled syseco run on a case.

    Returns ``(result, record)`` where ``record`` is the
    :class:`~repro.obs.store.RunRecord` of the run — phase summary,
    ``obs.sample`` counter timeline, final counters — ready for
    :func:`publish` to push into the run store.
    """
    from repro.obs import Trace, record_from_result

    cfg = config or EcoConfig()
    trace = Trace(name=f"case{case.case_id}")
    result = SysEco(cfg).rectify(case.impl, case.spec, trace=trace)
    record = record_from_result(
        result, trace=trace, kind=kind, name=f"case{case.case_id}",
        config=cfg, tags=dict(tags or {}))
    return result, record


def publish(name: str, text: str, data=None,
            results_dir: str = os.path.join("benchmarks", "results"),
            store=None, run_records: Sequence[object] = ()) -> str:
    """Persist a rendered bench table; returns the text file's path.

    Writes ``text`` to ``results_dir/name`` and, when ``data`` is
    given, a machine-readable JSON twin next to it (``table1.txt`` ->
    ``table1.json``).  Any ``run_records`` are published into the run
    store (``store`` may be a :class:`~repro.obs.store.RunStore`, a
    directory, or None for the default ``.repro/runs``).
    """
    from repro.obs import RunStore
    from repro.obs.atomicio import atomic_write_text

    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, name)
    atomic_write_text(path, text + "\n")
    if data is not None:
        json_path = os.path.splitext(path)[0] + ".json"
        atomic_write_text(json_path, json.dumps(
            data, indent=2, sort_keys=True) + "\n")
    if run_records:
        if not isinstance(store, RunStore):
            store = RunStore(store)
        for record in run_records:
            store.publish(record)
    return path


def lint_screen_stats(case: EcoCase,
                      config: Optional[EcoConfig] = None,
                      run_records: Optional[list] = None) -> dict:
    """Static-screen effectiveness of one syseco run on a case.

    Runs the engine and reports how the pre-SAT lint screen spent its
    checks: how many candidates it saw, how many it rejected before any
    solver work, and the SAT/sim screen counts for comparison (the
    benches' JSON twins record these per case).  When ``run_records``
    is a list, the run is traced and its run record appended for the
    caller to :func:`publish`.
    """
    if run_records is not None:
        result, record = traced_case_run(case, config)
        run_records.append(record)
    else:
        result = SysEco(config or EcoConfig()).rectify(
            case.impl, case.spec)
    counters = result.counters
    screens = counters.lint_screens
    rejects = counters.lint_rejects
    return {
        "case_id": case.case_id,
        "lint_screens": screens,
        "lint_rejects": rejects,
        "lint_reject_rate": rejects / screens if screens else 0.0,
        "sim_rejects": counters.sim_rejects,
        "sat_validations": counters.sat_validations,
    }


# ----------------------------------------------------------------------
def table2_row(case: EcoCase,
               config: Optional[EcoConfig] = None) -> Table2Row:
    """Patch attributes of the three engines on one case."""
    commercial = ConeMap().rectify(case.impl, case.spec)
    deltasyn = DeltaSyn().rectify(case.impl, case.spec)
    syseco = SysEco(config or EcoConfig()).rectify(case.impl, case.spec)
    return Table2Row(
        case_id=case.case_id,
        designer_estimate=case.designer_estimate,
        commercial=commercial.stats(),
        commercial_seconds=commercial.runtime_seconds,
        deltasyn=deltasyn.stats(),
        deltasyn_seconds=deltasyn.runtime_seconds,
        syseco=syseco.stats(),
        syseco_seconds=syseco.runtime_seconds,
    )


def run_table2(ids: Optional[Sequence[int]] = None,
               config: Optional[EcoConfig] = None) -> List[Table2Row]:
    """All Table 2 rows (or a subset of case ids)."""
    return [table2_row(case, config) for case in build_suite(ids)]


# ----------------------------------------------------------------------
#: extra delay charged per patch cell: ECO cells are placed into
#: leftover space after P&R and pay detour wiring (see DESIGN.md)
ECO_PLACEMENT_PENALTY_PS = 10.0


def table3_row(case: EcoCase) -> Table3Row:
    """Timing impact of the DeltaSyn and syseco patches on one case.

    The clock period is the unmodified implementation's worst arrival
    (the design was timing-closed before the ECO), and each tool's
    post-patch worst slack is measured against that same period, with
    every gate the patch instantiated charged the post-placement
    detour penalty.
    """
    period = analyze(case.impl).period
    deltasyn = DeltaSyn().rectify(case.impl, case.spec)
    syseco = SysEco(EcoConfig(level_aware=True)).rectify(
        case.impl, case.spec)
    d_report = analyze(deltasyn.patched, period=period,
                       eco_gates=deltasyn.patch.cloned_gates,
                       eco_penalty_ps=ECO_PLACEMENT_PENALTY_PS)
    s_report = analyze(syseco.patched, period=period,
                       eco_gates=syseco.patch.cloned_gates,
                       eco_penalty_ps=ECO_PLACEMENT_PENALTY_PS)
    return Table3Row(
        case_id=case.case_id,
        deltasyn_gates=deltasyn.stats().gates,
        deltasyn_slack_ps=d_report.worst_slack,
        syseco_gates=syseco.stats().gates,
        syseco_slack_ps=s_report.worst_slack,
    )


def run_table3(ids: Optional[Sequence[int]] = None) -> List[Table3Row]:
    """All Table 3 rows (timing cases 12-15)."""
    cases = build_timing_suite() if ids is None else \
        [build_timing_case(i) for i in ids]
    return [table3_row(case) for case in cases]
