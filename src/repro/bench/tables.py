"""Rendering of table rows in the paper's layout."""

from __future__ import annotations

from typing import Dict, Sequence

from repro.bench.runner import Table1Row, Table2Row, Table3Row


def format_table1(rows: Sequence[Table1Row]) -> str:
    """Table 1: characteristics of ECO test cases."""
    lines = [
        "Table 1: Characteristics of ECO test cases (scaled suite).",
        f"{'':>4} {'inputs':>7} {'outputs':>8} {'gates':>7} {'nets':>7} "
        f"{'sinks':>7} | {'rev.out':>7} {'%':>6}",
    ]
    for r in rows:
        lines.append(
            f"{r.case_id:>4} {r.inputs:>7} {r.outputs:>8} {r.gates:>7} "
            f"{r.nets:>7} {r.sinks:>7} | {r.revised_outputs:>7} "
            f"{r.revised_percent:>6.1f}"
        )
    return "\n".join(lines)


def _fmt_time(seconds: float) -> str:
    h = int(seconds // 3600)
    m = int((seconds % 3600) // 60)
    s = seconds % 60
    return f"{h:02d}:{m:02d}:{s:05.2f}"


def format_table2(rows: Sequence[Table2Row]) -> str:
    """Table 2: patch attributes from four sources."""
    header = (
        f"{'':>4} {'est.':>5} | "
        f"{'commercial (in/out/g/n)':>26} | "
        f"{'DeltaSyn (in/out/g/n, time)':>38} | "
        f"{'syseco (in/out/g/n, time)':>38}"
    )
    lines = ["Table 2: patch attributes: designer estimate, commercial "
             "proxy, DeltaSyn, syseco.", header]
    for r in rows:
        c, d, s = r.commercial, r.deltasyn, r.syseco
        lines.append(
            f"{r.case_id:>4} {r.designer_estimate:>5} | "
            f"{c.inputs:>5}{c.outputs:>6}{c.gates:>6}{c.nets:>7} | "
            f"{d.inputs:>5}{d.outputs:>6}{d.gates:>6}{d.nets:>7}  "
            f"{_fmt_time(r.deltasyn_seconds):>11} | "
            f"{s.inputs:>5}{s.outputs:>6}{s.gates:>6}{s.nets:>7}  "
            f"{_fmt_time(r.syseco_seconds):>11}"
        )
    ratios = reduction_ratios(rows)
    lines.append(
        "average reduction ratios of syseco relative to DeltaSyn: "
        f"inputs {ratios['inputs']:.2f}, outputs {ratios['outputs']:.2f}, "
        f"gates {ratios['gates']:.2f}, nets {ratios['nets']:.2f}"
    )
    return "\n".join(lines)


def reduction_ratios(rows: Sequence[Table2Row]) -> Dict[str, float]:
    """Per-attribute mean of syseco/DeltaSyn ratios (Table 2 footer).

    Cases where DeltaSyn's attribute is zero are skipped for that
    attribute (no ratio is defined there).
    """
    sums = {k: 0.0 for k in ("inputs", "outputs", "gates", "nets")}
    counts = {k: 0 for k in sums}
    for r in rows:
        for k in sums:
            denom = getattr(r.deltasyn, k)
            if denom:
                sums[k] += getattr(r.syseco, k) / denom
                counts[k] += 1
    return {k: (sums[k] / counts[k] if counts[k] else float("nan"))
            for k in sums}


def format_table3(rows: Sequence[Table3Row]) -> str:
    """Table 3: rectification impact on design slack."""
    lines = [
        "Table 3: rectification impact on design slack "
        "(worst slack vs. pre-ECO clock).",
        f"{'':>4} {'DeltaSyn gates':>14} {'slack,ps':>9} | "
        f"{'syseco gates':>12} {'slack,ps':>9}",
    ]
    for r in rows:
        lines.append(
            f"{r.case_id:>4} {r.deltasyn_gates:>14} "
            f"{r.deltasyn_slack_ps:>9.2f} | {r.syseco_gates:>12} "
            f"{r.syseco_slack_ps:>9.2f}"
        )
    return "\n".join(lines)
