"""Experiment harness helpers.

:mod:`repro.bench.runner` computes the rows of each paper table as
plain data; :mod:`repro.bench.tables` renders them in the paper's
layout.  The pytest-benchmark targets under ``benchmarks/`` and the
EXPERIMENTS.md generator both call into here, so the numbers reported
everywhere come from one code path.
"""

from repro.bench.runner import (
    Table1Row,
    Table2Row,
    Table3Row,
    lint_screen_stats,
    publish,
    table1_row,
    table2_row,
    table3_row,
    traced_case_run,
    run_table1,
    run_table2,
    run_table3,
)
from repro.bench.tables import (
    format_table1,
    format_table2,
    format_table3,
    reduction_ratios,
)

__all__ = [
    "Table1Row",
    "Table2Row",
    "Table3Row",
    "lint_screen_stats",
    "publish",
    "table1_row",
    "table2_row",
    "table3_row",
    "traced_case_run",
    "run_table1",
    "run_table2",
    "run_table3",
    "format_table1",
    "format_table2",
    "format_table3",
    "reduction_ratios",
]
