"""Command-line interface.

Run ``python -m repro <command> --help``.  Commands:

* ``stats``  — netlist statistics, logic depth and timing summary;
* ``cec``    — combinational equivalence check with counterexample;
* ``synth``  — run the heavy or light optimization script;
* ``eco``    — rectify an implementation against a revised spec with
  any of the three engines, writing the patched netlist and a patch
  report;
* ``trace``  — summarize a trace file written by ``eco --trace``;
* ``runs``   — inspect the persistent run store: list, show, diff,
  and regression-check recorded runs (``repro runs regress
  --baseline REF`` exits nonzero on regression — a CI gate), plus
  ``recover`` to salvage a crashed store and list resumable runs;
* ``watch``  — TTY dashboard over a recorded run, or over a live
  ``repro eco --serve-metrics`` endpoint with ``--url``;
* ``lint``   — static diagnostics: netlist analyzer, patch-op
  legality, or the repo's own invariants (``--self``);
* ``tables`` — regenerate the paper's tables on the scaled suite.

All netlists are exchanged as BLIF; ``eco`` and ``synth`` can also emit
structural Verilog with ``--verilog``.  ``-v``/``--log-level`` turn on
the engines' diagnostic logging (stderr).
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from typing import List, Optional

from repro.errors import ReproError


def _load_netlist(path: str):
    """Read a netlist, dispatching on the file extension.

    ``.blif`` -> BLIF, ``.v``/``.sv`` -> structural Verilog,
    ``.aag`` -> ASCII AIGER; anything else defaults to BLIF.
    """
    from repro.netlist import read_aiger, read_blif, read_verilog

    lower = path.lower()
    if lower.endswith((".v", ".sv")):
        return read_verilog(path)
    if lower.endswith(".aag"):
        return read_aiger(path)
    return read_blif(path)


def _save_netlist(circuit, path: str) -> None:
    """Write a netlist, dispatching on the file extension."""
    from repro.netlist import write_aiger, write_blif, write_verilog

    lower = path.lower()
    if lower.endswith((".v", ".sv")):
        write_verilog(circuit, path)
    elif lower.endswith(".aag"):
        write_aiger(circuit, path)
    else:
        write_blif(circuit, path)


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.netlist import circuit_stats
    from repro.netlist.traverse import levelize
    from repro.timing import analyze

    circuit = _load_netlist(args.netlist)
    stats = circuit_stats(circuit)
    print(f"name    : {circuit.name}")
    print(f"inputs  : {stats.inputs}")
    print(f"outputs : {stats.outputs}")
    print(f"gates   : {stats.gates}")
    print(f"nets    : {stats.nets}")
    print(f"sinks   : {stats.sinks}")
    if circuit.gates:
        levels = levelize(circuit)
        print(f"depth   : {max(levels.values())} levels")
        report = analyze(circuit)
        print(f"arrival : {report.max_arrival:.1f} ps "
              f"(critical output {report.worst_output})")
    return 0


def _cmd_cec(args: argparse.Namespace) -> int:
    from repro.cec import check_equivalence

    left = _load_netlist(args.left)
    right = _load_netlist(args.right)
    result = check_equivalence(left, right,
                               conflict_budget=args.budget)
    if result.equivalent is True:
        print("EQUIVALENT")
        return 0
    if result.equivalent is None:
        print("UNDECIDED (conflict budget exhausted)")
        return 2
    print("NOT EQUIVALENT")
    print(f"failing outputs: {', '.join(result.failing_outputs)}")
    print("counterexample:")
    for name in sorted(result.counterexample):
        print(f"  {name} = {int(result.counterexample[name])}")
    return 1


def _cmd_synth(args: argparse.Namespace) -> int:
    from repro.netlist import circuit_stats, write_verilog
    from repro.synth import optimize_heavy, optimize_light

    circuit = _load_netlist(args.netlist)
    before = circuit_stats(circuit)
    if args.script == "heavy":
        result = optimize_heavy(circuit, seed=args.seed)
    else:
        result = optimize_light(circuit)
    after = circuit_stats(result)
    print(f"{args.script} script: {before.gates} -> {after.gates} gates, "
          f"{before.nets} -> {after.nets} nets")
    _save_netlist(result, args.output)
    print(f"wrote {args.output}")
    if args.verilog:
        write_verilog(result, args.verilog)
        print(f"wrote {args.verilog}")
    return 0


def _cmd_eco(args: argparse.Namespace) -> int:
    from repro.cec import check_equivalence
    from repro.eco import EcoConfig, SysEco
    from repro.baselines import ConeMap, DeltaSyn
    from repro.errors import JournalError
    from repro.netlist import write_verilog

    impl = _load_netlist(args.impl)
    spec = _load_netlist(args.spec)

    if args.resume and args.engine != "syseco":
        raise JournalError(
            "--resume is only supported by the syseco engine")

    if args.engine == "syseco":
        engine = SysEco(EcoConfig(
            num_samples=args.samples,
            max_points=args.max_points,
            level_aware=args.level_aware,
            resynthesis=args.resynthesis,
            incremental_validate=args.incremental_validate,
            jobs=args.jobs,
            sim_backend=args.sim_backend,
            seed=args.seed,
            deadline_s=args.deadline,
            total_sat_budget=args.total_sat_budget,
            total_bdd_nodes=args.total_bdd_nodes,
            degrade_on_budget=args.degrade_on_budget,
            resume_from=args.resume,
            sync_debug=args.sync_debug,
        ))
    else:
        engine = DeltaSyn() if args.engine == "deltasyn" else ConeMap()

    # journal every recorded syseco run: the checkpoint WAL is what
    # makes a killed or interrupted run resumable (--resume RUN_ID)
    journal = None
    run_id = None
    if args.engine == "syseco" and (args.resume or args.store_runs):
        from repro.eco.checkpoint import RunJournal, resolve_store_root
        from repro.obs.store import new_run_id
        from repro.runtime.clock import now as _clock_now
        store_root = resolve_store_root(args.store)
        if args.resume:
            journal = RunJournal(args.resume, store_root=store_root,
                                 resume=True)
            if not journal.resuming:
                raise JournalError(
                    f"no resumable journal for run {args.resume!r} "
                    f"(store: {store_root}); see 'repro runs recover'")
            run_id = args.resume
        else:
            run_id = new_run_id(_clock_now())
            journal = RunJournal(run_id, store_root=store_root)

    serve_port = getattr(args, "serve_metrics", None)
    want_export = bool(args.trace or args.metrics
                       or serve_port is not None)
    trace = None
    if want_export and args.engine != "syseco":
        print(f"warning: --trace/--metrics/--serve-metrics is only "
              f"supported by the syseco engine, not {args.engine}; "
              f"skipping", file=sys.stderr)
        serve_port = None
    elif (want_export or args.store_runs) and args.engine == "syseco":
        # traced whenever the run is being recorded, so the run store
        # gets the phase summary and the obs.sample timeline; the
        # metrics registry rides on the trace, collecting latency
        # histograms for the run record and the live endpoint
        from repro.obs import MetricsRegistry, Trace
        trace = Trace(name=impl.name, metrics=MetricsRegistry())

    server = None
    if serve_port is not None and trace is not None:
        from repro.obs import maybe_serve
        server = maybe_serve(
            trace.metrics, serve_port, trace=trace,
            health_provider=lambda: {"run_id": run_id,
                                     "engine": args.engine})
        if server is not None:
            print(f"serving metrics on {server.url} "
                  f"(/metrics, /healthz)", file=sys.stderr)

    from repro.runtime.clock import now as _now
    from repro.runtime.profile import profiled
    started_s = _now()
    try:
        with profiled(args.profile):
            if trace is not None or journal is not None:
                result = engine.rectify(impl, spec, trace=trace,
                                        journal=journal)
            else:
                result = engine.rectify(impl, spec)
    except KeyboardInterrupt:
        print("\ninterrupted (SIGINT)", file=sys.stderr)
        if args.store_runs and run_id is not None:
            _publish_interrupted(args, impl, run_id, started_s)
        if server is not None:
            server.stop()
        return 130
    if server is not None:
        server.stop()
    if args.profile:
        print(f"wrote {args.profile} (cProfile stats)")
    from repro.eco.report import format_patch_report
    print(format_patch_report(result, impl=impl,
                              title=f"ECO with {args.engine}"))

    verdict = check_equivalence(result.patched, spec)
    print(f"verified: {verdict.equivalent}")
    if args.store_runs:
        _publish_run(args, engine, impl, result, verdict, trace,
                     run_id=run_id)
    if trace is not None:
        _export_trace(args, trace)
    if args.counters_json:
        _dump_counters(args.counters_json, args, result, verdict)
    if args.output:
        _save_netlist(result.patched, args.output)
        print(f"wrote {args.output}")
    if args.verilog:
        write_verilog(result.patched, args.verilog)
        print(f"wrote {args.verilog}")
    if args.patch_out:
        patch_circuit, port_map = result.patch.extract_circuit(
            result.patched)
        _save_netlist(patch_circuit, args.patch_out)
        print(f"wrote {args.patch_out} "
              f"({len(port_map)} rectification point(s))")
        for port, pin in sorted(port_map.items()):
            print(f"  {port} -> {pin!r}")
    return 0 if verdict.equivalent is True else 1


def _publish_run(args: argparse.Namespace, engine, impl, result,
                 verdict, trace, run_id=None) -> None:
    """Record the run in the persistent store (``repro runs ...``)."""
    from repro.obs import RunStore, record_from_result

    if verdict.equivalent is not True:
        outcome = "failed"
    else:
        outcome = "degraded" if result.degraded else "ok"
    tags = {"engine": args.engine}
    if getattr(args, "resume", None):
        # a resumed completion gets a fresh record id (the interrupted
        # record may already carry the journal's) but stays linked to
        # the journal it replayed
        tags.update(resumed=True, journal=args.resume)
        run_id = None
    record = record_from_result(
        result, trace=trace, kind="eco", name=impl.name,
        config=getattr(engine, "config", None), outcome=outcome,
        tags=tags, run_id=run_id)
    try:
        store = RunStore(args.store)
        store.publish(record)
        print(f"recorded run {record.run_id} (store: {store.root})")
    except OSError as exc:
        print(f"warning: could not record run: {exc}", file=sys.stderr)


def _publish_interrupted(args: argparse.Namespace, impl, run_id: str,
                         started_s: float) -> None:
    """Persist an ``interrupted`` record so the run shows up in
    ``repro runs list`` / ``recover`` and can be resumed."""
    from repro.obs import RunStore
    from repro.obs.store import RunRecord, current_git_sha
    from repro.runtime.clock import now

    record = RunRecord(
        run_id=run_id, kind="eco", name=impl.name,
        started_at=round(started_s, 3),
        wall_seconds=round(now() - started_s, 6),
        outcome="interrupted",
        git_sha=current_git_sha(),
        tags={"engine": args.engine, "resumable": True},
    )
    try:
        store = RunStore(args.store)
        store.publish(record)
        print(f"recorded interrupted run {run_id} (store: {store.root})",
              file=sys.stderr)
    except OSError as exc:
        print(f"warning: could not record interrupted run: {exc}",
              file=sys.stderr)
    print(f"resume with: repro eco --resume {run_id} "
          f"--impl {args.impl} --spec {args.spec}", file=sys.stderr)


def _export_trace(args: argparse.Namespace, trace) -> None:
    from repro.obs import write_chrome, write_jsonl, write_prometheus

    if args.trace:
        if args.trace_format == "chrome":
            write_chrome(trace, args.trace)
        else:
            write_jsonl(trace, args.trace)
        print(f"wrote {args.trace} ({args.trace_format} trace, "
              f"{len(trace.spans)} spans)")
    if args.metrics:
        write_prometheus(trace, args.metrics)
        print(f"wrote {args.metrics} (metrics snapshot)")


def _dump_counters(path: str, args: argparse.Namespace, result,
                   verdict) -> None:
    stats = result.stats()
    payload = {
        "engine": args.engine,
        "design": args.impl,
        "counters": result.counters.as_dict(),
        "degraded": result.degraded,
        "degrade_reason": result.degrade_reason,
        "per_output": dict(sorted(result.per_output.items())),
        "runtime_seconds": result.runtime_seconds,
        "patch": {"inputs": stats.inputs, "outputs": stats.outputs,
                  "gates": stats.gates, "nets": stats.nets},
        "verified": verdict.equivalent,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {path} (run counters)")


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import format_summary, read_trace, summarize

    summary = summarize(read_trace(args.file))
    print(format_summary(summary, hot=args.hot))
    return 0


def _cmd_diagnose(args: argparse.Namespace) -> int:
    from repro.eco.analysis import diagnose, format_diagnosis

    impl = _load_netlist(args.impl)
    spec = _load_netlist(args.spec)
    diagnosis = diagnose(impl, spec, rounds=args.rounds)
    print(format_diagnosis(diagnosis))
    if args.suggest:
        config = diagnosis.suggest_config()
        print("\nsuggested engine settings:")
        print(f"  --samples {config.num_samples}")
        if config.exact_domain_max_inputs:
            print(f"  exact domain (support <= "
                  f"{config.exact_domain_max_inputs} inputs)")
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro.bench import (
        format_table1, format_table2, format_table3,
        run_table1, run_table2, run_table3,
    )

    ids = None
    if args.cases:
        ids = [int(x) for x in args.cases.split(",")]
    wanted = args.table or "123"
    if "1" in wanted:
        print(format_table1(run_table1(ids)))
        print()
    if "2" in wanted:
        print(format_table2(run_table2(ids)))
        print()
    if "3" in wanted:
        timing_ids = None
        if ids:
            timing_ids = [i for i in ids if 12 <= i <= 15] or None
        print(format_table3(run_table3(timing_ids)))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import run_lint

    return run_lint(args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="syseco reproduction: rewire-based ECO rectification "
                    "via symbolic sampling (DAC 2019)")
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="increase log verbosity (-v: INFO, -vv: DEBUG); logs go "
             "to stderr")
    parser.add_argument(
        "--log-level", metavar="LEVEL", default=None,
        choices=["DEBUG", "INFO", "WARNING", "ERROR", "CRITICAL"],
        help="explicit log level (overrides -v)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("stats", help="netlist statistics and timing")
    p.add_argument("netlist", help="BLIF file")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("cec", help="combinational equivalence check")
    p.add_argument("left", help="BLIF file")
    p.add_argument("right", help="BLIF file")
    p.add_argument("--budget", type=int, default=None,
                   help="SAT conflict budget")
    p.set_defaults(func=_cmd_cec)

    p = sub.add_parser("synth", help="run an optimization script")
    p.add_argument("netlist", help="input BLIF file")
    p.add_argument("-o", "--output", required=True, help="output BLIF")
    p.add_argument("--script", choices=["heavy", "light"],
                   default="light")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--verilog", help="also write structural Verilog")
    p.set_defaults(func=_cmd_synth)

    p = sub.add_parser("eco", help="rectify an implementation")
    p.add_argument("--impl", required=True,
                   help="current implementation C (BLIF)")
    p.add_argument("--spec", required=True,
                   help="revised specification C' (BLIF)")
    p.add_argument("-o", "--output", help="patched netlist (BLIF)")
    p.add_argument("--verilog", help="patched netlist (Verilog)")
    p.add_argument("--patch-out",
                   help="write the patch itself as a standalone netlist")
    p.add_argument("--engine",
                   choices=["syseco", "deltasyn", "conemap"],
                   default="syseco")
    p.add_argument("--samples", type=int, default=16,
                   help="sampling-domain size N")
    p.add_argument("--max-points", type=int, default=2,
                   help="largest rectification point-set size m")
    p.add_argument("--level-aware", action="store_true",
                   help="level-driven rewire selection (Table 3 mode)")
    p.add_argument("--resynthesis", action="store_true",
                   help="run the rectification-logic resynthesis pass")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes for the per-output search "
                        "phase (default: 1 = sequential)")
    p.add_argument("--no-incremental-validate",
                   dest="incremental_validate", action="store_false",
                   default=True,
                   help="validate candidates with the legacy "
                        "copy-and-re-encode oracle instead of the "
                        "incremental assumption-based miter")
    p.add_argument("--sim-backend",
                   choices=["auto", "python", "numpy"],
                   default="auto",
                   help="simulation-kernel backend: auto (default) "
                        "uses the numpy vector kernels when numpy is "
                        "installed, python forces the pure-Python "
                        "oracle paths, numpy requires the repro[perf] "
                        "extra")
    p.add_argument("--profile", metavar="FILE",
                   help="profile the run with cProfile and write "
                        "sorted stats to FILE")
    p.add_argument("--seed", type=int, default=2019)
    p.add_argument("--deadline", type=float, default=None, dest="deadline",
                   metavar="SECONDS",
                   help="wall-clock deadline of the run; on expiry the "
                        "partial patch is kept and remaining outputs are "
                        "force-completed via the guaranteed fallback")
    p.add_argument("--total-sat-budget", type=int, default=None,
                   metavar="CONFLICTS",
                   help="aggregate SAT conflict budget across the run")
    p.add_argument("--total-bdd-nodes", type=int, default=None,
                   metavar="NODES",
                   help="aggregate BDD node budget across the run")
    strictness = p.add_mutually_exclusive_group()
    strictness.add_argument(
        "--degrade-on-budget", dest="degrade_on_budget",
        action="store_true", default=True,
        help="degrade gracefully when a run budget is exhausted "
             "(default)")
    strictness.add_argument(
        "--strict", dest="degrade_on_budget", action="store_false",
        help="raise instead of degrading on budget exhaustion")
    p.add_argument("--trace", metavar="FILE",
                   help="record a hierarchical span trace of the run "
                        "(syseco engine only)")
    p.add_argument("--trace-format", choices=["jsonl", "chrome"],
                   default="jsonl",
                   help="trace file format: jsonl events or Chrome "
                        "trace-event JSON for Perfetto/chrome://tracing "
                        "(default: jsonl)")
    p.add_argument("--metrics", metavar="FILE",
                   help="write a Prometheus-style text metrics snapshot "
                        "of the run")
    p.add_argument("--serve-metrics", metavar="PORT", type=int,
                   nargs="?", const=0, default=None,
                   help="serve /metrics (Prometheus text) and /healthz "
                        "on 127.0.0.1:PORT for the duration of the run "
                        "(PORT omitted: an ephemeral port, printed to "
                        "stderr); point 'repro watch --url' at it")
    p.add_argument("--sync-debug", action="store_true", default=False,
                   help="enable the runtime lock-order/deadlock "
                        "detector for this run: order inversions are "
                        "logged with both acquisition stacks and "
                        "per-lock wait times land in the "
                        "repro_sync_lock_wait_seconds histogram "
                        "(also: REPRO_SYNC_DEBUG=1)")
    p.add_argument("--counters-json", metavar="FILE",
                   help="dump run counters, degradation state and "
                        "per-output status as JSON")
    p.add_argument("--store", metavar="DIR", default=None,
                   help="run-store directory receiving this run's "
                        "record (default: $REPRO_RUN_STORE or "
                        ".repro/runs)")
    p.add_argument("--no-store", dest="store_runs",
                   action="store_false", default=True,
                   help="do not record this run in the run store")
    p.add_argument("--resume", metavar="RUN_ID", default=None,
                   help="resume a killed or interrupted run from its "
                        "checkpoint journal: committed patches are "
                        "replayed and the search continues with the "
                        "remaining outputs ('repro runs recover' lists "
                        "resumable runs)")
    p.set_defaults(func=_cmd_eco)

    p = sub.add_parser(
        "trace",
        help="summarize a trace file written by eco --trace")
    p.add_argument("file", help="trace file (jsonl or chrome format)")
    p.add_argument("--hot", type=int, default=5, metavar="N",
                   help="number of hottest outputs to list (default: 5)")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("diagnose",
                       help="characterize an ECO instance before running")
    p.add_argument("--impl", required=True,
                   help="current implementation C (BLIF)")
    p.add_argument("--spec", required=True,
                   help="revised specification C' (BLIF)")
    p.add_argument("--rounds", type=int, default=16,
                   help="simulation rounds for error-rate estimates")
    p.add_argument("--suggest", action="store_true",
                   help="print suggested engine settings")
    p.set_defaults(func=_cmd_diagnose)

    p = sub.add_parser(
        "runs",
        help="inspect the persistent run store: list, show, diff, "
             "regression-check, recover")
    from repro.obs.runs_cli import add_runs_arguments, run_runs
    add_runs_arguments(p)
    p.set_defaults(func=run_runs)

    p = sub.add_parser(
        "watch",
        help="TTY dashboard: render a recorded run, or tail a live "
             "'repro eco --serve-metrics' endpoint with --url")
    from repro.obs.watch_cli import add_watch_arguments, run_watch
    add_watch_arguments(p)
    p.set_defaults(func=run_watch)

    p = sub.add_parser(
        "lint",
        help="static diagnostics for netlists, patches and the repo's "
             "own invariants")
    from repro.lint.cli import add_lint_arguments
    add_lint_arguments(p)
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser("tables", help="regenerate the paper's tables")
    p.add_argument("--table", help="subset, e.g. '1' or '13'")
    p.add_argument("--cases", help="comma-separated case ids")
    p.set_defaults(func=_cmd_tables)

    return parser


def _configure_logging(args: argparse.Namespace) -> None:
    if args.log_level:
        level = getattr(logging, args.log_level)
    elif args.verbose >= 2:
        level = logging.DEBUG
    elif args.verbose == 1:
        level = logging.INFO
    else:
        level = logging.WARNING
    logging.basicConfig(
        level=level, stream=sys.stderr,
        format="%(levelname)s %(name)s: %(message)s")


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_logging(args)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    except KeyboardInterrupt:
        # commands with resumable state handle SIGINT themselves; this
        # is the generic fallback with the conventional 128+SIGINT code
        print("\ninterrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
