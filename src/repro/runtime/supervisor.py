"""The run supervisor: one object carrying a run's resource contract.

``SysEco.rectify`` creates one :class:`RunSupervisor` per run and
threads it through every resource-bounded step.  It bundles

* a :class:`~repro.runtime.budget.RunBudget` (deadline + aggregate SAT
  conflict / BDD node caps),
* an :class:`~repro.runtime.escalate.EscalationPolicy` (adaptive
  per-call SAT budgets),
* a :class:`~repro.runtime.faultinject.FaultInjector` (deterministic
  failure testing),
* the run's :class:`~repro.runtime.counters.RunCounters`,
* the degradation flag the engine consults when a budget blows.

All state of a run lives here — engine instances stay stateless and
can serve concurrent ``rectify`` calls.
"""

from __future__ import annotations

import logging
from typing import Dict, List, Optional, Set

from repro.errors import BddNodeLimitError, SatBudgetExceeded
from repro.obs.trace import ensure_trace
from repro.runtime.budget import RunBudget
from repro.sat.cnfcache import CnfCache
from repro.runtime.counters import RunCounters
from repro.runtime.escalate import MIN_INITIAL, EscalationPolicy
from repro.runtime.faultinject import (
    FAULT_EXHAUST,
    FAULT_UNKNOWN,
    FaultInjector,
    InjectedClock,
    SITE_BDD,
    SITE_SAT,
)
from repro.runtime.sync import make_rlock

logger = logging.getLogger("repro.runtime")


class RunSupervisor:
    """Supervises one rectification run end to end.

    Args:
        budget: the run-level budget contract.
        escalation: per-call SAT budget schedule.
        max_output_attempts: symbolic-search attempts allowed per
            failing output before the engine stops searching it and
            falls back (``None`` = unlimited).
        injector: fault injector consulted at every supervised site;
            ``None`` installs an inert one.
        trace: a :class:`~repro.obs.trace.Trace` receiving BDD-session
            and SAT-validation spans plus degradation events; ``None``
            installs the no-op trace.
    """

    def __init__(self, budget: RunBudget, escalation: EscalationPolicy,
                 max_output_attempts: Optional[int] = None,
                 injector: Optional[FaultInjector] = None,
                 trace=None):
        self.budget = budget
        self.escalation = escalation
        self.max_output_attempts = max_output_attempts
        self.injector = injector or FaultInjector()
        self.trace = ensure_trace(trace)
        self.counters = RunCounters()
        self.degraded = False
        self.degrade_reason: Optional[str] = None
        #: outputs whose parallel partition repeatedly killed workers,
        #: mapped to the reason; the engine skips searching them and
        #: completes them via the fallback (port -> reason)
        self.quarantined: Dict[str, str] = {}
        #: run-wide CNF template cache (spec cones, miter encodings)
        self.cnf_cache = CnfCache(counters=self.counters)
        #: per-run scratch for counterexample-guided refinement
        self.cegar_cex: List[Dict[str, bool]] = []
        self._attempts: Dict[str, int] = {}
        self._capped: Set[str] = set()
        self._bdd_spans: List = []
        self._live_bdd: List = []
        # escalation counts absorbed from parallel workers; the local
        # escalation policy's totals are reported on top of these
        self._merged_escalations = 0
        self._merged_deescalations = 0
        # guards the degradation/quarantine/absorb state, which the
        # main loop and aggregator-driven paths can reach concurrently;
        # reentrant because absorb_worker may call mark_degraded
        self._state_lock = make_rlock("supervisor.state")

    # ------------------------------------------------------------------
    @classmethod
    def from_config(cls, config, injector: Optional[FaultInjector] = None,
                    clock=None, trace=None) -> "RunSupervisor":
        """Build a supervisor from an ``EcoConfig``-shaped object.

        When an injector is given the wall clock is routed through it so
        armed clock jumps are visible to deadline checks.
        """
        if injector is not None:
            clock = InjectedClock(clock, injector)
        budget = RunBudget(
            deadline_s=config.deadline_s,
            total_sat_conflicts=config.total_sat_budget,
            total_bdd_nodes=config.total_bdd_nodes,
            clock=clock)
        initial = config.sat_budget_initial
        if initial is None:
            initial = max(MIN_INITIAL, config.sat_budget // 8)
        escalation = EscalationPolicy(
            initial=min(initial, config.sat_budget),
            factor=config.sat_escalation_factor,
            ceiling=config.sat_budget,
            max_attempts=config.sat_escalation_attempts,
            deescalate_after=config.sat_deescalate_after)
        return cls(budget, escalation,
                   max_output_attempts=config.max_output_attempts,
                   injector=injector, trace=trace)

    # ------------------------------------------------------------------
    # checkpoints and degradation
    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        """Deadline check; called at every loop boundary of the engine."""
        self.budget.check_deadline()

    def node_hook(self, _count: int) -> None:
        """Periodic callback from :class:`~repro.bdd.manager.BddManager`:
        keeps deadline enforcement responsive inside heavy symbolic
        computation."""
        self.budget.check_deadline()

    def mark_degraded(self, reason: str) -> None:
        with self._state_lock:
            if self.degraded:
                return
            self.degraded = True
            self.degrade_reason = reason
        self.trace.event("run.degraded", reason=reason)
        logger.warning("run degraded: %s", reason)

    def quarantine(self, port: str, reason: str) -> None:
        """Stop searching ``port``: its partition keeps killing workers.

        Unlike :meth:`mark_degraded` this is scoped to one output — the
        rest of the run proceeds at full strength, and the quarantined
        output is completed via the Sec. 3.3 fallback.  The result is
        still reported degraded (a fallback forced by infrastructure
        failure, not by the search).
        """
        with self._state_lock:
            if port in self.quarantined:
                return
            self.quarantined[port] = reason
            self.counters.outputs_quarantined += 1
        self.trace.event("output.quarantined", port=port, reason=reason)
        logger.warning("output %s quarantined: %s", port, reason)

    # ------------------------------------------------------------------
    # per-output attempt cap
    # ------------------------------------------------------------------
    def note_attempt(self, port: str) -> bool:
        """Register one symbolic-search attempt for ``port``.

        Returns False once the per-output cap is hit — the engine then
        abandons the search for this output and uses the fallback.
        """
        n = self._attempts.get(port, 0) + 1
        self._attempts[port] = n
        if self.max_output_attempts is not None \
                and n > self.max_output_attempts:
            if port not in self._capped:
                self._capped.add(port)
                self.counters.attempts_capped += 1
            return False
        return True

    # ------------------------------------------------------------------
    # BDD sessions
    # ------------------------------------------------------------------
    def open_bdd(self, configured_limit: Optional[int]) -> Optional[int]:
        """Node limit for a new BDD session, under the aggregate cap.

        Observes the :data:`SITE_BDD` fault site; an armed fault raises
        :class:`BddNodeLimitError` as an immediate session blowup.
        """
        fault = self.injector.observe(SITE_BDD)
        if fault is not None:
            raise BddNodeLimitError(
                "fault injection: BDD node limit hit at session "
                f"{self.injector.calls(SITE_BDD)}")
        limit = self.budget.grant_bdd(configured_limit)
        self.counters.bdd_sessions += 1
        # the session span stays open until close_bdd; symbolic work
        # performed inside the session nests under it in the trace
        self._bdd_spans.append(
            self.trace.span("bdd.session", limit=limit))
        return limit

    def adopt_bdd(self, manager) -> None:
        """Register a live session manager so the telemetry sampler can
        observe node growth *while* the session runs."""
        self._live_bdd.append(manager)

    def live_bdd_stats(self) -> Dict[str, int]:
        """Cumulative BDD telemetry including live sessions.

        ``bdd_nodes`` = nodes charged by finished sessions plus the
        current node count of every open manager; node stores never
        shrink and close_bdd moves a session's count into
        ``bdd_nodes_spent``, so the sampled series is monotonically
        non-decreasing.  Called from the sampler thread — it only reads
        a snapshot of the list.
        """
        live = sum(m.num_nodes for m in tuple(self._live_bdd))
        return {
            "bdd_nodes": self.counters.bdd_nodes_spent + live,
            "bdd_sessions": self.counters.bdd_sessions,
        }

    def close_bdd(self, manager) -> None:
        """Charge a finished session's node count to the run budget."""
        nodes = manager.num_nodes
        self.budget.charge_bdd(nodes)
        self.counters.bdd_nodes_spent += nodes
        try:
            self._live_bdd.remove(manager)
        except ValueError:
            pass
        if self._bdd_spans:
            span = self._bdd_spans.pop()
            stats = getattr(manager, "stats", None)
            if stats is not None:
                span.tag(**stats())
            else:
                span.tag(nodes=nodes)
            span.finish()

    # ------------------------------------------------------------------
    # supervised SAT validation
    # ------------------------------------------------------------------
    def check_pair_supervised(self, checker, port: str):
        """One output-pair equivalence query under run supervision.

        Attempts the query with the escalation policy's budgets (small
        first, geometrically larger on ``UNKNOWN``), charging actual
        conflicts spent to the run budget.  Observes :data:`SITE_SAT`
        once per attempt: an armed ``"unknown"`` fault forces that
        attempt to UNKNOWN without solving, an ``"exhaust"`` fault
        raises :class:`SatBudgetExceeded`.
        """
        from repro.cec.equivalence import EquivalenceResult

        verdict = {True: "equivalent", False: "counterexample",
                   None: "unknown"}
        result = EquivalenceResult(None)
        resolved = False
        attempts = 0
        conflicts = 0
        with self.trace.span("sat.validate", port=port) as span:
            try:
                for requested in self.escalation.attempt_budgets():
                    attempts += 1
                    granted = self.budget.grant_sat(requested)
                    fault = self.injector.observe(SITE_SAT)
                    if fault is not None and fault.payload == FAULT_EXHAUST:
                        self.escalation.record(False)
                        raise SatBudgetExceeded(
                            "fault injection: total SAT conflict budget "
                            f"spent at call {self.injector.calls(SITE_SAT)}")
                    if fault is not None and fault.payload == FAULT_UNKNOWN:
                        result = EquivalenceResult(None)
                    else:
                        before = checker.solver.conflicts
                        result = checker.check_pair(
                            port, conflict_budget=granted)
                        spent = checker.solver.conflicts - before
                        self.budget.charge_sat(spent)
                        self.counters.sat_conflicts_spent += spent
                        conflicts += spent
                    if result.equivalent is not None:
                        resolved = True
                        break
                    self.counters.sat_unknowns += 1
                    self.trace.event("sat.unknown", port=port,
                                     budget=granted, attempt=attempts)
            finally:
                span.tag(attempts=attempts, conflicts=conflicts,
                         result=verdict[result.equivalent])
        self.escalation.record(resolved)
        self.counters.sat_escalations = (
            self._merged_escalations + self.escalation.escalations)
        self.counters.sat_deescalations = (
            self._merged_deescalations + self.escalation.deescalations)
        return result

    # ------------------------------------------------------------------
    # parallel workers
    # ------------------------------------------------------------------
    def partition_budget(self, jobs: int) -> Dict[str, Optional[float]]:
        """Budget share of one of ``jobs`` parallel workers.

        SAT conflicts and BDD nodes are split evenly with one extra
        share held back for the main process (commit replay, fallbacks),
        so the aggregate caps hold across workers by construction.
        Wall-clock time is concurrent, not divided: every worker gets
        the remaining deadline.
        """
        time_left = self.budget.time_left()
        sat_left = self.budget.sat_remaining()
        bdd_left = self.budget.bdd_remaining()
        shares = jobs + 1
        return {
            "deadline_s": time_left,
            "total_sat_budget":
                None if sat_left is None else max(1, sat_left // shares),
            "total_bdd_nodes":
                None if bdd_left is None else max(1, bdd_left // shares),
        }

    def partition_shares(self, jobs: int) -> tuple:
        """Exact budget partition across ``jobs`` workers + the main
        process.

        Returns ``(shares, reserve)`` where ``shares`` is one budget
        dict per worker (same keys as :meth:`partition_budget`) and
        ``reserve`` is the main process's share.  For each capped
        resource the worker shares plus the reserve sum *exactly* to
        the remaining budget — the division remainder goes to the
        reserve, so partitioning loses nothing and a retried task
        re-uses its partition's share instead of drawing a fresh one
        (no double-spend).  The one exception: every worker share has
        a floor of 1 (configs reject zero budgets), so a budget
        smaller than ``jobs + 1`` over-allocates and the reserve
        clamps to 0 — the workers' aggregate spend is still charged
        against the real budget when their telemetry is absorbed.
        """
        time_left = self.budget.time_left()
        sat_left = self.budget.sat_remaining()
        bdd_left = self.budget.bdd_remaining()

        def split(total):
            if total is None:
                return [None] * jobs, None
            per = max(1, total // (jobs + 1))
            worker_shares = [per] * jobs
            return worker_shares, max(0, total - per * jobs)

        sat_shares, sat_reserve = split(sat_left)
        bdd_shares, bdd_reserve = split(bdd_left)
        shares = [{
            "deadline_s": time_left,
            "total_sat_budget": sat_shares[i],
            "total_bdd_nodes": bdd_shares[i],
        } for i in range(jobs)]
        reserve = {
            "deadline_s": time_left,
            "total_sat_budget": sat_reserve,
            "total_bdd_nodes": bdd_reserve,
        }
        return shares, reserve

    def absorb_worker(self, counters: Dict[str, int],
                      degraded: bool = False,
                      degrade_reason: Optional[str] = None) -> None:
        """Merge one worker's telemetry into this run.

        Adds every counter (escalation totals go through the merged
        base so later local assignments do not clobber them), charges
        the worker's actual SAT/BDD spend to the aggregate budget, and
        propagates degradation.  Serialized under the supervisor state
        lock: two worker results absorbed concurrently must not tear
        the counter read-modify-writes.
        """
        with self._state_lock:
            for name, value in counters.items():
                if name not in self.counters or not value:
                    continue
                if name == "sat_escalations":
                    self._merged_escalations += value
                elif name == "sat_deescalations":
                    self._merged_deescalations += value
                else:
                    setattr(self.counters, name,
                            getattr(self.counters, name) + value)
            self.counters.sat_escalations = (
                self._merged_escalations + self.escalation.escalations)
            self.counters.sat_deescalations = (
                self._merged_deescalations + self.escalation.deescalations)
            self.budget.charge_sat(counters.get("sat_conflicts_spent", 0))
            self.budget.charge_bdd(counters.get("bdd_nodes_spent", 0))
            self.counters.parallel_workers += 1
            if degraded:
                self.mark_degraded(degrade_reason or "worker degraded")

    # ------------------------------------------------------------------
    def publish_gauges(self, registry) -> None:
        """Heartbeat → gauge: budget and health state for ``/metrics``.

        Called by the sampler on every tick (and safe to call ad hoc);
        each gauge reads one already-maintained field, so the cost is a
        few dict lookups per tick.
        """
        if registry is None:
            return
        registry.gauge("repro_budget_elapsed_seconds",
                       help="supervised wall time of the current run"
                       ).set(self.budget.elapsed())
        registry.gauge("repro_sat_conflicts_spent",
                       help="aggregate SAT conflicts charged to the "
                       "run budget").set(self.budget.sat_spent)
        registry.gauge("repro_bdd_nodes_spent",
                       help="aggregate BDD nodes charged to the run "
                       "budget").set(self.budget.bdd_spent)
        registry.gauge("repro_outputs_quarantined",
                       help="outputs quarantined after repeated worker "
                       "deaths").set(len(self.quarantined))
        # "_live" suffix: the trace exporter's end-of-run snapshot
        # already owns the repro_run_degraded family
        registry.gauge("repro_run_degraded_live",
                       help="1 once the run degraded to the guaranteed "
                       "fallback (live view)").set(1 if self.degraded
                                                   else 0)

    def summary(self) -> str:
        """One-line budget summary for end-of-run logging."""
        c = self.counters
        parts = [f"elapsed={self.budget.elapsed():.2f}s",
                 f"sat_conflicts={self.budget.sat_spent}",
                 f"bdd_nodes={c.bdd_nodes_spent}",
                 f"bdd_sessions={c.bdd_sessions}",
                 f"escalations={c.sat_escalations}",
                 f"fallbacks={c.fallbacks}"]
        if self.budget.total_sat_conflicts is not None:
            parts[1] += f"/{self.budget.total_sat_conflicts}"
        if self.budget.total_bdd_nodes is not None:
            parts[2] = (f"bdd_nodes={c.bdd_nodes_spent}"
                        f"/{self.budget.total_bdd_nodes}")
        if self.degraded:
            parts.append(f"DEGRADED({self.degrade_reason})")
        return " ".join(parts)
