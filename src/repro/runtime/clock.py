"""The sanctioned wall-clock read.

Everything outside :mod:`repro.runtime` that wants wall-clock time
calls :func:`now` instead of ``time.time()`` — the repo invariant
``RI001`` (see :mod:`repro.lint.pylint_rules`) enforces this.  Keeping
every read behind one function means deadline supervision, runtime
accounting and fault-injected clocks observe the same time source, and
tests can patch a single seam.
"""

from __future__ import annotations

import time


def now() -> float:
    """Seconds since the epoch (``time.time()``), via the one
    sanctioned call site."""
    return time.time()
