"""Run supervision: deadlines, budgets, escalation, fault injection.

This package gives every resource-bounded step of the ECO flow a single
run-level contract (see ``docs/architecture.md``, section "Run
supervision & failure handling"):

* :class:`RunBudget` — wall-clock deadline plus aggregate SAT conflict
  and BDD node caps for a whole run;
* :class:`EscalationPolicy` — adaptive per-call SAT budgets (geometric
  escalation on ``UNKNOWN``, de-escalation after repeated failures);
* :class:`RunSupervisor` — bundles budget, escalation, counters and the
  degradation state the engine consults;
* :class:`FaultInjector` — deterministic fault injection at named call
  sites, making every degradation branch unit-testable;
* :class:`RetryPolicy` — exponential backoff with deterministic jitter
  for the supervised worker pool;
* :class:`RunCounters` — typed per-run telemetry;
* :mod:`repro.runtime.sync` — the sanctioned sync-primitive factories
  (``make_lock`` & co.) with optional lock-order tracing, deadlock
  detection and per-lock wait histograms.

Only :mod:`repro.errors` is depended on; the package sits at the bottom
of the layering next to ``netlist`` / ``bdd`` / ``sat``.
"""

from repro.runtime.budget import RunBudget
from repro.runtime.clock import now
from repro.runtime.counters import RunCounters
from repro.runtime.escalate import EscalationPolicy
from repro.runtime.faultinject import (
    FAULT_CRASH,
    FAULT_EXHAUST,
    FAULT_KILL,
    FAULT_TORN,
    FAULT_UNKNOWN,
    Fault,
    FaultInjector,
    InjectedClock,
    InjectedCrash,
    MonotonicClock,
    SITE_BDD,
    SITE_CLOCK,
    SITE_JOURNAL,
    SITE_SAT,
    SITE_WORKER,
)
from repro.runtime.retry import RetryPolicy
from repro.runtime.sync import (
    LockOrderEdge,
    LockOrderViolation,
    SITE_SYNC,
    disable_sync_debug,
    enable_sync_debug,
    make_condition,
    make_event,
    make_lock,
    make_rlock,
    make_thread,
    safe_mp_context,
    set_sync_registry,
    sync_debug_enabled,
    sync_graph,
    sync_violations,
)
from repro.runtime.supervisor import RunSupervisor

__all__ = [
    "RunBudget",
    "now",
    "RunCounters",
    "EscalationPolicy",
    "Fault",
    "FaultInjector",
    "InjectedClock",
    "InjectedCrash",
    "MonotonicClock",
    "RetryPolicy",
    "RunSupervisor",
    "LockOrderEdge",
    "LockOrderViolation",
    "disable_sync_debug",
    "enable_sync_debug",
    "make_condition",
    "make_event",
    "make_lock",
    "make_rlock",
    "make_thread",
    "safe_mp_context",
    "set_sync_registry",
    "sync_debug_enabled",
    "sync_graph",
    "sync_violations",
    "FAULT_CRASH",
    "FAULT_EXHAUST",
    "FAULT_KILL",
    "FAULT_TORN",
    "FAULT_UNKNOWN",
    "SITE_BDD",
    "SITE_CLOCK",
    "SITE_JOURNAL",
    "SITE_SAT",
    "SITE_SYNC",
    "SITE_WORKER",
]
