"""Optional cProfile wrapping for engine runs (``repro eco --profile``).

Kept in :mod:`repro.runtime` next to the other wall-clock machinery:
profiling is a run-supervision concern, not an engine one, and the
engine stays import-free of :mod:`cProfile`.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from contextlib import contextmanager
from typing import Iterator, Optional


@contextmanager
def profiled(path: Optional[str],
             sort: str = "cumulative",
             limit: int = 60) -> Iterator[Optional[cProfile.Profile]]:
    """Profile the enclosed block and write sorted stats to ``path``.

    With ``path=None`` the block runs unprofiled (zero overhead), so
    callers can wrap unconditionally::

        with profiled(args.profile):
            result = engine.rectify(impl, spec)

    The stats file holds the ``pstats`` text report sorted by ``sort``
    (top ``limit`` entries), written even when the block raises — a
    profile of a run that blew its budget is exactly the interesting
    case.
    """
    if path is None:
        yield None
        return
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        buf = io.StringIO()
        stats = pstats.Stats(profiler, stream=buf)
        stats.sort_stats(sort)
        stats.print_stats(limit)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(buf.getvalue())
