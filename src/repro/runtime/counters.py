"""Typed per-run telemetry counters.

Replaces the engine-instance counter dict (which leaked state across
``rectify`` calls) with a dataclass owned by the run supervisor and
returned on the public :class:`~repro.eco.patch.RectificationResult`.
The mapping-style accessors (``counters["choices"]``, ``.get``,
``.items()``, ``in``) keep existing benches and reports working.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Iterator, Tuple


@dataclass
class RunCounters:
    """Search-effort and supervision telemetry of one rectification run.

    Search effort (the ablation benches read these):

    * ``choices`` — rewiring-choice assignments examined;
    * ``lint_screens`` — candidates checked by the static patch screen;
    * ``lint_rejects`` — candidates it rejected before any solver work;
    * ``sim_rejects`` — candidates dropped by the simulation screen;
    * ``sat_validations`` — full-domain SAT validations performed;
    * ``point_sets`` — candidate point-sets enumerated;
    * ``fallbacks`` — outputs completed by the Sec. 3.3 fallback;
    * ``cegar_rounds`` — counterexample-guided refinement rounds;
    * ``joint_commits`` — multi-output joint commits;
    * ``resubstitutions`` — resynthesis-pass resubstitutions.

    Performance machinery (the incremental/compiled fast paths):

    * ``incremental_solves`` — assumption-based candidate solves on the
      persistent validation miter;
    * ``encode_cache_hits`` — CNF encodings served by template replay
      instead of a fresh Tseitin walk;
    * ``plan_evals`` — batched evaluations through compiled simulation
      plans (engine-visible ones: screens and samplers);
    * ``parallel_workers`` — worker processes that contributed results
      to a parallel per-output search.

    Supervision (the :mod:`repro.runtime` layer writes these):

    * ``sat_escalations`` — per-call budget escalation retries;
    * ``sat_deescalations`` — starting-budget halvings;
    * ``sat_unknowns`` — validation attempts that stayed UNKNOWN;
    * ``sat_conflicts_spent`` — aggregate conflicts across the run;
    * ``bdd_nodes_spent`` — aggregate BDD nodes across all sessions;
    * ``bdd_sessions`` — symbolic sessions opened;
    * ``attempts_capped`` — outputs whose search hit the attempt cap;
    * ``degraded_outputs`` — outputs force-completed after exhaustion.

    Fault tolerance (checkpoint/resume and the supervised pool):

    * ``worker_deaths`` — supervised pool workers that died mid-task;
    * ``tasks_retried`` — partition tasks re-dispatched after a death;
    * ``outputs_quarantined`` — partitions abandoned after repeated
      worker deaths (their outputs complete via the fallback);
    * ``replayed_commits`` — journaled patches replayed on resume.
    """

    choices: int = 0
    lint_screens: int = 0
    lint_rejects: int = 0
    sim_rejects: int = 0
    sat_validations: int = 0
    point_sets: int = 0
    fallbacks: int = 0
    cegar_rounds: int = 0
    joint_commits: int = 0
    resubstitutions: int = 0
    incremental_solves: int = 0
    encode_cache_hits: int = 0
    plan_evals: int = 0
    parallel_workers: int = 0
    sat_escalations: int = 0
    sat_deescalations: int = 0
    sat_unknowns: int = 0
    sat_conflicts_spent: int = 0
    bdd_nodes_spent: int = 0
    bdd_sessions: int = 0
    attempts_capped: int = 0
    degraded_outputs: int = 0
    worker_deaths: int = 0
    tasks_retried: int = 0
    outputs_quarantined: int = 0
    replayed_commits: int = 0

    # -- mapping-style compatibility -----------------------------------
    def _names(self) -> Tuple[str, ...]:
        return tuple(f.name for f in fields(self))

    def __getitem__(self, key: str) -> int:
        if key not in self._names():
            raise KeyError(key)
        return getattr(self, key)

    def get(self, key: str, default: int = 0) -> int:
        return getattr(self, key) if key in self._names() else default

    def __contains__(self, key: str) -> bool:
        return key in self._names()

    def items(self) -> Iterator[Tuple[str, int]]:
        return iter((f.name, getattr(self, f.name)) for f in fields(self))

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def nonzero(self) -> Dict[str, int]:
        return {k: v for k, v in self.items() if v}
