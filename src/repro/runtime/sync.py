"""Sanctioned synchronization primitives with optional runtime tracing.

Every thread, lock, condition and event in the codebase is constructed
through this module (the ``CC001`` concurrency lint rule enforces it).
The factories have two modes:

* **disabled** (the default): :func:`make_lock` & co. return the bare
  ``threading`` primitives — zero wrappers, zero indirection, zero
  overhead.  This is the production path.
* **enabled** (``REPRO_SYNC_DEBUG=1`` in the environment, or
  ``EcoConfig.sync_debug`` / :func:`enable_sync_debug`): the factories
  return ``Traced*`` wrappers that maintain a process-wide
  **lock-acquisition-order graph**.  Acquiring lock *B* while holding
  lock *A* records the edge ``A -> B`` with the acquiring thread and
  stack; the first acquisition that closes a cycle in that graph is a
  potential deadlock and is reported as a structured
  :class:`LockOrderViolation` carrying *both* acquisition stacks (the
  one that established the forward edges and the one that closed the
  cycle).  Traced locks also feed per-lock wait-time histograms into
  the run's :class:`~repro.obs.metrics.MetricsRegistry`
  (``repro_sync_lock_wait_seconds``, the ``sync.lock_wait`` family —
  persisted in run records and p95-gated by ``repro runs regress``
  like every other latency family).

The tracing layer additionally observes the :data:`SITE_SYNC` fault
site once per traced acquisition.  The race-fuzzing harness
(:mod:`repro.lint.racecheck`) arms that site with seeded sleep
payloads to inject deterministic preemption jitter at exactly the
boundaries where interleavings matter.

Ordering discipline is tracked per lock *name* (the role a lock plays,
e.g. ``"metrics.registry"``), not per instance: the discipline "never
acquire the registry lock while holding the aggregator lock" is what
stays true across runs, while instance identities do not.  Reentrant
acquisitions of the same instance (``TracedRLock``) add no edges, and
same-name edges are ignored (two instances of the same role are never
nested in this codebase; flagging them would make every sharded lock a
false positive).

This module is intentionally pure stdlib and imports nothing from the
rest of the package, so any layer (``obs`` included) may import it
without cycles.
"""

from __future__ import annotations

import logging
import os
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

logger = logging.getLogger("repro.runtime")

#: environment switch: any non-empty value except "0" enables tracing
SYNC_DEBUG_ENV = "REPRO_SYNC_DEBUG"

#: fault-injection site observed once per traced-primitive acquisition
#: (payload: seconds of preemption jitter to sleep before acquiring)
SITE_SYNC = "sync.acquire"

#: metric family fed with per-lock wait times while tracing is enabled
LOCK_WAIT_HISTOGRAM = ("repro_sync_lock_wait_seconds",
                       "lock acquisition wait time per traced lock")

#: stack frames kept per recorded acquisition edge
STACK_DEPTH = 12


def _capture_stack() -> Tuple[str, ...]:
    """The acquiring call stack, innermost last, sync frames dropped."""
    here = os.path.dirname(os.path.abspath(__file__))
    sync_file = os.path.join(here, "sync.py")
    frames = traceback.extract_stack()
    kept = [f"{f.filename}:{f.lineno} in {f.name}"
            for f in frames if f.filename != sync_file]
    return tuple(kept[-STACK_DEPTH:])


@dataclass(frozen=True)
class LockOrderEdge:
    """One observed ordering ``src`` held while ``dst`` was acquired."""

    src: str
    dst: str
    thread: str
    stack: Tuple[str, ...]

    def as_dict(self) -> Dict[str, Any]:
        return {"src": self.src, "dst": self.dst, "thread": self.thread,
                "stack": list(self.stack)}


@dataclass(frozen=True)
class LockOrderViolation:
    """A cycle in the lock-order graph: a potential deadlock.

    ``edges`` walks the cycle: the closing edge (the acquisition that
    completed the cycle) first, then the previously recorded edges of
    the return path — so the violation carries the acquisition stack
    of *both* conflicting orders.
    """

    cycle: Tuple[str, ...]
    edges: Tuple[LockOrderEdge, ...]

    def summary(self) -> str:
        """The cycle on one line (log messages, diagnostic text)."""
        return "lock-order inversion: " + " -> ".join(self.cycle)

    def render(self) -> str:
        """Full report: the cycle plus the acquisition stack of every
        edge — i.e. *both* conflicting orders, each with the thread
        that took it and where."""
        lines = [self.summary()]
        for edge in self.edges:
            lines.append(f"  {edge.src} -> {edge.dst} "
                         f"[thread {edge.thread}]")
            lines.extend(f"    {frame}" for frame in edge.stack)
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, Any]:
        return {"cycle": list(self.cycle),
                "edges": [e.as_dict() for e in self.edges]}


class _HeldLocks(threading.local):
    """Per-thread stack of held traced locks: ``[key, name, count]``."""

    def __init__(self) -> None:
        self.stack: List[List[Any]] = []


class SyncDebugState:
    """The process-wide lock-order graph and its violation log.

    All mutation happens under one private raw lock (the guard itself
    is deliberately *not* traced).  The jitter injector and the metrics
    registry are rebindable at any time; both are optional.
    """

    def __init__(self) -> None:
        self._guard = threading.Lock()
        #: (src, dst) -> first edge observed with that ordering
        self._edges: Dict[Tuple[str, str], LockOrderEdge] = {}
        self._violations: List[LockOrderViolation] = []
        self._reported: Set[Tuple[str, ...]] = set()
        self._held = _HeldLocks()
        #: per-thread flag: currently inside :meth:`_observe_wait`
        self._observing = threading.local()
        self._locks_seen: Set[str] = set()
        self.registry: Optional[Any] = None
        self.jitter: Optional[Any] = None
        self.acquisitions = 0

    # -- wiring --------------------------------------------------------
    def set_registry(self, registry: Optional[Any]) -> None:
        self.registry = registry

    def set_jitter(self, injector: Optional[Any]) -> None:
        """Install a fault injector observed at :data:`SITE_SYNC`."""
        self.jitter = injector

    def reset(self) -> None:
        """Drop the recorded graph and violations (harness re-runs)."""
        with self._guard:
            self._edges.clear()
            self._violations.clear()
            self._reported.clear()
            self._locks_seen.clear()
            self.acquisitions = 0

    # -- acquisition protocol ------------------------------------------
    def before_acquire(self, name: str) -> None:
        """Jitter hook: runs before the inner primitive is acquired."""
        injector = self.jitter
        if injector is None:
            return
        fault = injector.observe(SITE_SYNC)
        if fault is not None:
            time.sleep(float(fault.payload or 0.0))

    def on_acquired(self, key: int, name: str, wait_s: float) -> None:
        """Record one successful acquisition of lock ``key``/``name``."""
        stack = self._held.stack
        for entry in stack:
            if entry[0] == key:          # reentrant: no new edges
                entry[2] += 1
                return
        holders = [entry[1] for entry in stack]
        with self._guard:
            self.acquisitions += 1
            self._locks_seen.add(name)
            for held_name in holders:
                if held_name == name:
                    continue
                pair = (held_name, name)
                if pair not in self._edges:
                    edge = LockOrderEdge(held_name, name,
                                         threading.current_thread().name,
                                         _capture_stack())
                    self._edges[pair] = edge
                    self._check_cycle(edge)
        stack.append([key, name, 1])
        self._observe_wait(name, wait_s)

    def on_released(self, key: int) -> None:
        stack = self._held.stack
        for i in range(len(stack) - 1, -1, -1):
            if stack[i][0] == key:
                stack[i][2] -= 1
                if stack[i][2] <= 0:
                    del stack[i]
                return
        # released by a thread that never acquired it: legal for a bare
        # Lock, nothing to unwind here

    def drop_held(self, key: int) -> int:
        """Fully forget ``key`` for this thread (``Condition.wait``);
        returns the recursion count to restore."""
        stack = self._held.stack
        for i in range(len(stack) - 1, -1, -1):
            if stack[i][0] == key:
                count = int(stack[i][2])
                del stack[i]
                return count
        return 0

    def restore_held(self, key: int, name: str, count: int) -> None:
        if count > 0:
            self._held.stack.append([key, name, count])

    def _observe_wait(self, name: str, wait_s: float) -> None:
        registry = self.registry
        if registry is None:
            return
        # observer effect: recording a wait acquires the registry's
        # *own* (possibly traced) locks — observing those would
        # re-enter the registry while its mutex is held and
        # self-deadlock, so the ``metrics.*`` roles never self-report
        if name.startswith("metrics."):
            return
        # belt-and-braces reentrancy guard for any other path that
        # lands back here while an observation is already in flight
        if getattr(self._observing, "active", False):
            return
        self._observing.active = True
        try:
            registry.histogram(LOCK_WAIT_HISTOGRAM[0],
                               labels={"lock": name},
                               help=LOCK_WAIT_HISTOGRAM[1]
                               ).observe(wait_s)
        except Exception:  # telemetry must never take a lock down
            logger.debug("sync wait histogram unavailable", exc_info=True)
        finally:
            self._observing.active = False

    # -- cycle detection -----------------------------------------------
    def _check_cycle(self, new_edge: LockOrderEdge) -> None:
        """DFS from ``new_edge.dst`` back to ``new_edge.src``.

        Called with ``_guard`` held, right after inserting the edge; a
        found path means the graph now carries both orderings.
        """
        path = self._find_path(new_edge.dst, new_edge.src)
        if path is None:
            return
        cycle = (new_edge.src,) + tuple(path)
        canon = self._canonical(cycle)
        if canon in self._reported:
            return
        self._reported.add(canon)
        edges = [new_edge]
        for a, b in zip(path, path[1:]):
            edges.append(self._edges[(a, b)])
        violation = LockOrderViolation(cycle=cycle, edges=tuple(edges))
        self._violations.append(violation)
        logger.warning("%s (stacks recorded for both orders)",
                       violation.summary())

    def _find_path(self, start: str,
                   goal: str) -> Optional[Tuple[str, ...]]:
        """A node path ``start .. goal`` in the edge graph, or None."""
        adjacency: Dict[str, List[str]] = {}
        for (a, b) in self._edges:
            adjacency.setdefault(a, []).append(b)
        stack: List[Tuple[str, Tuple[str, ...]]] = [(start, (start,))]
        seen = {start}
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            for nxt in adjacency.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, path + (nxt,)))
        return None

    @staticmethod
    def _canonical(cycle: Tuple[str, ...]) -> Tuple[str, ...]:
        """Rotation-invariant form of a cycle for deduplication."""
        names = cycle[:-1] if len(cycle) > 1 and cycle[0] == cycle[-1] \
            else cycle
        pivot = min(range(len(names)), key=lambda i: names[i])
        return names[pivot:] + names[:pivot]

    # -- reporting -----------------------------------------------------
    @property
    def violations(self) -> Tuple[LockOrderViolation, ...]:
        with self._guard:
            return tuple(self._violations)

    def graph_as_dict(self) -> Dict[str, Any]:
        """JSON-able snapshot of the graph (the CI artifact format)."""
        with self._guard:
            return {
                "locks": sorted(self._locks_seen),
                "acquisitions": self.acquisitions,
                "edges": [self._edges[k].as_dict()
                          for k in sorted(self._edges)],
                "violations": [v.as_dict() for v in self._violations],
            }


# ----------------------------------------------------------------------
# traced primitives
# ----------------------------------------------------------------------
class TracedLock:
    """A ``threading.Lock`` recording order edges and wait times."""

    _inner_factory = staticmethod(threading.Lock)

    def __init__(self, name: str, state: SyncDebugState):
        self.name = name
        self._state = state
        self._inner = self._inner_factory()

    def acquire(self, blocking: bool = True,
                timeout: float = -1) -> bool:
        self._state.before_acquire(self.name)
        started = time.monotonic()
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._state.on_acquired(id(self), self.name,
                                    time.monotonic() - started)
        return got

    def release(self) -> None:
        self._state.on_released(id(self))
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> "TracedLock":
        self.acquire()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class TracedRLock(TracedLock):
    """A ``threading.RLock`` wrapper; reentrancy adds no order edges.

    Implements the private ``_release_save`` / ``_acquire_restore`` /
    ``_is_owned`` protocol so a ``threading.Condition`` built on it
    fully releases recursive holds across ``wait()`` (and the held-lock
    bookkeeping follows).
    """

    _inner_factory = staticmethod(threading.RLock)

    def _release_save(self) -> Tuple[int, Any]:
        count = self._state.drop_held(id(self))
        saver = getattr(self._inner, "_release_save", None)
        if saver is not None:
            return count, saver()
        self._inner.release()
        return count, None

    def _acquire_restore(self, saved: Tuple[int, Any]) -> None:
        count, inner_state = saved
        restorer = getattr(self._inner, "_acquire_restore", None)
        if restorer is not None and inner_state is not None:
            restorer(inner_state)
        else:
            self._inner.acquire()
        self._state.restore_held(id(self), self.name, count)

    def _is_owned(self) -> bool:
        owned = getattr(self._inner, "_is_owned", None)
        if owned is not None:
            return bool(owned())
        if self._inner.acquire(False):
            self._inner.release()
            return False
        return True


class TracedEvent:
    """A ``threading.Event`` whose waits observe the jitter site.

    Event waits are expected to be long (pollers, shutdown signals), so
    they are *not* fed into the lock-wait histogram and add no order
    edges — only the preemption-jitter hook applies.
    """

    def __init__(self, name: str, state: SyncDebugState):
        self.name = name
        self._state = state
        self._inner = threading.Event()

    def set(self) -> None:
        self._inner.set()

    def clear(self) -> None:
        self._inner.clear()

    def is_set(self) -> bool:
        return self._inner.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        self._state.before_acquire(self.name)
        return self._inner.wait(timeout)

    def __repr__(self) -> str:
        return f"<TracedEvent {self.name!r}>"


# ----------------------------------------------------------------------
# global switch + factories
# ----------------------------------------------------------------------
_state_guard = threading.Lock()
_state: Optional[SyncDebugState] = None


def sync_debug_enabled() -> bool:
    """True while the tracing layer is active."""
    return _state is not None


def sync_state() -> Optional[SyncDebugState]:
    """The active debug state, or ``None`` when tracing is off."""
    return _state


def enable_sync_debug(registry: Optional[Any] = None,
                      injector: Optional[Any] = None) -> SyncDebugState:
    """Turn the tracing layer on (idempotent); returns the state.

    Only primitives constructed *after* this call are traced — the
    factories decide at construction time so the disabled path stays
    bare-metal.  ``registry``/``injector`` rebind the existing state
    when tracing is already on.
    """
    global _state
    with _state_guard:
        if _state is None:
            _state = SyncDebugState()
        if registry is not None:
            _state.set_registry(registry)
        if injector is not None:
            _state.set_jitter(injector)
        return _state


def disable_sync_debug() -> None:
    """Turn the tracing layer off; existing traced locks keep working
    against their (now detached) state."""
    global _state
    with _state_guard:
        _state = None


def set_sync_registry(registry: Optional[Any]) -> None:
    """Bind the metrics registry receiving ``sync.lock_wait`` samples
    (no-op while tracing is disabled)."""
    state = _state
    if state is not None:
        state.set_registry(registry)


def sync_violations() -> Tuple[LockOrderViolation, ...]:
    """Violations recorded so far (empty when tracing is off)."""
    state = _state
    return state.violations if state is not None else ()


def sync_graph() -> Dict[str, Any]:
    """JSON-able lock-order graph snapshot (CI artifact)."""
    state = _state
    if state is None:
        return {"enabled": False, "locks": [], "acquisitions": 0,
                "edges": [], "violations": []}
    doc = state.graph_as_dict()
    doc["enabled"] = True
    return doc


def make_lock(name: str = "lock") -> Any:
    """A mutex: bare ``threading.Lock`` or a traced wrapper."""
    state = _state
    if state is None:
        return threading.Lock()
    return TracedLock(name, state)


def make_rlock(name: str = "rlock") -> Any:
    """A reentrant mutex, traced when debugging is enabled."""
    state = _state
    if state is None:
        return threading.RLock()
    return TracedRLock(name, state)


def make_condition(name: str = "condition",
                   lock: Optional[Any] = None) -> threading.Condition:
    """A condition variable over a (traced) reentrant lock."""
    state = _state
    if state is None:
        return threading.Condition(lock)
    return threading.Condition(lock if lock is not None
                               else TracedRLock(name, state))


def make_event(name: str = "event") -> Any:
    """An event: bare ``threading.Event`` or the traced wrapper."""
    state = _state
    if state is None:
        return threading.Event()
    return TracedEvent(name, state)


def make_thread(target: Any, name: str, daemon: bool = False,
                args: Tuple[Any, ...] = (),
                kwargs: Optional[Dict[str, Any]] = None
                ) -> threading.Thread:
    """The sanctioned thread constructor (CC001/CC006 seam).

    Threads are always named — anonymous ``Thread-N`` names make
    ``faulthandler`` dumps and lock-order stacks unreadable.
    """
    return threading.Thread(target=target, name=name, daemon=daemon,
                            args=args, kwargs=kwargs or {})


def safe_mp_context() -> Any:
    """An *explicit* multiprocessing context for process pools (CC005).

    ``fork`` after threads exist is undefined behavior (the child
    inherits locked locks whose owners never ran).  While the process
    is still single-threaded the fast ``fork`` method is safe and is
    kept; once any helper thread is alive the pool falls back to
    ``spawn``.  ``REPRO_MP_START`` overrides the choice.
    """
    import multiprocessing

    method = os.environ.get("REPRO_MP_START")
    if not method:
        available = multiprocessing.get_all_start_methods()
        if "fork" in available and threading.active_count() == 1:
            method = "fork"
        elif "spawn" in available:
            method = "spawn"
        else:  # exotic platforms: trust the configured default
            method = multiprocessing.get_start_method()
    return multiprocessing.get_context(method)


@dataclass
class _EnvBootstrap:
    """Import-time switch state (kept for introspection in tests)."""

    raw: Optional[str] = None
    enabled: bool = False
    errors: List[str] = field(default_factory=list)


def _bootstrap_from_env() -> _EnvBootstrap:
    boot = _EnvBootstrap(raw=os.environ.get(SYNC_DEBUG_ENV))
    if boot.raw and boot.raw != "0":
        enable_sync_debug()
        boot.enabled = True
    return boot


ENV_BOOTSTRAP = _bootstrap_from_env()
