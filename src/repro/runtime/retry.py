"""Retry policies with exponential backoff and deterministic jitter.

The supervised worker pool (:mod:`repro.eco.parallel`) retries an
output partition whose worker died — but a retry is only worth the
wait if the run can still afford it.  :class:`RetryPolicy` computes
the classic ``base * factor**attempt`` backoff schedule with a
*seeded* jitter (so test runs are reproducible) and knows how to cap a
delay against a :class:`~repro.runtime.budget.RunBudget`: a sleep that
would eat the remaining deadline is refused rather than taken.

Like the rest of :mod:`repro.runtime` the module is stdlib-only; the
actual ``sleep`` call is injectable so unit tests never block.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Optional


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff schedule for supervised task retries.

    Args:
        max_retries: retries granted per task after its first failure;
            ``0`` disables retrying entirely.
        base_delay_s: backoff before the first retry.
        factor: geometric growth of the delay between retries.
        max_delay_s: cap on any single delay (pre-jitter).
        jitter: fraction of the delay drawn uniformly at random and
            *added* on top (``0.5`` means delays land in
            ``[d, 1.5 * d]``); decorrelates herds of retries.
        seed: jitter randomization seed — the schedule is a pure
            function of ``(seed, attempt)``, so reruns are identical.
    """

    max_retries: int = 1
    base_delay_s: float = 0.25
    factor: float = 2.0
    max_delay_s: float = 30.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if self.factor < 1.0:
            raise ValueError("factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    # ------------------------------------------------------------------
    def allows(self, failures: int) -> bool:
        """True while a task that failed ``failures`` times may retry."""
        return failures <= self.max_retries

    def delay_s(self, attempt: int) -> float:
        """Jittered backoff before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("retry attempts are 1-based")
        raw = min(self.base_delay_s * self.factor ** (attempt - 1),
                  self.max_delay_s)
        if self.jitter <= 0.0 or raw <= 0.0:
            return raw
        rng = random.Random((self.seed << 8) ^ attempt)
        return raw * (1.0 + self.jitter * rng.random())

    def sleep_within_budget(self, attempt: int, budget=None,
                            sleep: Callable[[float], None] = time.sleep,
                            ) -> Optional[float]:
        """Sleep the backoff for ``attempt``, or refuse under a budget.

        When ``budget`` (a :class:`~repro.runtime.budget.RunBudget`)
        has a deadline and the delay would not leave at least as much
        time again to actually redo the work, the retry is pointless:
        returns ``None`` without sleeping.  Otherwise sleeps and
        returns the delay taken.
        """
        delay = self.delay_s(attempt)
        if budget is not None:
            left = budget.time_left()
            if left is not None and delay >= left / 2.0:
                return None
        if delay > 0.0:
            sleep(delay)
        return delay
