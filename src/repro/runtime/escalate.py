"""Adaptive SAT budget escalation with geometric backoff.

The paper's validation step is a resource-constrained SAT call.  A
fixed per-call budget wastes effort both ways: too small and hard
instances always come back ``UNKNOWN``, too large and easy instances
hog the run budget.  :class:`EscalationPolicy` starts each validation
cheap and retries with geometrically larger budgets while the solver
keeps answering ``UNKNOWN``; when even the escalated attempts keep
failing call after call, the *starting* budget is halved (de-escalation)
so a hopeless stretch of the search stops burning the aggregate budget.
A later resolved call restores the configured starting budget.
"""

from __future__ import annotations

from typing import Iterator, Optional

#: never de-escalate the starting budget below this many conflicts
MIN_INITIAL = 64


class EscalationPolicy:
    """Per-call SAT budget schedule with escalation and de-escalation.

    Args:
        initial: starting conflict budget of every validation call.
        factor: geometric growth between attempts of one call.
        ceiling: hard cap per attempt (typically the configured
            ``sat_budget``); ``None`` = uncapped.
        max_attempts: attempts per call before giving up as UNKNOWN.
        deescalate_after: consecutive unresolved calls after which the
            starting budget is halved.
    """

    def __init__(self, initial: int, factor: float = 4.0,
                 ceiling: Optional[int] = None, max_attempts: int = 3,
                 deescalate_after: int = 3):
        if initial < 1:
            raise ValueError("initial budget must be positive")
        if factor <= 1.0:
            raise ValueError("escalation factor must exceed 1")
        if max_attempts < 1:
            raise ValueError("max_attempts must be positive")
        if deescalate_after < 1:
            raise ValueError("deescalate_after must be positive")
        self.configured_initial = initial
        self.current_initial = initial
        self.factor = factor
        self.ceiling = ceiling
        self.max_attempts = max_attempts
        self.deescalate_after = deescalate_after
        self.escalations = 0
        self.deescalations = 0
        self._consecutive_failures = 0

    def attempt_budgets(self) -> Iterator[int]:
        """Budgets of one call's attempts, geometrically escalated."""
        budget = self.current_initial
        for attempt in range(self.max_attempts):
            if self.ceiling is not None:
                budget = min(budget, self.ceiling)
            if attempt > 0:
                self.escalations += 1
            yield int(budget)
            if self.ceiling is not None and budget >= self.ceiling:
                return  # escalating past the ceiling changes nothing
            budget = budget * self.factor

    def record(self, resolved: bool) -> None:
        """Feed back whether the call (all attempts) got an answer."""
        if resolved:
            self._consecutive_failures = 0
            self.current_initial = self.configured_initial
            return
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.deescalate_after:
            halved = max(MIN_INITIAL, self.current_initial // 2)
            if halved < self.current_initial:
                self.current_initial = halved
                self.deescalations += 1
            self._consecutive_failures = 0
