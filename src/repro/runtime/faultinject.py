"""Deterministic fault injection for the run-supervision layer.

Every resource-bounded step of the ECO flow *observes* a named site
before doing its work; a :class:`FaultInjector` armed for the Nth
observation of a site makes that step fail (or, for the clock site,
jump) exactly there.  This turns every degradation branch of the engine
— BDD node-limit hits, SAT budget exhaustion, solver ``UNKNOWN``
streaks, deadline expiry mid-run — into a deterministic, unit-testable
path without monkeypatching engine internals.

Sites observed by the supervisor:

* :data:`SITE_BDD` — once per BDD session the engine opens.  A fault
  raises :class:`~repro.errors.BddNodeLimitError` as if the manager
  blew its node limit immediately.
* :data:`SITE_SAT` — once per supervised SAT validation attempt.
  Payload ``"unknown"`` forces the attempt to return ``UNKNOWN``
  without solving (exercising escalation); payload ``"exhaust"``
  raises :class:`~repro.errors.SatBudgetExceeded` as if the aggregate
  conflict budget were spent.
* :data:`SITE_CLOCK` — once per wall-clock read.  Payload is a number
  of seconds the clock jumps forward (simulating a stall that blows a
  deadline, or a heartbeat that misses its per-task deadline).

Process-level sites observed by the fault-tolerant execution layer
(the chaos harness of ``docs/robustness.md``):

* :data:`SITE_WORKER` — once per task the supervised worker pool
  dispatches.  Payload :data:`FAULT_KILL` makes that task's worker die
  (``os._exit`` in a real pool; a simulated
  :class:`~repro.errors.WorkerDiedError` inline), exercising the
  retry/backoff/quarantine machinery deterministically.
* :data:`SITE_JOURNAL` — once per checkpoint-journal append.  Payload
  :data:`FAULT_CRASH` raises :class:`InjectedCrash` *before* the
  record is written (clean kill between records);
  :data:`FAULT_TORN` writes a torn half-record — bypassing the atomic
  writer, as a legacy writer or dying kernel would — and then raises,
  exercising torn-line salvage on resume.
* :data:`SITE_SYNC` — once per traced sync-primitive acquisition while
  sync debugging (:mod:`repro.runtime.sync`) is enabled.  Payload is a
  number of seconds of preemption jitter to sleep before acquiring —
  the seam the race-fuzzing harness (``repro lint --race``) uses to
  perturb thread interleavings deterministically.

An injector is stateful (it counts observations); create a fresh one
per run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Union

from repro.runtime.sync import SITE_SYNC as SITE_SYNC

SITE_BDD = "bdd.open"
SITE_SAT = "sat.call"
SITE_CLOCK = "clock"
SITE_WORKER = "worker.task"
SITE_JOURNAL = "journal.append"

#: payloads understood at :data:`SITE_SAT`
FAULT_UNKNOWN = "unknown"
FAULT_EXHAUST = "exhaust"

#: payload understood at :data:`SITE_WORKER`
FAULT_KILL = "kill"

#: payloads understood at :data:`SITE_JOURNAL`
FAULT_CRASH = "crash"
FAULT_TORN = "torn"


class InjectedCrash(RuntimeError):
    """A deterministic simulated process death.

    Deliberately *not* a :class:`~repro.errors.ReproError`: nothing in
    the library may catch and recover from it — it must unwind the
    whole run exactly like a real ``kill -9`` would end the process.
    """


@dataclass(frozen=True)
class Fault:
    """One armed fault: fire at the ``at_call``-th observation of ``site``."""

    site: str
    at_call: int
    payload: object = None


class FaultInjector:
    """Arms faults at (site, call-ordinal) pairs and reports hits.

    ``observe(site)`` increments the site's call counter and returns the
    :class:`Fault` armed at that ordinal, or ``None``.  Ordinals are
    1-based: ``arm(site, 1)`` fires on the first observation.
    """

    def __init__(self) -> None:
        self._armed: Dict[str, Dict[int, Fault]] = {}
        self._calls: Dict[str, int] = {}
        self._fired: list = []

    def arm(self, site: str, at_calls: Union[int, Iterable[int]],
            payload: object = None) -> "FaultInjector":
        """Arm a fault at one or several call ordinals; returns self."""
        if isinstance(at_calls, int):
            at_calls = (at_calls,)
        slot = self._armed.setdefault(site, {})
        for n in at_calls:
            if n < 1:
                raise ValueError("fault ordinals are 1-based")
            slot[n] = Fault(site, n, payload)
        return self

    def observe(self, site: str) -> Optional[Fault]:
        """Record one call at ``site``; return the fault due now, if any."""
        n = self._calls.get(site, 0) + 1
        self._calls[site] = n
        fault = self._armed.get(site, {}).get(n)
        if fault is not None:
            self._fired.append(fault)
        return fault

    def calls(self, site: str) -> int:
        """How many times ``site`` has been observed so far."""
        return self._calls.get(site, 0)

    @property
    def fired(self) -> tuple:
        """Faults that actually fired, in firing order."""
        return tuple(self._fired)


class MonotonicClock:
    """The default wall-clock source (``time.monotonic``)."""

    def now(self) -> float:
        return time.monotonic()


class InjectedClock:
    """A clock whose reads observe :data:`SITE_CLOCK`.

    A fault's payload (seconds) is added to a persistent offset, so an
    armed jump permanently advances this clock — exactly what a real
    mid-run stall looks like to deadline checks.
    """

    def __init__(self, base: Optional[MonotonicClock] = None,
                 injector: Optional[FaultInjector] = None):
        self._base = base or MonotonicClock()
        self._injector = injector
        self._offset = 0.0

    def now(self) -> float:
        if self._injector is not None:
            fault = self._injector.observe(SITE_CLOCK)
            if fault is not None:
                self._offset += float(fault.payload or 0.0)
        return self._base.now() + self._offset
