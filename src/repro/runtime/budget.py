"""Aggregate run budgets: deadline, SAT conflicts, BDD nodes.

A :class:`RunBudget` carries the run-level resource contract of one
``SysEco.rectify`` call: a wall-clock deadline and aggregate caps on
SAT conflicts and BDD nodes spent across *all* calls of the run (the
per-call limits of :class:`~repro.eco.config.EcoConfig` still apply on
top).  Checks raise the :class:`~repro.errors.ResourceBudgetExceeded`
subclasses; the supervisor translates those into graceful degradation
or a strict abort.

Charging is post-paid: a call is granted ``min(requested, remaining)``
up front and charged for what it actually consumed afterwards, so a
completed computation is never thrown away — the budget can overshoot
by at most one call's grant, and the *next* grant request raises.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import (
    DeadlineExceeded,
    ResourceBudgetExceeded,
    SatBudgetExceeded,
)
from repro.runtime.faultinject import MonotonicClock


class RunBudget:
    """Run-level deadline and aggregate resource caps.

    Args:
        deadline_s: wall-clock seconds the run may take; ``None``
            disables the deadline.
        total_sat_conflicts: aggregate SAT conflict cap across every
            supervised solver call of the run; ``None`` = unlimited.
        total_bdd_nodes: aggregate BDD node cap across every symbolic
            session of the run; ``None`` = unlimited.
        clock: time source (injectable for fault testing); defaults to
            a monotonic wall clock.
    """

    def __init__(self, deadline_s: Optional[float] = None,
                 total_sat_conflicts: Optional[int] = None,
                 total_bdd_nodes: Optional[int] = None,
                 clock=None):
        self.clock = clock or MonotonicClock()
        self.deadline_s = deadline_s
        self.total_sat_conflicts = total_sat_conflicts
        self.total_bdd_nodes = total_bdd_nodes
        self.sat_spent = 0
        self.bdd_spent = 0
        self._t0 = self.clock.now()

    # ------------------------------------------------------------------
    # wall clock
    # ------------------------------------------------------------------
    def elapsed(self) -> float:
        return self.clock.now() - self._t0

    def time_left(self) -> Optional[float]:
        if self.deadline_s is None:
            return None
        return self.deadline_s - self.elapsed()

    def check_deadline(self) -> None:
        left = self.time_left()
        if left is not None and left <= 0.0:
            raise DeadlineExceeded(
                f"run deadline of {self.deadline_s:.3f}s passed "
                f"({self.elapsed():.3f}s elapsed)")

    # ------------------------------------------------------------------
    # SAT conflicts
    # ------------------------------------------------------------------
    def sat_remaining(self) -> Optional[int]:
        if self.total_sat_conflicts is None:
            return None
        return self.total_sat_conflicts - self.sat_spent

    def grant_sat(self, requested: Optional[int]) -> Optional[int]:
        """Conflict budget for one solver call, capped by the remainder.

        Raises :class:`SatBudgetExceeded` when the aggregate budget is
        already spent; also enforces the deadline (every grant is a
        natural checkpoint).
        """
        self.check_deadline()
        remaining = self.sat_remaining()
        if remaining is None:
            return requested
        if remaining <= 0:
            raise SatBudgetExceeded(
                f"total SAT conflict budget of {self.total_sat_conflicts} "
                "spent")
        if requested is None:
            return remaining
        return min(requested, remaining)

    def charge_sat(self, conflicts: int) -> None:
        self.sat_spent += max(0, conflicts)

    # ------------------------------------------------------------------
    # BDD nodes
    # ------------------------------------------------------------------
    def bdd_remaining(self) -> Optional[int]:
        if self.total_bdd_nodes is None:
            return None
        return self.total_bdd_nodes - self.bdd_spent

    def grant_bdd(self, requested: Optional[int]) -> Optional[int]:
        """Node limit for one BDD session, capped by the remainder.

        Raises plain :class:`ResourceBudgetExceeded` (not
        :class:`~repro.errors.BddNodeLimitError`) when the aggregate
        node budget is spent, so the engine's shrink-and-retry handler
        for per-session blowups does not swallow it.
        """
        self.check_deadline()
        remaining = self.bdd_remaining()
        if remaining is None:
            return requested
        if remaining <= 0:
            raise ResourceBudgetExceeded(
                f"total BDD node budget of {self.total_bdd_nodes} spent")
        if requested is None:
            return remaining
        return min(requested, remaining)

    def charge_bdd(self, nodes: int) -> None:
        self.bdd_spent += max(0, nodes)
