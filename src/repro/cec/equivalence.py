"""SAT-based equivalence queries over output pairs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import NetlistError
from repro.netlist.circuit import Circuit
from repro.sat import Solver, SAT, UNSAT, UNKNOWN
from repro.sat.tseitin import CircuitEncoder


@dataclass
class EquivalenceResult:
    """Outcome of an equivalence query.

    ``equivalent`` is ``True`` / ``False`` / ``None`` (budget exhausted).
    On ``False``, ``counterexample`` maps primary inputs to values and
    ``failing_outputs`` lists the ports that differ under it.
    """

    equivalent: Optional[bool]
    counterexample: Optional[Dict[str, bool]] = None
    failing_outputs: Tuple[str, ...] = ()

    def __bool__(self) -> bool:
        return self.equivalent is True


class PairwiseChecker:
    """One incremental SAT instance comparing two circuits.

    Encodes both circuits once over shared input variables and exposes
    per-output-pair queries through assumptions, so checking many pairs
    reuses all learned clauses.  An optional
    :class:`~repro.sat.cnfcache.CnfCache` replays recorded CNF
    templates instead of re-walking the circuits.
    """

    def __init__(self, left: Circuit, right: Circuit, cache=None):
        self.left = left
        self.right = right
        self.solver = Solver()
        encoder = CircuitEncoder(self.solver)
        shared = {}
        self.input_vars: Dict[str, int] = {}
        if cache is not None:
            left_map = cache.encode(self.solver, left)
        else:
            left_map = encoder.encode(left)
        for n in left.inputs:
            shared[n] = left_map[n]
        if cache is not None:
            right_map = cache.encode(self.solver, right,
                                     input_vars=shared)
        else:
            right_map = encoder.encode(right, input_vars=shared)
        for n in set(left.inputs) | set(right.inputs):
            self.input_vars[n] = shared.get(n, right_map.get(n))
        self._diff_var: Dict[str, int] = {}
        self._encoder = encoder
        self._left_map = left_map
        self._right_map = right_map

    def diff_literal(self, port: str) -> int:
        """Solver literal asserting 'port differs between the sides'."""
        if port not in self._diff_var:
            if port not in self.left.outputs or port not in self.right.outputs:
                raise NetlistError(f"output {port!r} missing on one side")
            a = self._left_map[self.left.outputs[port]]
            b = self._right_map[self.right.outputs[port]]
            self._diff_var[port] = self._encoder._encode_xor2(a, b)
        return self._diff_var[port]

    def check_pair(self, port: str,
                   conflict_budget: Optional[int] = None) -> EquivalenceResult:
        """Is one output pair equivalent?"""
        lit = self.diff_literal(port)
        status = self.solver.solve(assumptions=[lit],
                                   conflict_budget=conflict_budget)
        if status == UNSAT:
            return EquivalenceResult(True)
        if status == UNKNOWN:
            return EquivalenceResult(None)
        cex = self._extract_inputs()
        return EquivalenceResult(False, counterexample=cex,
                                 failing_outputs=(port,))

    def _extract_inputs(self) -> Dict[str, bool]:
        model = self.solver.model()
        return {
            n: model.get(v, False) for n, v in self.input_vars.items()
        }


def check_output_pair(left: Circuit, right: Circuit, port: str,
                      conflict_budget: Optional[int] = None
                      ) -> EquivalenceResult:
    """One-shot equivalence query for a single output port."""
    return PairwiseChecker(left, right).check_pair(
        port, conflict_budget=conflict_budget)


def check_equivalence(left: Circuit, right: Circuit,
                      outputs: Optional[Sequence[str]] = None,
                      conflict_budget: Optional[int] = None
                      ) -> EquivalenceResult:
    """Full equivalence over shared (or given) output ports."""
    if outputs is None:
        outputs = [p for p in left.outputs if p in right.outputs]
    if not outputs:
        raise NetlistError("no shared outputs to compare")
    checker = PairwiseChecker(left, right)
    diff_lits = [checker.diff_literal(p) for p in outputs]
    # one auxiliary 'any difference' variable
    any_var = checker.solver.new_var()
    checker.solver.add_clause([-any_var] + diff_lits)
    for lit in diff_lits:
        checker.solver.add_clause([any_var, -lit])
    status = checker.solver.solve(assumptions=[any_var],
                                  conflict_budget=conflict_budget)
    if status == UNSAT:
        return EquivalenceResult(True)
    if status == UNKNOWN:
        return EquivalenceResult(None)
    model = checker.solver.model()
    failing = tuple(
        p for p, lit in zip(outputs, diff_lits) if model.get(lit, False)
    )
    return EquivalenceResult(False,
                             counterexample=checker._extract_inputs(),
                             failing_outputs=failing)


def _output_words(circuit: Circuit, words: Dict[str, int],
                  mask: int) -> Dict[str, int]:
    """Output-port values of one multi-word batch (compiled plan)."""
    from repro.netlist.simulate import compiled_plan

    plan = compiled_plan(circuit)
    values = plan.run({n: words[n] for n in circuit.inputs}, mask)
    return {p: values[plan.index[net]]
            for p, net in circuit.outputs.items()}


def nonequivalent_outputs(left: Circuit, right: Circuit,
                          outputs: Optional[Sequence[str]] = None,
                          sim_rounds: int = 8) -> List[str]:
    """All output ports on which the two circuits disagree.

    This is the work-list of the ECO flow (Section 5.2): the engine
    iterates over corresponding output pairs that remain non-equivalent.

    ``sim_rounds`` random 64-pattern words pre-classify the ports: a
    port whose simulated values differ is *exactly* non-equivalent (the
    differing pattern is a counterexample), so only simulation-equal
    ports pay a SAT query.  ``sim_rounds=0`` disables the pre-pass.
    """
    import random

    from repro.netlist.simulate import batch_mask

    if outputs is None:
        outputs = [p for p in left.outputs if p in right.outputs]
    bad = set()
    todo = list(outputs)
    if sim_rounds:
        rng = random.Random(2019)
        mask = batch_mask(sim_rounds)
        # shared words keyed by sorted name: input order independent
        words = {n: rng.getrandbits(64 * sim_rounds)
                 for n in sorted(set(left.inputs) | set(right.inputs))}
        lvals = _output_words(left, words, mask)
        rvals = _output_words(right, words, mask)
        todo = []
        for port in outputs:
            if lvals[port] != rvals[port]:
                bad.add(port)
            else:
                todo.append(port)
    if todo:
        checker = PairwiseChecker(left, right)
        for port in todo:
            if checker.check_pair(port).equivalent is False:
                bad.add(port)
    return [p for p in outputs if p in bad]
