"""SAT sweeping: merge functionally equivalent nets.

Random simulation partitions nets into candidate equivalence classes;
SAT confirms each candidate against its class representative before the
merge.  Sweeping is used twice in this library: as the strongest pass
of the heavy synthesis script (producing the logic sharing that makes
industrial ECOs hard), and as the patch-input refinement step of the
ECO flow ('a sweeping technique that reuses already existing current
implementation logic', Section 5.2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.netlist.circuit import Circuit
from repro.netlist.gate import WORD_MASK
from repro.netlist.simulate import signature
from repro.netlist.traverse import topological_order, transitive_fanin
from repro.sat import Solver, SAT, UNSAT
from repro.sat.tseitin import CircuitEncoder


def equivalence_classes(circuit: Circuit, rounds: int = 4,
                        seed: int = 2019) -> List[List[str]]:
    """Candidate equivalence classes of nets by simulation signature.

    Classes are ordered topologically (representative first) and only
    classes with two or more members are returned.  Signatures are
    necessary-but-not-sufficient evidence; confirm with SAT before
    merging.
    """
    sigs = signature(circuit, rounds=rounds, seed=seed)
    topo_pos: Dict[str, int] = {}
    for i, n in enumerate(circuit.inputs):
        topo_pos[n] = i
    base = len(circuit.inputs)
    for i, n in enumerate(topological_order(circuit)):
        topo_pos[n] = base + i
    groups: Dict[int, List[str]] = {}
    for net, sig in sigs.items():
        groups.setdefault(sig, []).append(net)
    classes = []
    for members in groups.values():
        if len(members) > 1:
            members.sort(key=lambda n: topo_pos[n])
            classes.append(members)
    classes.sort(key=lambda ms: topo_pos[ms[0]])
    return classes


def sweep_equivalent_nets(circuit: Circuit, rounds: int = 4,
                          seed: int = 2019,
                          conflict_budget: Optional[int] = 10000,
                          ) -> Tuple[Circuit, int]:
    """Merge SAT-confirmed equivalent nets; returns (circuit, merges).

    The input circuit is not modified; a swept copy is returned.  Dead
    gates left by the merges are removed.
    """
    work = circuit.copy()
    classes = equivalence_classes(work, rounds=rounds, seed=seed)
    if not classes:
        return work, 0

    solver = Solver()
    encoder = CircuitEncoder(solver)
    varmap = encoder.encode(work)

    merges = 0
    for members in classes:
        rep = members[0]
        for other in members[1:]:
            neq = encoder._encode_xor2(varmap[rep], varmap[other])
            status = solver.solve(assumptions=[neq],
                                  conflict_budget=conflict_budget)
            if status == UNSAT:
                # rep precedes other topologically, so redirecting the
                # sinks of other to rep cannot create a cycle
                work.replace_net(other, rep)
                merges += 1
    if merges:
        prune_dangling(work)
    return work, merges


def prune_dangling(circuit: Circuit) -> int:
    """Remove gates whose nets reach no output; returns removal count."""
    live = transitive_fanin(circuit, circuit.output_nets())
    dead = [g for g in circuit.gates if g not in live]
    for g in dead:
        del circuit.gates[g]
    return len(dead)
