"""Miter construction.

A miter of two circuits shares their primary inputs by name, XORs every
corresponding output pair and ORs the differences into a single output
``diff`` that is satisfiable iff the circuits disagree somewhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.errors import NetlistError
from repro.netlist.circuit import Circuit
from repro.netlist.gate import GateType
from repro.netlist.traverse import topological_order


@dataclass
class MiterInfo:
    """The miter circuit plus bookkeeping for its internals."""

    circuit: Circuit
    #: net (in the miter) computing ``out_A xor out_B`` per output port
    diff_nets: Dict[str, str] = field(default_factory=dict)
    #: original net name -> miter net name, per side
    left_map: Dict[str, str] = field(default_factory=dict)
    right_map: Dict[str, str] = field(default_factory=dict)


def _import_side(miter: Circuit, side: Circuit, tag: str) -> Dict[str, str]:
    """Copy the gates of one side into the miter with renamed nets."""
    mapping: Dict[str, str] = {}
    for name in side.inputs:
        if not miter.has_net(name):
            raise NetlistError(f"miter input {name!r} missing")
        mapping[name] = name
    for gname in topological_order(side):
        gate = side.gates[gname]
        new_name = f"{tag}${gname}"
        miter.add_gate(new_name, gate.gtype,
                       [mapping[f] for f in gate.fanins])
        mapping[gname] = new_name
    return mapping


def build_miter(left: Circuit, right: Circuit,
                outputs: Optional[Sequence[str]] = None,
                name: str = "miter") -> MiterInfo:
    """Build a miter over the shared outputs of two circuits.

    Args:
        left: typically the current implementation ``C``.
        right: typically the revised specification ``C'``.
        outputs: output ports to compare; defaults to the ports present
            in both circuits (which must be non-empty).
        name: name for the miter circuit.

    Returns:
        :class:`MiterInfo` whose circuit has a single output ``diff``.
    """
    if outputs is None:
        outputs = [p for p in left.outputs if p in right.outputs]
    if not outputs:
        raise NetlistError("no shared outputs to compare")
    for p in outputs:
        if p not in left.outputs or p not in right.outputs:
            raise NetlistError(f"output {p!r} missing on one side")

    miter = Circuit(name)
    seen = set()
    for n in list(left.inputs) + [i for i in right.inputs]:
        if n not in seen:
            miter.add_input(n)
            seen.add(n)

    left_map = _import_side(miter, left, "l")
    right_map = _import_side(miter, right, "r")

    diff_nets: Dict[str, str] = {}
    for p in outputs:
        ln = left_map[left.outputs[p]]
        rn = right_map[right.outputs[p]]
        diff_nets[p] = miter.add_gate(f"diff${p}", GateType.XOR, [ln, rn])
    if len(diff_nets) == 1:
        top = next(iter(diff_nets.values()))
    else:
        top = miter.add_gate("diff$any", GateType.OR, list(diff_nets.values()))
    miter.set_output("diff", top)
    return MiterInfo(circuit=miter, diff_nets=diff_nets,
                     left_map=left_map, right_map=right_map)
