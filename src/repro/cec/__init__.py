"""Combinational equivalence checking (CEC).

Provides miter construction, output-pair equivalence queries with
counterexamples, and SAT sweeping (simulation-guided equivalent-net
merging).  The ECO engine uses CEC to find the non-equivalent output
pairs that drive rectification, to harvest error-domain samples, and to
validate candidate rewire operations on the full input domain.
"""

from repro.cec.miter import build_miter, MiterInfo
from repro.cec.equivalence import (
    EquivalenceResult,
    check_equivalence,
    check_output_pair,
    nonequivalent_outputs,
)
from repro.cec.sweep import sweep_equivalent_nets, equivalence_classes

__all__ = [
    "build_miter",
    "MiterInfo",
    "EquivalenceResult",
    "check_equivalence",
    "check_output_pair",
    "nonequivalent_outputs",
    "sweep_equivalent_nets",
    "equivalence_classes",
]
