"""Candidate rewiring nets: structural filter + utility ranking (Sec. 4.3).

For a rectification point at pin ``q``, candidate rewiring nets are
drawn from both the current implementation ``C`` and the synthesized
specification ``C'``.  A net ``s`` passes the *structural filter* when
the input support of the revised output ``f'`` contains the transitive
fanin of ``s``, and must not create a combinational cycle when wired to
``q``.  Candidates are then ranked by the *rectification utility*

    | { x in E : q(x) != s(x) } | / |E|

evaluated on the sampled error domain — the more the candidate differs
from the current driver across the errors, the likelier it flips them.
The net currently driving the pin is always included as the *trivial*
candidate (utility 0, first preference) so an over-approximated
point-set size collapses gracefully (Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Set

from repro.bdd.manager import FALSE
from repro.lint.patch_rules import PatchScreen
from repro.netlist.circuit import Circuit, Pin
from repro.eco.config import EcoConfig
from repro.eco.sampling import SamplingDomain
from repro.obs.trace import ensure_trace


@dataclass(frozen=True)
class RewireCandidate:
    """One candidate rewiring net for a rectification point."""

    net: str
    from_spec: bool
    utility: float
    #: function of the net in the sampling domain (BDD node over z)
    z_function: int
    #: logic level of the net in its home circuit (level-aware scoring)
    level: int = 0
    trivial: bool = False


class RewiringContext:
    """Per-failing-output state shared across rectification points.

    Precomputes, once per output: the sampled error region ``E``,
    sampling-domain functions of every net of ``C`` and ``C'``, support
    masks, and the spec-side support of the failing output.
    """

    def __init__(self, impl: Circuit, spec: Circuit, port: str,
                 domain: SamplingDomain, config: EcoConfig,
                 impl_z: Mapping[str, int], spec_z: Mapping[str, int],
                 impl_supports: Mapping[str, int],
                 spec_supports: Mapping[str, int],
                 impl_levels: Mapping[str, int],
                 spec_levels: Mapping[str, int],
                 ports: Optional[Sequence[str]] = None,
                 trace=None):
        self.impl = impl
        self.spec = spec
        self.port = port
        self.ports = list(ports) if ports else [port]
        self.domain = domain
        self.config = config
        self.trace = ensure_trace(trace)
        self.impl_z = impl_z
        self.spec_z = spec_z
        self.impl_supports = impl_supports
        self.spec_supports = spec_supports
        self.impl_levels = impl_levels
        self.spec_levels = spec_levels

        # joint context: the error region is the union of the per-port
        # differences and the structural filter uses the union support
        manager = domain.manager
        self.spec_out_net = spec.outputs[port]
        self.spec_support_mask = 0
        diff = 0  # FALSE
        for p in self.ports:
            snet = spec.outputs[p]
            self.spec_support_mask |= spec_supports[snet]
            diff = manager.or_(diff, manager.xor(
                impl_z[impl.outputs[p]], spec_z[snet]))
        self.error_region = manager.and_(diff, domain.valid_codes())
        self.error_count = max(1, domain.count_in_domain(diff))

        # static patch screen: shared sink adjacency and memoized fanout
        # cones back the candidate filter here and the engine's pre-SAT
        # legality check
        self.screen = PatchScreen(
            impl, spec=spec, supports=impl_supports,
            spec_support_mask=self.spec_support_mask)

    def utility(self, driver_z: int, candidate_z: int) -> float:
        """The Section 4.3 ratio on the sampled error domain."""
        manager = self.domain.manager
        differs = manager.xor(driver_z, candidate_z)
        hits = manager.satcount(
            manager.and_(differs, self.error_region),
            num_vars=max(self.domain.z_vars) + 1)
        return hits / self.error_count

    def candidates_for_pin(self, pin: Pin,
                           forbidden: Optional[Set[str]] = None
                           ) -> List[RewireCandidate]:
        """Ordered candidate rewiring nets for one rectification point.

        ``forbidden`` removes implementation nets that other pins of the
        same point-set make unusable (cycle interactions).
        """
        with self.trace.span("rewiring.candidates", pin=repr(pin)) as sp:
            out = self._candidates_for_pin(pin, forbidden)
            sp.tag(candidates=len(out))
            return out

    def _candidates_for_pin(self, pin: Pin,
                            forbidden: Optional[Set[str]] = None
                            ) -> List[RewireCandidate]:
        config = self.config
        manager = self.domain.manager
        driver = self.impl.pin_driver(pin)
        driver_z = self.impl_z[driver]

        # nets whose fanout cone includes the pin's gate would cycle;
        # the screen memoizes the cone so repeated pins are O(1)
        if pin.is_output_port:
            unreachable: Set[str] = set()
        else:
            unreachable = self.screen.fanout_cone(pin.owner)

        scored: List[RewireCandidate] = []
        if config.use_impl_nets:
            for net in self.impl.nets():
                if net == driver or net in unreachable:
                    continue
                if forbidden and net in forbidden:
                    continue
                if self.impl_supports[net] & ~self.spec_support_mask:
                    continue  # structural filter
                scored.append(RewireCandidate(
                    net=net, from_spec=False,
                    utility=self.utility(driver_z, self.impl_z[net]),
                    z_function=self.impl_z[net],
                    level=self.impl_levels[net]))
        if config.use_spec_nets:
            for net in self.spec.gates:
                if self.spec_supports[net] & ~self.spec_support_mask:
                    continue
                scored.append(RewireCandidate(
                    net=net, from_spec=True,
                    utility=self.utility(driver_z, self.spec_z[net]),
                    z_function=self.spec_z[net],
                    level=self.spec_levels[net]))

        if config.utility_ordering:
            scored.sort(key=lambda c: (-c.utility, c.from_spec, c.level))
        else:
            scored.sort(key=lambda c: (c.from_spec, c.net))
        kept = scored[:config.max_rewire_candidates]

        # guarantee completeness for output-port pins: the revised
        # function itself must be reachable as a candidate
        if pin.is_output_port and config.use_spec_nets:
            if not any(c.from_spec and c.net == self.spec_out_net
                       for c in kept):
                kept.append(RewireCandidate(
                    net=self.spec_out_net, from_spec=True,
                    utility=self.utility(driver_z,
                                         self.spec_z[self.spec_out_net]),
                    z_function=self.spec_z[self.spec_out_net],
                    level=self.spec_levels[self.spec_out_net]))

        trivial = RewireCandidate(
            net=driver, from_spec=False, utility=0.0,
            z_function=driver_z,
            level=self.impl_levels[driver], trivial=True)
        return [trivial] + kept
