"""Feasible rectification point-sets: the ``H(t)`` computation (Sec. 4.2).

For a failing output with candidate sink pins ``{q_0 ... q_{M-1}}`` and
at most ``m`` rectification points, parametric variables ``t_i`` (one
``ceil(log2 M)``-bit word per point, big-endian as in the paper) select
a pin per point.  The netlist is augmented *symbolically*: evaluating
the output cone over BDDs, the operand entering a candidate pin ``q_j``
is wrapped as::

    ite(sel_j,  data1_j,  original)
    sel_j   = t_1^j | ... | t_m^j
    data1_j = (t_1^j -> y_1) & ... & (t_m^j -> y_m)

which is exactly the multiplexer construction of Figure 2.  The
characteristic function of all feasible point-sets is then

    H(t) = forall z exists y ( h(z, y, t) == f'(g(z)) )  &  valid(t)

computed in the sampling domain (``x`` overloaded with ``g(z)``), and
its prime cubes seed explicit candidate point-sets.
"""

from __future__ import annotations

import itertools
import math
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import EcoError
from repro.bdd.manager import BddManager, FALSE, TRUE
from repro.bdd.netbridge import apply_gate
from repro.bdd.primes import enumerate_primes
from repro.netlist.circuit import Circuit, Pin
from repro.netlist.traverse import topological_order, transitive_fanin
from repro.eco.sampling import SamplingDomain
from repro.obs.trace import ensure_trace


class PointSelector:
    """Allocates and decodes the ``t`` variables of the selection."""

    def __init__(self, manager: BddManager, num_points: int, num_pins: int):
        if num_pins < 1:
            raise EcoError("no candidate pins")
        self.manager = manager
        self.num_points = num_points
        self.num_pins = num_pins
        self.bits = max(1, math.ceil(math.log2(num_pins))) if num_pins > 1 else 1
        #: t_vars[i] = variable indices of point i's word, MSB first
        self.t_vars: List[List[int]] = [
            [manager.add_var() for _ in range(self.bits)]
            for _ in range(num_points)
        ]
        self._minterm_cache: Dict[Tuple[int, int], int] = {}

    def all_t_vars(self) -> List[int]:
        return [v for word in self.t_vars for v in word]

    def minterm(self, point: int, pin_index: int) -> int:
        """BDD of ``t_point ^ pin_index`` (big-endian code minterm)."""
        key = (point, pin_index)
        hit = self._minterm_cache.get(key)
        if hit is not None:
            return hit
        word = self.t_vars[point]
        assignment = {
            word[b]: bool((pin_index >> (self.bits - 1 - b)) & 1)
            for b in range(self.bits)
        }
        node = self.manager.cube(assignment)
        self._minterm_cache[key] = node
        return node

    def selection(self, pin_index: int) -> int:
        """``sel_j``: pin ``j`` chosen by any point."""
        m = self.manager
        acc = FALSE
        for i in range(self.num_points):
            acc = m.or_(acc, self.minterm(i, pin_index))
        return acc

    def data1(self, pin_index: int, y_nodes: Sequence[int]) -> int:
        """``data1_j``: conjunction of ``t_i^j -> y_i``."""
        m = self.manager
        acc = TRUE
        for i in range(self.num_points):
            acc = m.and_(acc, m.implies(self.minterm(i, pin_index),
                                        y_nodes[i]))
        return acc

    def validity(self) -> int:
        """Every point's code addresses an existing pin (< num_pins)."""
        m = self.manager
        acc = TRUE
        for i in range(self.num_points):
            word = FALSE
            for j in range(self.num_pins):
                word = m.or_(word, self.minterm(i, j))
            acc = m.and_(acc, word)
        return acc

    def decode_cube(self, literals: Mapping[int, bool],
                    point: int) -> List[int]:
        """Pin indices admissible for ``point`` under a prime cube.

        A prime cube constrains some bits of the point's word; every pin
        index consistent with those bits (and in range) is admissible.
        """
        word = self.t_vars[point]
        admissible = []
        for j in range(self.num_pins):
            ok = True
            for b in range(self.bits):
                bit = bool((j >> (self.bits - 1 - b)) & 1)
                want = literals.get(word[b])
                if want is not None and want != bit:
                    ok = False
                    break
            if ok:
                admissible.append(j)
        return admissible


def evaluate_with_pin_overrides(
        circuit: Circuit,
        manager: BddManager,
        input_functions: Mapping[str, int],
        root_net: str,
        override) -> int:
    """BDD of ``root_net`` with per-pin operand transformation.

    ``override(pin, operand_node)`` may replace the BDD flowing into any
    sink pin; this is how both the mux augmentation (``H(t)``) and the
    free-input composition function (``h(x, y)``) are realized without
    editing the netlist.
    """
    return evaluate_roots_with_pin_overrides(
        circuit, manager, input_functions, [root_net], override)[root_net]


def evaluate_roots_with_pin_overrides(
        circuit: Circuit,
        manager: BddManager,
        input_functions: Mapping[str, int],
        root_nets: Sequence[str],
        override) -> Dict[str, int]:
    """Like :func:`evaluate_with_pin_overrides` over several roots.

    The union of the cones is evaluated once, so joint multi-output
    computations share all intermediate BDDs.
    """
    values: Dict[str, int] = {}
    for name in circuit.inputs:
        if name in input_functions:
            values[name] = input_functions[name]
    for gname in topological_order(circuit, roots=list(root_nets)):
        gate = circuit.gates[gname]
        operands = []
        for idx, fanin in enumerate(gate.fanins):
            node = values[fanin]
            node = override(Pin.gate(gname, idx), node)
            operands.append(node)
        values[gname] = apply_gate(manager, gate.gtype, operands)
    return {net: values[net] for net in root_nets}


def compute_h_function(impl: Circuit, port: str, domain: SamplingDomain,
                       pins: Sequence[Pin], y_nodes: Sequence[int],
                       selector: Optional[PointSelector] = None) -> int:
    """Sampled composition / augmented function at one output.

    With ``selector`` None, each listed pin is hard-replaced by its
    ``y`` node — the composition function ``h(z, y)`` of Section 4.4
    (``pins`` and ``y_nodes`` then correspond 1:1).

    With a ``selector``, every pin is augmented with the parameterized
    multiplexer — the function ``h(z, y, t)`` of Section 4.2.
    """
    return compute_h_functions(impl, [port], domain, pins, y_nodes,
                               selector=selector)[port]


def compute_h_functions(impl: Circuit, ports: Sequence[str],
                        domain: SamplingDomain, pins: Sequence[Pin],
                        y_nodes: Sequence[int],
                        selector: Optional[PointSelector] = None
                        ) -> Dict[str, int]:
    """Joint version of :func:`compute_h_function` over several outputs.

    The union cone is evaluated once with the shared overrides; the
    result maps each port to its (augmented) composition function —
    the basis of the multi-output rectification extension.
    """
    manager = domain.manager
    pin_index = {pin: i for i, pin in enumerate(pins)}

    if selector is None:
        def override(pin: Pin, node: int) -> int:
            idx = pin_index.get(pin)
            return y_nodes[idx] if idx is not None else node
    else:
        sel_cache: Dict[int, Tuple[int, int]] = {}

        def gadget(j: int) -> Tuple[int, int]:
            hit = sel_cache.get(j)
            if hit is None:
                hit = (selector.selection(j), selector.data1(j, y_nodes))
                sel_cache[j] = hit
            return hit

        def override(pin: Pin, node: int) -> int:
            idx = pin_index.get(pin)
            if idx is None:
                return node
            sel, data1 = gadget(idx)
            return manager.ite(sel, data1, node)

    roots = [impl.outputs[p] for p in ports]
    values = evaluate_roots_with_pin_overrides(
        impl, manager, domain.input_functions, roots, override)
    out: Dict[str, int] = {}
    for port in ports:
        value = values[impl.outputs[port]]
        # an output-port pin among the candidates overrides the value
        port_pin = Pin.output(port)
        if port_pin in pin_index:
            value = override(port_pin, value)
        out[port] = value
    return out


def feasible_point_sets(impl: Circuit, port: str, domain: SamplingDomain,
                        candidate_pins: Sequence[Pin],
                        spec_value: int, num_points: int,
                        prime_limit: int = 8,
                        pointset_limit: int = 12,
                        checkpoint: Optional[Callable[[], None]] = None,
                        trace=None) -> List[Tuple[Pin, ...]]:
    """Candidate rectification point-sets for one failing output.

    Returns up to ``pointset_limit`` distinct pin tuples (deduplicated
    as sets, smaller sets first), derived from the prime cubes of
    ``H(t)`` computed in the sampling domain.  An empty list means no
    point-set of size ``num_points`` over these pins can rectify the
    sampled behaviour — callers grow ``num_points`` or widen the pins.

    ``checkpoint``, when given, is invoked before the symbolic
    computation and once per expanded prime cube; the run supervisor
    passes its deadline check here.  ``trace`` records the enumeration
    as a ``points.enumerate`` span.
    """
    return feasible_point_sets_joint(
        impl, {port: spec_value}, domain, candidate_pins, num_points,
        prime_limit=prime_limit, pointset_limit=pointset_limit,
        checkpoint=checkpoint, trace=trace)


def feasible_point_sets_joint(impl: Circuit,
                              spec_values: Mapping[str, int],
                              domain: SamplingDomain,
                              candidate_pins: Sequence[Pin],
                              num_points: int,
                              prime_limit: int = 8,
                              pointset_limit: int = 12,
                              checkpoint: Optional[Callable[[], None]] = None,
                              trace=None) -> List[Tuple[Pin, ...]]:
    """Point-sets that rectify *all* given outputs simultaneously.

    The joint characteristic function conjoins the per-output equality
    inside the ``exists y`` — the same rectification functions must fix
    every output — addressing the paper's note that the single-output
    view 'may occasionally overlook candidates that are more economical
    for multiple outputs'.
    """
    with ensure_trace(trace).span(
            "points.enumerate", outputs=",".join(spec_values),
            m=num_points, pins=len(candidate_pins)) as _span:
        result = _feasible_point_sets_joint(
            impl, spec_values, domain, candidate_pins, num_points,
            prime_limit, pointset_limit, checkpoint)
        _span.tag(point_sets=len(result))
        return result


def _feasible_point_sets_joint(impl: Circuit,
                               spec_values: Mapping[str, int],
                               domain: SamplingDomain,
                               candidate_pins: Sequence[Pin],
                               num_points: int,
                               prime_limit: int,
                               pointset_limit: int,
                               checkpoint: Optional[Callable[[], None]],
                               ) -> List[Tuple[Pin, ...]]:
    if checkpoint is not None:
        checkpoint()
    manager = domain.manager
    ports = list(spec_values)
    y_vars = [manager.add_var() for _ in range(num_points)]
    y_nodes = [manager.var(v) for v in y_vars]
    selector = PointSelector(manager, num_points, len(candidate_pins))

    h_map = compute_h_functions(impl, ports, domain, candidate_pins,
                                y_nodes, selector=selector)
    eq = TRUE
    for port in ports:
        eq = manager.and_(eq, manager.xnor(h_map[port],
                                           spec_values[port]))
    h_t = manager.forall(manager.exists(eq, y_vars), domain.z_vars)
    h_t = manager.and_(h_t, selector.validity())
    if h_t == FALSE:
        return []

    seen: set = set()
    results: List[Tuple[Pin, ...]] = []
    for prime in enumerate_primes(manager, h_t, limit=prime_limit):
        if checkpoint is not None:
            checkpoint()
        literals = prime.literals
        per_point = [selector.decode_cube(literals, i)
                     for i in range(num_points)]
        if any(not adm for adm in per_point):
            continue
        for combo in itertools.islice(
                itertools.product(*per_point), 0, 64):
            key = frozenset(combo)
            if key in seen:
                continue
            seen.add(key)
            results.append(tuple(candidate_pins[j] for j in sorted(key)))
            if len(results) >= pointset_limit:
                break
        if len(results) >= pointset_limit:
            break
    results.sort(key=len)
    return results
