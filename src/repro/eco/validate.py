"""Full-domain validation of sampled rewire candidates (Section 5.2).

Reasoning in the sampling domain over-approximates, so every rewire
choice is re-checked exactly before it is committed: the operation is
applied to a scratch copy of the implementation and the affected
outputs are compared against the specification with a resource-
constrained SAT solver.  The check is *global*: a candidate is rejected
when it damages any currently-correct output, and the number of failing
outputs it fixes is reported so the engine can favor multi-output
repairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import PatchStructureError
from repro.netlist import simd
from repro.netlist.circuit import Circuit, Pin
from repro.netlist.gate import WORD_BITS
from repro.netlist.simulate import batch_mask, compiled_plan, eval_opcode
from repro.netlist.traverse import (
    dependent_outputs,
    topological_order,
    transitive_fanout,
)
from repro.cec.equivalence import PairwiseChecker
from repro.eco.patch import RewireOp

CLONE_PREFIX = "eco$"


def assert_patch_structure(patched: Circuit,
                           ops: Sequence[RewireOp]) -> None:
    """Post-commit structural assertion on a patched circuit.

    Runs the error tier of the netlist analyzer
    (:func:`repro.lint.netlist_rules.lint_netlist` with ``deep=False``)
    on the circuit a patch produced and raises
    :class:`~repro.errors.PatchStructureError` carrying the diagnostics
    when any error-severity finding exists.  The pre-SAT screen should
    make this unreachable; it is the engine's safety net against screen
    bugs, not a user-facing validator.
    """
    from repro.lint.netlist_rules import lint_netlist

    report = lint_netlist(patched, deep=False)
    bad = report.errors
    if bad:
        raise PatchStructureError(
            f"patch of {len(ops)} rewire op(s) left circuit "
            f"{patched.name!r} ill-formed: "
            + "; ".join(d.render() for d in bad),
            diagnostics=bad,
        )


def topological_constraint_ok(impl: Circuit, pins: Sequence[Pin]) -> bool:
    """The Section 3.3 restriction: no path connects any pair of pins."""
    gate_pins = [p for p in pins if not p.is_output_port]
    owners = {p.owner for p in gate_pins}
    for pin in gate_pins:
        downstream = transitive_fanout(impl, [pin.owner])
        downstream.discard(pin.owner)
        if downstream & owners:
            return False
    return True


def rewire_acyclic(impl: Circuit, ops: Sequence[RewireOp]) -> bool:
    """No implementation-sourced rewire may close a combinational cycle.

    Checked jointly: with several simultaneous rewires a cycle can pass
    through more than one new edge, so the test walks the fanout
    relation augmented with all proposed edges at once.
    """
    extra_edges: Dict[str, Set[str]] = {}
    for op in ops:
        if op.from_spec or op.pin.is_output_port:
            continue
        extra_edges.setdefault(op.source_net, set()).add(op.pin.owner)

    if not extra_edges:
        return True

    fanout: Dict[str, List[str]] = {}
    for g in impl.gates.values():
        for i, f in enumerate(g.fanins):
            # skip edges that the rewires remove
            if any(op.pin == Pin.gate(g.name, i) for op in ops):
                continue
            fanout.setdefault(f, []).append(g.name)
    for src, dsts in extra_edges.items():
        fanout.setdefault(src, []).extend(dsts)

    # cycle check via DFS from the new edges' sources
    state: Dict[str, int] = {}

    def dfs(net: str) -> bool:
        stack = [(net, iter(fanout.get(net, ())))]
        state[net] = 0
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                st = state.get(nxt)
                if st == 0:
                    return False  # back edge: cycle
                if st is None:
                    state[nxt] = 0
                    stack.append((nxt, iter(fanout.get(nxt, ()))))
                    advanced = True
                    break
            if not advanced:
                state[node] = 1
                stack.pop()
        return True

    for src in extra_edges:
        if state.get(src) is None:
            if not dfs(src):
                return False
    return True


def clone_spec_cone(work: Circuit, spec: Circuit, net: str,
                    clone_map: Dict[str, str]) -> str:
    """Instantiate the cone of a specification net inside ``work``.

    Primary inputs are shared by name; previously cloned gates (tracked
    in ``clone_map``) are reused, so overlapping cones from successive
    rewires share logic.  Returns the name of the clone of ``net``.
    """
    if net in spec.inputs:
        return net
    if net in clone_map:
        return clone_map[net]
    for gname in topological_order(spec, roots=[net]):
        if gname in clone_map:
            continue
        gate = spec.gates[gname]
        fanins = [
            f if f in spec.inputs else clone_map[f] for f in gate.fanins
        ]
        clone_name = f"{CLONE_PREFIX}{gname}"
        while work.has_net(clone_name):
            clone_name += "_"
        work.add_gate(clone_name, gate.gtype, fanins)
        clone_map[gname] = clone_name
    return clone_map[net]


def apply_rewires(work: Circuit, spec: Circuit, ops: Sequence[RewireOp],
                  clone_map: Dict[str, str]) -> Set[str]:
    """Apply rewire operations in place; returns newly cloned gate names.

    ``clone_map`` persists across calls so later rewires reuse earlier
    clones.
    """
    before = set(clone_map.values())
    for op in ops:
        if op.from_spec:
            source = clone_spec_cone(work, spec, op.source_net, clone_map)
        else:
            source = op.source_net
        work.rewire_pin(op.pin, source)
    return set(clone_map.values()) - before


class SimulationFilter:
    """Cheap full-pattern screen applied before SAT validation.

    Sampling-domain reasoning over-approximates, so many rewiring
    choices are false positives.  Before paying for a SAT proof, the
    candidate is re-simulated on a few 64-pattern words (the error
    samples plus fresh random words): any output mismatch on any
    pattern disqualifies it immediately.  Passing the screen is
    necessary but not sufficient — SAT still gives the final word.

    All words are packed into one multi-word batch and evaluated
    through the circuits' compiled plans once at construction; each
    candidate is then screened as a *value overlay* — only gates
    downstream of a rewired pin are re-evaluated, on plain
    integer-indexed values.

    When the numpy backend is active, :meth:`passes_batch` screens a
    whole batch of candidates as one ``(net, candidate, word)`` array
    evaluation through a cached
    :class:`~repro.netlist.simd.OverlayKernel` (see
    :mod:`repro.netlist.simd`); candidates whose screen result could
    depend on step order fall back to the scalar overlay, which stays
    the bit-identity oracle either way.
    """

    def __init__(self, impl: Circuit, spec: Circuit,
                 words_list: Sequence[Dict[str, int]],
                 counters=None):
        self.impl = impl
        self.spec = spec
        self.words_list = list(words_list)
        self.counters = counters
        self.width = max(1, len(self.words_list))
        self.mask = batch_mask(self.width)
        batch: Dict[str, int] = {}
        for k, words in enumerate(self.words_list):
            shift = WORD_BITS * k
            for name in impl.inputs:
                batch[name] = batch.get(name, 0) | \
                    (words.get(name, 0) << shift)
        self.plan = compiled_plan(impl)
        self.spec_plan = compiled_plan(spec)
        spec_batch = {n: batch.get(n, 0) for n in spec.inputs}
        self.base = self.plan.run(batch, self.mask)
        self.spec_base = self.spec_plan.run(spec_batch, self.mask)
        if counters is not None:
            counters.plan_evals += 2
        # vector-screen state, built lazily on first passes_batch
        self._base_vec = None
        self._spec_lanes = None
        self._kernels: Dict[frozenset, object] = {}

    def _source_value(self, op: RewireOp,
                      updated: Dict[int, int]) -> int:
        if op.from_spec:
            return self.spec_base[self.spec_plan.index[op.source_net]]
        idx = self.plan.index[op.source_net]
        return updated.get(idx, self.base[idx])

    def passes(self, ops: Sequence[RewireOp], target: str,
               failing: Sequence[str]) -> bool:
        """Screen one candidate rewire.

        Requires the target output and every currently-passing output to
        match the spec on every simulated pattern; other failing outputs
        may remain wrong (SAT validation later reports which of them the
        rewire happens to fix).
        """
        failing_set = set(failing) - {target}
        plan = self.plan
        index = plan.index
        base = self.base
        mask = self.mask
        if self.counters is not None:
            self.counters.plan_evals += 1

        # last op per pin wins, as in the reference per-pattern screen
        gate_ops: Dict[int, Dict[int, RewireOp]] = {}
        port_ops: Dict[str, RewireOp] = {}
        for op in ops:
            if op.pin.is_output_port:
                port_ops[op.pin.owner] = op
            else:
                gate_ops.setdefault(
                    index[op.pin.owner], {})[op.pin.index] = op

        updated: Dict[int, int] = {}
        for out, opcode, fanins in plan.steps:
            pin_ops = gate_ops.get(out)
            if pin_ops is None:
                for j in fanins:
                    if j in updated:
                        break
                else:
                    continue
                operands = [updated.get(j, base[j]) for j in fanins]
            else:
                operands = []
                for pos, j in enumerate(fanins):
                    op = pin_ops.get(pos)
                    if op is not None:
                        operands.append(self._source_value(op, updated))
                    else:
                        operands.append(updated.get(j, base[j]))
            new = eval_opcode(opcode, operands, mask)
            if new != base[out]:
                updated[out] = new

        spec_index = self.spec_plan.index
        spec_base = self.spec_base
        for port, net in self.impl.outputs.items():
            if port in failing_set:
                continue
            op = port_ops.get(port)
            if op is not None:
                got = self._source_value(op, updated)
            else:
                j = index[net]
                got = updated.get(j, base[j])
            if got != spec_base[spec_index[self.spec.outputs[port]]]:
                return False
        return True

    # ------------------------------------------------------------------
    # batched vector screen
    # ------------------------------------------------------------------
    @staticmethod
    def _vector_safe(ops: Sequence[RewireOp]) -> bool:
        """Is a candidate's screen result independent of step order?

        Single-op candidates and all-spec-sourced candidates are: the
        lint screen guarantees acyclicity, so no rewired source can
        observe another rewire of the same candidate.  Multi-op
        candidates with implementation-sourced rewires can (the scalar
        overlay reads sources in plan-step order), so those keep the
        scalar path for exact parity.
        """
        return len(ops) == 1 or all(op.from_spec for op in ops)

    def _vector_state(self):
        if self._base_vec is None:
            vplan = self.plan.vector_plan()
            self._base_vec = simd.base_vec_from_ints(
                self.base, vplan.perm, self.width)
            self._spec_lanes = simd.lanes_from_ints(
                self.spec_base, self.width)
        return self.plan.vector_plan(), self._base_vec, \
            self._spec_lanes

    def _source_rows(self, np, ops_group: List[Sequence[RewireOp]],
                     pick, vplan, base_vec):
        """Per-candidate ``(C, W)`` operand rows for one rewired pin."""
        rows = np.empty((len(ops_group), self.width), dtype=np.uint64)
        for c, ops in enumerate(ops_group):
            op = pick(ops)
            if op.from_spec:
                rows[c] = self._spec_lanes[
                    self.spec_plan.index[op.source_net]]
            else:
                rows[c] = base_vec[
                    vplan.perm[self.plan.index[op.source_net]]]
        return rows

    def passes_batch(self, candidates: Sequence[Sequence[RewireOp]],
                     target: str,
                     failing: Sequence[str]) -> List[bool]:
        """Screen a batch of candidates; one bool per candidate.

        Result-identical to calling :meth:`passes` per candidate.  With
        the numpy backend active, order-independent candidates sharing
        a pin set are scored as one ``(net, candidate, word)`` array
        evaluation; everything else (and every candidate, when the
        backend is off) goes through the scalar overlay.
        """
        results: List[Optional[bool]] = [None] * len(candidates)
        groups: Dict[tuple, List[int]] = {}
        if simd.use_vector_screen(len(candidates)):
            for ci, ops in enumerate(candidates):
                if self._vector_safe(ops):
                    key = tuple(sorted(
                        (self.plan.index[op.pin.owner], op.pin.index)
                        for op in ops if not op.pin.is_output_port))
                    groups.setdefault(key, []).append(ci)
        for key, cis in groups.items():
            group_results = self._passes_vector(
                key, [candidates[ci] for ci in cis], target, failing)
            for ci, ok in zip(cis, group_results):
                results[ci] = ok
        for ci, ops in enumerate(candidates):
            if results[ci] is None:
                results[ci] = self.passes(ops, target, failing)
        return results  # type: ignore[return-value]

    def _passes_vector(self, key: tuple,
                       ops_group: List[Sequence[RewireOp]],
                       target: str,
                       failing: Sequence[str]) -> List[bool]:
        """Vector screen of candidates sharing one gate-pin set."""
        np = simd._np  # only reached when simd reports numpy present
        vplan, base_vec, spec_lanes = self._vector_state()
        if self.counters is not None:
            self.counters.plan_evals += len(ops_group)

        owners = frozenset(idx for idx, _pos in key)
        kernel = self._kernels.get(owners)
        if kernel is None:
            kernel = simd.OverlayKernel(vplan, self.plan.steps, owners)
            self._kernels[owners] = kernel

        overrides = {}
        for gate_idx, pos in key:
            def pick(ops, gi=gate_idx, p=pos):
                chosen = None
                for op in ops:  # last op per pin wins, as in passes()
                    if not op.pin.is_output_port and \
                            self.plan.index[op.pin.owner] == gi and \
                            op.pin.index == p:
                        chosen = op
                return chosen
            overrides[(gate_idx, pos)] = self._source_rows(
                np, ops_group, pick, vplan, base_vec)

        values = kernel.evaluate(base_vec, len(ops_group), overrides)

        failing_set = set(failing) - {target}
        ok = np.ones(len(ops_group), dtype=bool)
        index = self.plan.index
        spec_index = self.spec_plan.index
        perm = vplan.perm
        for port, net in self.impl.outputs.items():
            if port in failing_set:
                continue
            spec_row = spec_lanes[spec_index[self.spec.outputs[port]]]
            port_ops = [(c, op) for c, ops in enumerate(ops_group)
                        for op in ops
                        if op.pin.is_output_port and
                        op.pin.owner == port]
            if not port_ops and \
                    index[net] not in kernel.affected_plan:
                # untouched output: base comparison decides the whole
                # group at once
                if not bool((base_vec[perm[index[net]]]
                             == spec_row).all()):
                    ok[:] = False
                continue
            got = values[perm[index[net]]]
            if port_ops:
                got = got.copy()
                for c, op in port_ops:
                    if op.from_spec:
                        got[c] = spec_lanes[spec_index[op.source_net]]
                    else:
                        got[c] = values[perm[index[op.source_net]], c]
            ok &= (got == spec_row).all(axis=-1)
        return [bool(v) for v in ok]


@dataclass
class ValidationOutcome:
    """Result of one full-domain validation."""

    valid: bool
    #: previously-failing ports this rewire provably fixes
    fixed: Tuple[str, ...] = ()
    #: ports whose check exhausted the SAT budget (treated as not fixed)
    unknown: Tuple[str, ...] = ()
    #: the patched scratch circuit (only when valid)
    patched: Optional[Circuit] = None
    clone_map: Dict[str, str] = field(default_factory=dict)
    new_gates: Set[str] = field(default_factory=set)
    #: input assignment refuting the target output, when the check
    #: found one (feeds counterexample-guided domain refinement)
    target_counterexample: Optional[Dict[str, bool]] = None


def validate_rewire(impl: Circuit, spec: Circuit, ops: Sequence[RewireOp],
                    failing: Sequence[str], clone_map: Dict[str, str],
                    sat_budget: Optional[int] = None,
                    target: Optional[str] = None,
                    run=None, cache=None) -> ValidationOutcome:
    """Exact check of a candidate rewire on the full input domain.

    A candidate is valid when every output it touches is either proven
    equivalent to the spec or was already failing (it may leave other
    failing outputs broken, but must never damage a passing one).

    With a :class:`~repro.runtime.supervisor.RunSupervisor` as ``run``,
    each per-output query goes through the supervisor instead of a flat
    ``sat_budget``: budgets follow the adaptive escalation policy,
    conflicts are charged to the run's aggregate budget, and the
    deadline is checked between outputs.  Budget exhaustion then raises
    a :class:`~repro.errors.ResourceBudgetExceeded` subclass.
    """
    if not topological_constraint_ok(impl, [op.pin for op in ops]):
        return ValidationOutcome(valid=False)
    if not rewire_acyclic(impl, ops):
        return ValidationOutcome(valid=False)

    work = impl.copy()
    local_clone_map = dict(clone_map)
    new_gates = apply_rewires(work, spec, ops, local_clone_map)

    changed_nets = set()
    for op in ops:
        if op.pin.is_output_port:
            changed_nets.add(work.outputs[op.pin.owner])
        else:
            changed_nets.add(op.pin.owner)
    affected = set(dependent_outputs(work, changed_nets))
    for op in ops:
        if op.pin.is_output_port:
            affected.add(op.pin.owner)

    failing_set = set(failing)
    if cache is None and run is not None:
        cache = getattr(run, "cnf_cache", None)
    checker = PairwiseChecker(work, spec, cache=cache)
    fixed: List[str] = []
    unknown: List[str] = []
    target_cex: Optional[Dict[str, bool]] = None
    for port in sorted(affected):
        if run is not None:
            run.checkpoint()
            result = run.check_pair_supervised(checker, port)
        else:
            result = checker.check_pair(port, conflict_budget=sat_budget)
        if result.equivalent is True:
            if port in failing_set:
                fixed.append(port)
        elif result.equivalent is False:
            if port == target:
                target_cex = result.counterexample
            if port not in failing_set:
                # damaged a good output
                return ValidationOutcome(valid=False,
                                         target_counterexample=target_cex)
        else:
            unknown.append(port)
            if port not in failing_set:
                # cannot prove we kept a passing output intact: reject
                return ValidationOutcome(valid=False,
                                         target_counterexample=target_cex)
    if not fixed:
        return ValidationOutcome(valid=False,
                                 target_counterexample=target_cex)
    return ValidationOutcome(valid=True, fixed=tuple(fixed),
                             unknown=tuple(unknown), patched=work,
                             clone_map=local_clone_map,
                             new_gates=new_gates)
