"""Patch-input refinement by sweeping (Section 5.2, post-processing).

After all rewires are committed, each gate cloned from the
specification is compared against the pre-existing implementation
logic: when an original net is SAT-proven equivalent to a cloned net
(and wiring it in is acyclic), the clone's sinks are redirected to the
original and the clone is removed.  This 'reuses already existing
current implementation logic, thereby reducing the patch size'.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.netlist.circuit import Circuit
from repro.netlist.simulate import signature
from repro.netlist.traverse import transitive_fanout
from repro.cec.sweep import prune_dangling
from repro.sat import Solver, UNSAT
from repro.sat.tseitin import CircuitEncoder


def refine_patch_inputs(patched: Circuit, cloned_gates: Set[str],
                        rounds: int = 4, seed: int = 97,
                        conflict_budget: Optional[int] = 20000
                        ) -> Tuple[int, Set[str]]:
    """Replace cloned patch logic with equivalent existing nets.

    Args:
        patched: the rectified implementation (modified in place).
        cloned_gates: names of gates the patch instantiated.
        rounds: random-simulation rounds for candidate pairing.
        seed: simulation seed.
        conflict_budget: SAT budget per equivalence proof.

    Returns:
        ``(replacements, remaining_clones)`` — the number of cloned
        nets eliminated and the cloned gates still present afterwards.
    """
    alive = {g for g in cloned_gates if g in patched.gates}
    if not alive:
        return 0, set()

    sigs = signature(patched, rounds=rounds, seed=seed)
    by_sig: Dict[int, List[str]] = {}
    for net, sig in sigs.items():
        if net not in alive:
            by_sig.setdefault(sig, []).append(net)

    solver = Solver()
    encoder = CircuitEncoder(solver)
    varmap = encoder.encode(patched)

    replacements = 0
    # deepest clones first so upstream replacements cascade
    for clone in sorted(alive, key=lambda g: -_depth(patched, g)):
        if clone not in patched.gates or not patched.sinks(clone):
            continue
        originals = by_sig.get(sigs[clone], ())
        for candidate in originals:
            if candidate in transitive_fanout(patched, [clone]):
                continue  # would create a cycle
            neq = encoder._encode_xor2(varmap[clone], varmap[candidate])
            if solver.solve(assumptions=[neq],
                            conflict_budget=conflict_budget) == UNSAT:
                patched.replace_net(clone, candidate)
                replacements += 1
                break
    if replacements:
        prune_dangling(patched)
    remaining = {g for g in alive if g in patched.gates}
    return replacements, remaining


def _depth(circuit: Circuit, net: str) -> int:
    """Cheap depth proxy: fanin count of the driving gate."""
    gate = circuit.gates.get(net)
    return len(gate.fanins) if gate else 0
