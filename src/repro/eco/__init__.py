"""The syseco engine: rewire-based ECO rectification via symbolic sampling.

This package is the paper's primary contribution.  Entry point:

    >>> from repro.eco import SysEco, EcoConfig
    >>> engine = SysEco(EcoConfig())
    >>> result = engine.rectify(impl, spec)
    >>> result.patched           # implementation rectified to match spec
    >>> result.patch.stats()     # Table-2 style patch attributes

Pipeline (Section 5.2): per failing output — error-biased sampling
domain, mux-parameterized rectification-point enumeration ``H(t)``,
candidate rewiring nets (structural filter + utility heuristic),
rewiring-choice function ``Xi(c)``, and full-domain SAT validation —
followed by global pruning and patch-input sweeping.
"""

from repro.eco.config import EcoConfig
from repro.eco.patch import Patch, PatchStats, RewireOp, RectificationResult
from repro.eco.sampling import SamplingDomain
from repro.eco.samples import collect_error_samples
from repro.eco.engine import SysEco, rectify
from repro.eco.checkpoint import RunJournal, list_resumable
from repro.eco.analysis import diagnose, format_diagnosis
from repro.eco.report import format_patch_report

__all__ = [
    "EcoConfig",
    "Patch",
    "PatchStats",
    "RewireOp",
    "RectificationResult",
    "SamplingDomain",
    "collect_error_samples",
    "SysEco",
    "rectify",
    "RunJournal",
    "list_resumable",
    "diagnose",
    "format_diagnosis",
    "format_patch_report",
]
