"""Incremental assumption-based candidate validation (Section 5.2).

The legacy :func:`repro.eco.validate.validate_rewire` pays a full
``impl.copy()``, cone cloning and a fresh Tseitin encoding for *every*
candidate rewire.  :class:`IncrementalValidator` amortizes all of that
across the whole search of one output: it encodes a mux-augmented
miter **once** — every candidate pin's fanin connection is cut and
replaced by a free *pin variable* — and registers each concrete rewire
behind fresh *selector literals*

    ``sel(pin, src)  ->  pin_var == src_var``

so checking a candidate is a single ``Solver.solve(assumptions=[...])``
on one persistent solver: the selectors of the candidate's sources,
the original-driver selectors of every untouched pin, and the target
port's difference literal.  No circuit copy, no re-encoding, and every
learned clause carries over to the next candidate.

Rewires sourced from the specification need no cloning here: both
circuits are encoded over shared input variables, so tying a pin
variable to the spec net's variable is logically identical to wiring
the pin to a structural clone of that cone.  The patched circuit is
materialized (via the legacy apply path) only for the *winning*
candidate.

The validator reuses the run's :class:`~repro.sat.cnfcache.CnfCache`
for the specification side and exposes the ``solver`` +
``check_pair(port, conflict_budget)`` surface of
:class:`~repro.cec.equivalence.PairwiseChecker`, so
:meth:`RunSupervisor.check_pair_supervised` drives it unchanged —
budgets, escalation and fault injection apply exactly as on the legacy
path, which stays available as a cross-check oracle behind
``EcoConfig.incremental_validate``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import NetlistError
from repro.netlist.circuit import Circuit, Pin
from repro.netlist.traverse import dependent_outputs, topological_order
from repro.sat import UNKNOWN, UNSAT, Solver
from repro.sat.cnfcache import CnfCache
from repro.sat.tseitin import CircuitEncoder
from repro.cec.equivalence import EquivalenceResult
from repro.eco.patch import RewireOp
from repro.eco.validate import (
    ValidationOutcome,
    apply_rewires,
    rewire_acyclic,
    topological_constraint_ok,
)


class IncrementalValidator:
    """One persistent mux-augmented miter for an output search.

    Args:
        impl: current implementation ``C`` (must not be mutated while
            the validator is alive; the engine rebuilds one per search).
        spec: revised specification ``C'``.
        pins: candidate rectification pins — the cut points.  Only
            rewires whose pins are all in this set can be validated
            (:meth:`covers`); the engine falls back to the legacy path
            otherwise.
        cache: optional :class:`CnfCache` for the specification side.
        counters: optional ``RunCounters`` receiving
            ``incremental_solves``.
    """

    def __init__(self, impl: Circuit, spec: Circuit,
                 pins: Sequence[Pin], cache: Optional[CnfCache] = None,
                 counters=None):
        self.impl = impl
        self.spec = spec
        self.counters = counters
        self.solver = Solver()
        self._encoder = CircuitEncoder(self.solver)
        #: gate pin -> free variable spliced into the pin's fanin slot
        self._pin_var: Dict[Pin, int] = {}
        #: pin -> variable of its original driver (default selector)
        self._pin_default: Dict[Pin, int] = {}
        #: output-port pin -> free variable observed by the diff miter
        self._port_var: Dict[str, int] = {}
        self._selectors: Dict[Tuple[Pin, int], int] = {}
        self._diff_lit: Dict[str, int] = {}
        self._affected: Dict[str, List[str]] = {}
        self._assumptions: List[int] = []

        cut: Dict[str, Dict[int, Pin]] = {}
        port_pins: List[Pin] = []
        for pin in pins:
            if pin.is_output_port:
                port_pins.append(pin)
            else:
                cut.setdefault(pin.owner, {})[pin.index] = pin

        solver = self.solver
        varmap: Dict[str, int] = {}
        for name in impl.inputs:
            varmap[name] = solver.new_var()
        for name in topological_order(impl):
            gate = impl.gates[name]
            pinmap = cut.get(name)
            operands = []
            for idx, fanin in enumerate(gate.fanins):
                pin = pinmap.get(idx) if pinmap else None
                if pin is None:
                    operands.append(varmap[fanin])
                else:
                    pv = solver.new_var()
                    self._pin_var[pin] = pv
                    self._pin_default[pin] = varmap[fanin]
                    operands.append(pv)
            varmap[name] = self._encoder.encode_gate(gate.gtype, operands)
        self._impl_map = varmap

        shared = {n: varmap[n] for n in spec.inputs if n in varmap}
        if cache is not None:
            self._spec_map = cache.encode(solver, spec,
                                          input_vars=shared)
        else:
            self._spec_map = self._encoder.encode(spec,
                                                  input_vars=shared)
        self.input_vars = {
            n: varmap.get(n, self._spec_map.get(n))
            for n in set(impl.inputs) | set(spec.inputs)
        }

        for pin in port_pins:
            port = pin.owner
            if port not in impl.outputs:
                raise NetlistError(f"no output port {port!r}")
            ov = solver.new_var()
            self._port_var[port] = ov
            self._pin_var[pin] = ov
            self._pin_default[pin] = varmap[impl.outputs[port]]

    # ------------------------------------------------------------------
    def covers(self, ops: Sequence[RewireOp]) -> bool:
        """Whether every pin and source of ``ops`` is registered."""
        for op in ops:
            if op.pin not in self._pin_var:
                return False
            if op.from_spec:
                if op.source_net not in self._spec_map:
                    return False
            elif op.source_net not in self._impl_map:
                return False
        return True

    # ------------------------------------------------------------------
    def _source_var(self, op: RewireOp) -> int:
        if op.from_spec:
            return self._spec_map[op.source_net]
        return self._impl_map[op.source_net]

    def _selector(self, pin: Pin, src_var: int) -> int:
        """Selector literal asserting ``pin_var == src_var``."""
        key = (pin, src_var)
        sel = self._selectors.get(key)
        if sel is None:
            solver = self.solver
            sel = solver.new_var()
            pv = self._pin_var[pin]
            solver.add_clause([-sel, -pv, src_var])
            solver.add_clause([-sel, pv, -src_var])
            self._selectors[key] = sel
        return sel

    def diff_literal(self, port: str) -> int:
        """Literal asserting 'port differs between C and C''.

        Ports registered as candidate pins are observed through their
        free port variable (selected per candidate); all others read
        the implementation net directly.
        """
        lit = self._diff_lit.get(port)
        if lit is None:
            a = self._port_var.get(port)
            if a is None:
                a = self._impl_map[self.impl.outputs[port]]
            b = self._spec_map[self.spec.outputs[port]]
            lit = self._encoder._encode_xor2(a, b)
            self._diff_lit[port] = lit
        return lit

    # ------------------------------------------------------------------
    def _arm(self, ops: Sequence[RewireOp]) -> None:
        """Assumption set selecting ``ops`` and pinning all other pins
        to their original drivers."""
        chosen: Dict[Pin, int] = {}
        for op in ops:  # last op per pin wins, as in apply_rewires
            chosen[op.pin] = self._source_var(op)
        assumptions = []
        for pin, pv in self._pin_var.items():
            src = chosen.get(pin)
            if src is None:
                src = self._pin_default[pin]
            assumptions.append(self._selector(pin, src))
        self._assumptions = assumptions

    def check_pair(self, port: str,
                   conflict_budget: Optional[int] = None
                   ) -> EquivalenceResult:
        """Is the armed candidate equivalent to the spec on ``port``?

        Same surface as :meth:`PairwiseChecker.check_pair`, so the run
        supervisor's escalation/budget loop drives this unchanged.
        """
        lit = self.diff_literal(port)
        if self.counters is not None:
            self.counters.incremental_solves += 1
        status = self.solver.solve(
            assumptions=self._assumptions + [lit],
            conflict_budget=conflict_budget)
        if status == UNSAT:
            return EquivalenceResult(True)
        if status == UNKNOWN:
            return EquivalenceResult(None)
        model = self.solver.model()
        cex = {n: model.get(v, False)
               for n, v in self.input_vars.items()}
        return EquivalenceResult(False, counterexample=cex,
                                 failing_outputs=(port,))

    # ------------------------------------------------------------------
    def _affected_outputs(self, ops: Sequence[RewireOp]) -> List[str]:
        """Output ports whose function a rewire of ``ops`` can change.

        Rewiring a gate input pin changes only the fanout cone of the
        gate, and the fanout relation is not altered by the rewire
        itself, so per-owner dependence is precomputable on ``impl``
        and shared across candidates.
        """
        affected: Set[str] = set()
        for op in ops:
            if op.pin.is_output_port:
                affected.add(op.pin.owner)
                continue
            owner = op.pin.owner
            ports = self._affected.get(owner)
            if ports is None:
                ports = dependent_outputs(self.impl, [owner])
                self._affected[owner] = ports
            affected.update(ports)
        return sorted(affected)

    # ------------------------------------------------------------------
    def validate(self, ops: Sequence[RewireOp], failing: Sequence[str],
                 clone_map: Dict[str, str],
                 sat_budget: Optional[int] = None,
                 target: Optional[str] = None,
                 run=None) -> ValidationOutcome:
        """Exact full-domain check of one candidate, incrementally.

        Verdict-identical to :func:`repro.eco.validate.validate_rewire`
        (see the property tests): a candidate is valid when it fixes at
        least one failing output and provably damages no passing one.
        The patched scratch circuit is materialized only on success.
        """
        pins = [op.pin for op in ops]
        if not topological_constraint_ok(self.impl, pins):
            return ValidationOutcome(valid=False)
        if not rewire_acyclic(self.impl, ops):
            return ValidationOutcome(valid=False)

        self._arm(ops)
        failing_set = set(failing)
        fixed: List[str] = []
        unknown: List[str] = []
        target_cex: Optional[Dict[str, bool]] = None
        for port in self._affected_outputs(ops):
            if run is not None:
                run.checkpoint()
                result = run.check_pair_supervised(self, port)
            else:
                result = self.check_pair(port, conflict_budget=sat_budget)
            if result.equivalent is True:
                if port in failing_set:
                    fixed.append(port)
            elif result.equivalent is False:
                if port == target:
                    target_cex = result.counterexample
                if port not in failing_set:
                    return ValidationOutcome(
                        valid=False, target_counterexample=target_cex)
            else:
                unknown.append(port)
                if port not in failing_set:
                    return ValidationOutcome(
                        valid=False, target_counterexample=target_cex)
        if not fixed:
            return ValidationOutcome(valid=False,
                                     target_counterexample=target_cex)
        work = self.impl.copy()
        local_clone_map = dict(clone_map)
        new_gates = apply_rewires(work, self.spec, ops, local_clone_map)
        return ValidationOutcome(valid=True, fixed=tuple(fixed),
                                 unknown=tuple(unknown), patched=work,
                                 clone_map=local_clone_map,
                                 new_gates=new_gates)
