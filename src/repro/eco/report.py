"""Human-readable rectification reports."""

from __future__ import annotations

from typing import List, Optional

from repro.netlist.circuit import Circuit
from repro.eco.patch import RectificationResult


def format_patch_report(result: RectificationResult,
                        impl: Optional[Circuit] = None,
                        title: str = "rectification report") -> str:
    """Render one result as the report the CLI and examples print.

    Args:
        result: a finished rectification.
        impl: the pre-ECO implementation, for before/after size lines.
        title: heading line.
    """
    stats = result.stats()
    lines: List[str] = [title, "=" * len(title)]
    if impl is not None:
        lines.append(
            f"implementation : {impl.num_gates} gates -> "
            f"{result.patched.num_gates} gates")
    lines.append(f"verified outputs: {len(result.verified_outputs)}")
    lines.append(
        f"patch          : inputs={stats.inputs} outputs={stats.outputs} "
        f"gates={stats.gates} nets={stats.nets}")
    lines.append(f"runtime        : {result.runtime_seconds:.2f}s")
    if result.degraded:
        lines.append(f"DEGRADED       : {result.degrade_reason} "
                     "(partial search; remaining outputs completed via "
                     "guaranteed fallback, result fully verified)")

    if result.per_output:
        by_method: dict = {}
        for port, how in sorted(result.per_output.items()):
            by_method.setdefault(how, []).append(port)
        for how, ports in sorted(by_method.items()):
            lines.append(f"{how:<15}: {', '.join(ports)}")

    if result.counters:
        interesting = {k: v for k, v in sorted(result.counters.items())
                       if v}
        if interesting:
            lines.append("search effort  : " + ", ".join(
                f"{k}={v}" for k, v in interesting.items()))

    if result.patch.ops:
        lines.append("rewire operations:")
        for op in result.patch.ops:
            lines.append(f"  {op.describe()}")
    else:
        lines.append("rewire operations: none (already equivalent)")

    if result.trace is not None and getattr(result.trace, "spans", None):
        from repro.obs.summary import brief_phase_lines
        lines.append("phase breakdown (hottest first; "
                     "full tree: repro trace <file>):")
        for phase_line in brief_phase_lines(result.trace.records()):
            lines.append(f"  {phase_line}")
    return "\n".join(lines)
