"""The symbolic sampling domain (Section 5.1).

Given ``N`` input assignments, ``ceil(log2 N)`` fresh ``z`` variables
encode them and the sampling function ``g = (g_1 ... g_n)`` maps codes
to assignments — the matrix product of the one-hot code vector with the
0/1 sample matrix from the paper.  Overloading circuit inputs with
``g(z)`` casts any computation from the exact ``x`` domain into the
sampling ``z`` domain, where BDDs stay small regardless of design size.

Reasoning in the domain over-approximates (a super-set of candidates),
so every candidate found here is later validated by SAT on the full
domain.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.errors import EcoError
from repro.bdd.manager import BddManager, FALSE, TRUE
from repro.bdd.netbridge import net_functions
from repro.netlist.circuit import Circuit

Assignment = Mapping[str, bool]


def exhaustive_assignments(inputs: Sequence[str],
                           fixed: Optional[Mapping[str, bool]] = None
                           ) -> List[Dict[str, bool]]:
    """All assignments over ``inputs``, each extended with ``fixed``.

    Used by the engine's exact-domain mode: when a failing cone's
    support is small, the 'sampling' domain can enumerate it completely
    and the Section 4 computations become exact (no validation
    false positives possible from domain abstraction).
    """
    base = dict(fixed) if fixed else {}
    out: List[Dict[str, bool]] = []
    names = list(inputs)
    for code in range(1 << len(names)):
        assignment = dict(base)
        for i, n in enumerate(names):
            assignment[n] = bool(code >> i & 1)
        out.append(assignment)
    return out


class SamplingDomain:
    """Encodes a set of input samples with ``z`` variables.

    Args:
        manager: target BDD manager; ``z`` variables are allocated here.
        samples: the sampled assignments; each must cover ``inputs``.
        inputs: input names the domain provides functions for.
        checkpoint: optional callable invoked once per encoded input
            while the ``g_i(z)`` functions are built; the run
            supervisor passes its deadline check here.

    Attributes:
        z_vars: allocated variable indices, most significant first.
        input_functions: ``g_i(z)`` BDD per input name.
    """

    def __init__(self, manager: BddManager, samples: Sequence[Assignment],
                 inputs: Sequence[str],
                 checkpoint: Optional[Callable[[], None]] = None):
        if not samples:
            raise EcoError("sampling domain needs at least one sample")
        self.manager = manager
        self.inputs = list(inputs)
        # pad to a power of two by repeating the last sample so every
        # z code denotes a sampled assignment
        n = len(samples)
        bits = max(1, math.ceil(math.log2(n))) if n > 1 else 1
        size = 1 << bits
        padded: List[Assignment] = list(samples) + \
            [samples[-1]] * (size - n)
        self.samples = padded
        self.num_samples = n
        self.z_vars: List[int] = [manager.add_var() for _ in range(bits)]
        self._minterms: List[int] = [
            self._code_cube(k) for k in range(size)
        ]
        self.input_functions: Dict[str, int] = {}
        for name in self.inputs:
            if checkpoint is not None:
                checkpoint()
            acc = FALSE
            for k, sample in enumerate(padded):
                try:
                    value = sample[name]
                except KeyError:
                    raise EcoError(f"sample {k} misses input {name!r}")
                if value:
                    acc = manager.or_(acc, self._minterms[k])
            self.input_functions[name] = acc

    def _code_cube(self, k: int) -> int:
        """BDD of ``z^k`` (big-endian binary code of sample index)."""
        bits = len(self.z_vars)
        assignment = {
            self.z_vars[i]: bool((k >> (bits - 1 - i)) & 1)
            for i in range(bits)
        }
        return self.manager.cube(assignment)

    def code_of(self, k: int) -> int:
        """The minterm selecting sample ``k``."""
        return self._minterms[k]

    def valid_codes(self) -> int:
        """BDD of the codes denoting distinct (non-padding) samples."""
        acc = FALSE
        for k in range(self.num_samples):
            acc = self.manager.or_(acc, self._minterms[k])
        return acc

    def count_in_domain(self, node: int) -> int:
        """Number of distinct samples on which ``node`` holds.

        ``node`` must depend on the ``z`` variables only (cast-circuit
        results satisfy this), and the domain must have been created on
        a fresh manager so the ``z`` variables occupy positions
        ``0..bits-1``.
        """
        support = self.manager.support(node)
        zset = set(self.z_vars)
        if not support <= zset:
            raise EcoError("count_in_domain: node depends on non-z variables")
        restricted = self.manager.and_(node, self.valid_codes())
        return self.manager.satcount(restricted,
                                     num_vars=max(zset) + 1)

    def sample_of_assignment(self, z_assignment: Mapping[int, bool]) -> Assignment:
        """Decode a ``z`` assignment back to the sampled input pattern."""
        k = 0
        bits = len(self.z_vars)
        for i, v in enumerate(self.z_vars):
            if z_assignment.get(v, False):
                k |= 1 << (bits - 1 - i)
        return self.samples[k]

    def cast_circuit(self, circuit: Circuit,
                     roots: Optional[Iterable[str]] = None,
                     extra_inputs: Optional[Mapping[str, int]] = None
                     ) -> Dict[str, int]:
        """Net functions of ``circuit`` in the sampling domain.

        ``extra_inputs`` supplies BDDs for inputs outside the domain
        (unused inputs default to constant FALSE — they do not affect
        the sampled cones by construction of the sample set).
        """
        input_functions = dict(self.input_functions)
        for name in circuit.inputs:
            if name not in input_functions:
                if extra_inputs and name in extra_inputs:
                    input_functions[name] = extra_inputs[name]
                else:
                    input_functions[name] = FALSE
        return net_functions(circuit, self.manager, input_functions,
                             roots=roots)
