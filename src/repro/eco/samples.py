"""Error-domain sample collection (Section 5.1).

The sampling domain should be drawn from the error domain
``E = {x | f(x) != f'(x)}`` to minimize false-positive candidates.
Samples come from two sources, cheapest first:

1. random simulation of both circuits, keeping patterns on which the
   target output differs;
2. SAT enumeration on the miter of the target output pair, with
   blocking clauses for diversity, when simulation finds too few.

A configurable fraction of uniform (non-error) samples can be mixed in
for the sampling ablation.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.netlist.circuit import Circuit
from repro.netlist.gate import WORD_BITS
from repro.netlist.simulate import compiled_plan, random_patterns
from repro.sat import Solver, SAT
from repro.sat.tseitin import CircuitEncoder

Assignment = Dict[str, bool]


def _pattern_at(words: Dict[str, int], inputs: Sequence[str],
                bit: int) -> Assignment:
    return {n: bool((words[n] >> bit) & 1) for n in inputs}


def simulation_error_samples(impl: Circuit, spec: Circuit, port: str,
                             want: int, rng: random.Random,
                             max_rounds: int = 24) -> List[Assignment]:
    """Harvest error-domain assignments by random simulation."""
    inputs = impl.inputs
    impl_net = impl.outputs[port]
    spec_net = spec.outputs[port]
    # cached cone plans: only the target output's fanin is evaluated
    impl_plan = compiled_plan(impl, roots=[impl_net])
    spec_plan = compiled_plan(spec, roots=[spec_net])
    impl_slot = impl_plan.index[impl_net]
    spec_slot = spec_plan.index[spec_net]
    found: List[Assignment] = []
    seen = set()
    for _ in range(max_rounds):
        words = random_patterns(inputs, rng)
        spec_words = {n: words.get(n, 0) for n in spec.inputs}
        iv = impl_plan.run(words)[impl_slot]
        sv = spec_plan.run(spec_words)[spec_slot]
        diff = iv ^ sv
        bit = 0
        while diff and len(found) < want:
            if diff & 1:
                pat = _pattern_at(words, inputs, bit)
                key = tuple(pat[n] for n in inputs)
                if key not in seen:
                    seen.add(key)
                    found.append(pat)
            diff >>= 1
            bit += 1
        if len(found) >= want:
            break
    return found


def sat_error_samples(impl: Circuit, spec: Circuit, port: str,
                      want: int,
                      known: Optional[List[Assignment]] = None
                      ) -> List[Assignment]:
    """Enumerate distinct error-domain assignments with SAT.

    Each found model is blocked on the primary inputs before re-solving,
    so successive samples differ on at least one input.
    """
    solver = Solver()
    encoder = CircuitEncoder(solver)
    impl_map = encoder.encode(impl)
    shared = {n: impl_map[n] for n in impl.inputs}
    spec_map = encoder.encode(spec, input_vars=shared)
    for n in spec.inputs:
        shared.setdefault(n, spec_map[n])
    diff = encoder._encode_xor2(impl_map[impl.outputs[port]],
                                spec_map[spec.outputs[port]])
    solver.add_clause([diff])

    found: List[Assignment] = []
    block_keys = set()
    if known:
        for pat in known:
            key = tuple(sorted(pat.items()))
            block_keys.add(key)
            solver.add_clause([
                -shared[n] if v else shared[n]
                for n, v in pat.items() if n in shared
            ])
    while len(found) < want:
        if solver.solve() != SAT:
            break
        model = solver.model()
        pat = {n: model.get(v, False) for n, v in shared.items()}
        found.append(pat)
        solver.add_clause([
            -shared[n] if v else shared[n] for n, v in pat.items()
        ])
    return found


def uniform_samples(inputs: Sequence[str], want: int,
                    rng: random.Random) -> List[Assignment]:
    """Uniform random assignments (non-error-biased domain)."""
    out = []
    seen = set()
    for _ in range(want * 8):
        if len(out) >= want:
            break
        pat = {n: bool(rng.getrandbits(1)) for n in inputs}
        key = tuple(pat[n] for n in inputs)
        if key not in seen:
            seen.add(key)
            out.append(pat)
    return out


def diversify_samples(samples: List[Assignment], want: int,
                      inputs: Sequence[str]) -> List[Assignment]:
    """Greedy max-min-Hamming-distance subset of ``samples``.

    The paper's future work points at better sampling-domain selection;
    spreading the samples across the error domain makes each ``z`` code
    carry more information than near-duplicate assignments would.
    Keeps the first sample as the anchor and repeatedly adds the sample
    farthest (in minimum Hamming distance) from the chosen set.
    """
    if len(samples) <= want:
        return list(samples)

    def distance(a: Assignment, b: Assignment) -> int:
        return sum(1 for n in inputs if a[n] != b[n])

    chosen = [samples[0]]
    remaining = list(samples[1:])
    while len(chosen) < want and remaining:
        best_idx = max(
            range(len(remaining)),
            key=lambda i: min(distance(remaining[i], c) for c in chosen))
        chosen.append(remaining.pop(best_idx))
    return chosen


def collect_error_samples(impl: Circuit, spec: Circuit, port: str,
                          count: int, rng: random.Random,
                          error_bias: float = 1.0,
                          diversify: bool = False) -> List[Assignment]:
    """The sampling domain for one failing output.

    ``error_bias`` controls the fraction of samples drawn from the
    error domain (the paper's recommendation is all of them); the rest
    are uniform.  Falls back to SAT enumeration when simulation finds
    too few error patterns, and pads with uniform samples when the
    error domain itself is smaller than requested.  With ``diversify``
    a larger error pool is harvested first and a greedy
    max-Hamming-distance subset of the requested size is kept.
    """
    n_error = max(1, round(count * error_bias)) if error_bias > 0 else 0
    n_uniform = count - n_error
    harvest = n_error * 4 if diversify else n_error
    samples = simulation_error_samples(impl, spec, port, harvest, rng)
    if diversify and len(samples) > n_error:
        samples = diversify_samples(samples, n_error, impl.inputs)
    if len(samples) < n_error:
        samples += sat_error_samples(impl, spec, port,
                                     n_error - len(samples), known=samples)
    existing = {tuple(sorted(p.items())) for p in samples}
    for pat in uniform_samples(impl.inputs, n_uniform + count, rng):
        if len(samples) >= count:
            break
        key = tuple(sorted(pat.items()))
        if key not in existing:
            existing.add(key)
            samples.append(pat)
    return samples[:count]
