"""Parallel per-output rectification search (``EcoConfig.jobs``).

With ``jobs > 1`` the non-equivalent outputs are partitioned into
groups and each group is searched by a separate worker process running
the same :meth:`SysEco._repair_outputs` loop the sequential engine
uses.  Every worker gets

* a pickled snapshot of the work-in-progress circuit and the spec
  (derived caches are stripped on pickling and rebuilt lazily),
* the **full** failing list — validation must know every currently
  failing output, or candidates that also touch another group's
  failing outputs would be wrongly rejected as damaging a "passing"
  output — plus its own ``targets`` subset to drive,
* a share of the run budget: SAT conflicts and BDD nodes are divided
  ``remaining // (jobs + 1)`` (one share held back for the main
  process), wall-clock deadline is concurrent and passed whole.

Workers return their commit logs, counters, and trace records.  The
main process absorbs the telemetry into the run supervisor and
*replays* each commit against its own evolving circuit under the
supervised validator — two workers can commit patches that conflict
(e.g. both rewire the same shared gate), so a worker's verdict is
never trusted across process boundaries.  Commits that fail replay are
dropped; their outputs simply stay failing and the sequential loop
that follows the parallel phase repairs them with the reserve budget.

The pool is *supervised*: each partition runs in its own single-worker
executor so a dying process is attributable to exactly one partition.
A death (broken pool, nonzero exit, missed heartbeat deadline derived
from the run budget) is recorded as a ``worker.died`` event and the
partition is re-dispatched after an exponential backoff
(:class:`~repro.runtime.retry.RetryPolicy`, ``task.retried``); a
partition that kills its worker more times than the policy allows is
*quarantined* — its outputs skip the search and complete via the
fallback, and the run is reported degraded (``output.quarantined``).
The :data:`~repro.runtime.faultinject.SITE_WORKER` fault site is
observed in the main process at every dispatch, so the chaos harness
can kill any Nth task deterministically.

``REPRO_ECO_JOBS_INLINE=1`` forces workers to run in-process (same
code path minus the pool, including injected deaths and retries),
which keeps multi-worker merge behavior deterministic for tests.
"""

from __future__ import annotations

import logging
import os
import pickle
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ResourceBudgetExceeded, WorkerDiedError
from repro.netlist.circuit import Circuit
from repro.obs.live import LiveAggregator, LiveBus, WorkerPublisher
from repro.obs.trace import Trace
from repro.runtime.faultinject import FAULT_KILL, SITE_WORKER
from repro.runtime.retry import RetryPolicy
from repro.runtime.supervisor import RunSupervisor

logger = logging.getLogger("repro.eco")

#: seconds past the run deadline before a silent worker is declared dead
HEARTBEAT_GRACE_S = 5.0


class _PoolUnavailable(Exception):
    """Process pools cannot run here; fall back to sequential search."""


@dataclass
class WorkerResult:
    """Everything a search worker ships back to the main process."""

    targets: Tuple[str, ...]
    #: ``(port, how, ops)`` per commit, in commit order
    commits: List[Tuple[str, str, list]] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    records: List[dict] = field(default_factory=list)
    degraded: bool = False
    degrade_reason: Optional[str] = None
    #: budget exception message when the worker aborted in strict mode
    error: Optional[str] = None


def _run_worker(payload) -> WorkerResult:
    """One worker: repair ``targets`` on a private copy of the run.

    Module-level so it pickles for :class:`ProcessPoolExecutor`; also
    called directly in inline mode.  ``payload`` is the 5-tuple built
    by :func:`parallel_repair` plus the dispatch extras appended by
    :func:`_run_partitions`: the kill verdict, the live-bus queue (or
    ``None``) and the worker id.
    """
    import random

    from repro.eco.engine import SysEco
    from repro.eco.patch import Patch

    work, spec, config, failing, targets = payload[:5]
    kill = len(payload) > 5 and bool(payload[5])
    bus_queue = payload[6] if len(payload) > 6 else None
    worker_id = (payload[7] if len(payload) > 7
                 else ",".join(targets))
    engine = SysEco(config)
    trace = Trace(name=f"worker:{worker_id}")
    run = RunSupervisor.from_config(config, trace=trace)
    trace.set_counters(run.counters)
    publisher = None
    if bus_queue is not None:
        publisher = WorkerPublisher(bus_queue, worker_id,
                                    counters=run.counters)
        trace.listener = publisher
        publisher.heartbeat(force=True)
    rng = random.Random(config.seed)
    patch = Patch()
    per_output: Dict[str, str] = {}
    result = WorkerResult(targets=tuple(targets))
    if kill:
        # the dispatcher observed an armed SITE_WORKER fault for this
        # task: open the worker span and stream it (so the chaos tests
        # can assert that *pre-death* telemetry survives), then die the
        # way a real crashed worker would.  Inline mode has no process
        # to kill, so it raises the unified death signal the supervisor
        # maps real deaths onto.
        trace.span("eco.worker", targets=",".join(targets),
                   failing=len(failing))
        if publisher is not None:
            publisher.heartbeat(force=True)
        if os.environ.get("REPRO_ECO_JOBS_INLINE") == "1":
            raise WorkerDiedError(
                f"fault injection: worker for {','.join(targets)} killed")
        os._exit(3)
    try:
        with trace.span("eco.worker", targets=",".join(targets),
                        failing=len(failing)):
            engine._repair_outputs(work, spec, list(failing), patch,
                                   per_output, rng, run,
                                   targets=set(targets),
                                   commit_log=result.commits)
    except ResourceBudgetExceeded as exc:
        # strict mode: ship telemetry and partial commits back, the
        # main process re-raises after absorbing them
        result.error = str(exc)
    result.counters = run.counters.as_dict()
    result.records = trace.records()
    result.degraded = run.degraded
    result.degrade_reason = run.degrade_reason
    if publisher is not None:
        publisher.close()
    return result


def partition_targets(failing: Sequence[str],
                      jobs: int) -> List[List[str]]:
    """Deal the failing outputs round-robin into ``jobs`` groups.

    ``failing`` arrives cone-size ordered (small first), so the deal
    balances expected work; empty groups are dropped.
    """
    groups: List[List[str]] = [[] for _ in range(jobs)]
    for i, port in enumerate(failing):
        groups[i % jobs].append(port)
    return [g for g in groups if g]


def _ops_applicable(work: Circuit, spec: Circuit, ops) -> bool:
    """All pins and sources of the ops exist in the replay circuits.

    A commit whose sources were cloned by an *earlier* worker commit
    that failed replay references nets the main circuit never grew;
    such commits cannot be replayed and are dropped.
    """
    for op in ops:
        if op.from_spec:
            if not (spec.has_net(op.source_net)
                    or op.source_net in spec.inputs):
                return False
        elif not work.has_net(op.source_net):
            return False
        if op.pin.is_output_port:
            if op.pin.owner not in work.outputs:
                return False
        elif op.pin.owner not in work.gates:
            return False
    return True


def _heartbeat_timeout(run: RunSupervisor) -> Optional[float]:
    """Per-task deadline for a worker's result, from the run budget.

    A worker that has not answered by the run deadline plus a small
    grace is presumed dead (hung child, lost pipe); ``None`` when the
    run has no deadline — the pool then waits, like the engine would.
    """
    left = run.budget.time_left()
    if left is None:
        return None
    return max(0.0, left) + HEARTBEAT_GRACE_S


def _dispatch_pool(payloads: List[tuple], pending: List[int],
                   extras: Dict[int, tuple], run: RunSupervisor,
                   ) -> Tuple[Dict[int, WorkerResult], Dict[int, str]]:
    """Run one round of partitions in real processes.

    One single-worker executor per partition, so one worker's death
    breaks only its own future — innocent partitions keep their
    results.  ``extras[i]`` is the per-dispatch payload tail (kill
    verdict, live-bus queue, worker id).  Returns ``(outcomes,
    deaths)`` keyed by partition index; a partition appears in exactly
    one of the two.
    """
    import concurrent.futures as cf
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool

    from repro.runtime.sync import safe_mp_context

    outcomes: Dict[int, WorkerResult] = {}
    deaths: Dict[int, str] = {}
    executors: Dict[int, ProcessPoolExecutor] = {}
    futures: Dict[int, cf.Future] = {}
    try:
        try:
            # an explicit start method: with the live-aggregator pump
            # thread running, fork would snapshot held locks into the
            # children (CC005); safe_mp_context keeps fork only while
            # the process is single-threaded
            mp_context = safe_mp_context()
            for i in pending:
                executors[i] = ProcessPoolExecutor(
                    max_workers=1, mp_context=mp_context)
                futures[i] = executors[i].submit(
                    _run_worker, payloads[i] + extras[i])
        except (OSError, ImportError) as exc:
            raise _PoolUnavailable(str(exc)) from exc
        for i in pending:
            try:
                outcomes[i] = futures[i].result(
                    timeout=_heartbeat_timeout(run))
            except BrokenProcessPool as exc:
                deaths[i] = f"worker process died: {exc or 'broken pool'}"
            except WorkerDiedError as exc:
                deaths[i] = str(exc)
            except cf.TimeoutError:
                futures[i].cancel()
                deaths[i] = "heartbeat deadline missed"
            except pickle.PicklingError as exc:
                raise _PoolUnavailable(str(exc)) from exc
            except OSError as exc:
                deaths[i] = f"worker I/O failure: {exc}"
    finally:
        for ex in executors.values():
            ex.shutdown(wait=False, cancel_futures=True)
    return outcomes, deaths


def _worker_id(targets: Sequence[str], attempt: int) -> str:
    return f"{','.join(targets)}@{attempt}"


def _run_partitions(payloads: List[tuple], run: RunSupervisor,
                    policy: RetryPolicy, inline: bool,
                    bus: Optional[LiveBus] = None,
                    aggregator: Optional[LiveAggregator] = None,
                    ) -> List[Optional[WorkerResult]]:
    """Supervised execution of every partition, with retry/quarantine.

    Returns one :class:`WorkerResult` per payload, or ``None`` at the
    indices whose partition was quarantined.  Raises
    :class:`_PoolUnavailable` when process pools cannot run at all.

    With a live ``bus``/``aggregator``, every dispatch streams its
    telemetry under a unique worker id; on a death the aggregator's
    buffered partial spans are grafted into the main trace and the last
    streamed counter snapshot is charged via
    :meth:`RunSupervisor.absorb_worker` — so quarantined partitions
    leave their pre-death telemetry in the run record.  Workers that
    return normally have their live buffer discarded (the shipped
    records absorbed by the caller are authoritative).
    """
    n = len(payloads)
    results: List[Optional[WorkerResult]] = [None] * n
    failures = [0] * n
    pending = list(range(n))
    bus_queue = bus.queue if bus is not None else None
    while pending:
        # observe the fault site at dispatch time, in the main process
        # (the injector's counters cannot cross a process boundary);
        # the verdict rides into the worker payload
        extras: Dict[int, tuple] = {}
        worker_ids: Dict[int, str] = {}
        for i in pending:
            fault = run.injector.observe(SITE_WORKER)
            marked = fault is not None and fault.payload == FAULT_KILL
            worker_ids[i] = _worker_id(payloads[i][4], failures[i] + 1)
            extras[i] = (marked, bus_queue, worker_ids[i])
        deaths: Dict[int, str] = {}
        if inline:
            outcomes: Dict[int, WorkerResult] = {}
            for i in pending:
                try:
                    outcomes[i] = _run_worker(payloads[i] + extras[i])
                except WorkerDiedError as exc:
                    deaths[i] = str(exc)
        else:
            outcomes, deaths = _dispatch_pool(payloads, pending,
                                              extras, run)
        if aggregator is not None:
            aggregator.pump()
        retry: List[int] = []
        for i in pending:
            if i not in deaths:
                results[i] = outcomes[i]
                if aggregator is not None:
                    aggregator.discard(worker_ids[i])
                continue
            failures[i] += 1
            targets = payloads[i][4]
            run.counters.worker_deaths += 1
            run.trace.event("worker.died", targets=",".join(targets),
                            deaths=failures[i], cause=deaths[i])
            logger.warning("worker for %s died (%d): %s",
                           ",".join(targets), failures[i], deaths[i])
            if aggregator is not None:
                partial = aggregator.flush_dead(worker_ids[i])
                if partial:
                    run.absorb_worker(partial, degraded=False)
            reason = None
            if policy.allows(failures[i]):
                delay = policy.sleep_within_budget(failures[i],
                                                   run.budget)
                if delay is not None:
                    run.counters.tasks_retried += 1
                    run.trace.event("task.retried",
                                    targets=",".join(targets),
                                    attempt=failures[i],
                                    backoff_s=round(delay, 3))
                    retry.append(i)
                    continue
                reason = "retry refused: backoff would eat the deadline"
            else:
                reason = f"worker died {failures[i]} times"
            for port in targets:
                run.quarantine(port, reason)
        pending = retry
    return results


def _verify_worker(payload):
    """Prove one output group of the final verification miter."""
    from repro.cec.equivalence import check_equivalence

    work, spec, group = payload
    return check_equivalence(work, spec, outputs=group)


def parallel_verify(work: Circuit, spec: Circuit, jobs: int):
    """Final full verification, fanned across output groups.

    Unlike search commits, verification verdicts need no replay: each
    worker proves its own output pairs on the same frozen circuits, so
    the conjunction of the group results *is* the whole-miter result.
    Returns the first failing group's result (counterexample included),
    ``EquivalenceResult(None)`` when any group went over budget, or
    ``EquivalenceResult(True)``.
    """
    from repro.cec.equivalence import EquivalenceResult, check_equivalence

    outputs = [p for p in work.outputs if p in spec.outputs]
    jobs = min(jobs, len(outputs))
    if jobs < 2:
        return check_equivalence(work, spec)
    groups = partition_targets(outputs, jobs)
    payloads = [(work, spec, group) for group in groups]
    if os.environ.get("REPRO_ECO_JOBS_INLINE") == "1":
        results = [_verify_worker(p) for p in payloads]
    else:
        try:
            from concurrent.futures import ProcessPoolExecutor

            from repro.runtime.sync import safe_mp_context
            with ProcessPoolExecutor(
                    max_workers=len(groups),
                    mp_context=safe_mp_context()) as pool:
                results = list(pool.map(_verify_worker, payloads))
        except (OSError, pickle.PicklingError, ImportError) as exc:
            logger.warning("parallel verification unavailable (%s); "
                           "verifying sequentially", exc)
            return check_equivalence(work, spec)
    unknown = False
    for result in results:
        if result.equivalent is False:
            return result
        if result.equivalent is None:
            unknown = True
    return EquivalenceResult(None if unknown else True)


def parallel_repair(engine, work: Circuit, spec: Circuit,
                    failing: List[str], patch, per_output: Dict[str, str],
                    run: RunSupervisor, journal=None, rng=None,
                    ) -> Tuple[Circuit, List[str]]:
    """Fan the failing outputs across supervised workers and merge.

    Returns the replayed work circuit and the outputs still failing
    (replay conflicts, worker misses and quarantined partitions fall
    through to the caller's sequential loop).  Raises
    :class:`ResourceBudgetExceeded` when a worker aborted in strict
    mode, after absorbing all telemetry.  Commits that survive replay
    are journaled when a checkpoint ``journal`` is given.
    """
    from repro.eco.validate import assert_patch_structure, validate_rewire

    config = engine.config
    jobs = min(config.jobs, len(failing))
    groups = partition_targets(failing, jobs)
    shares, _reserve = run.partition_shares(len(groups))
    payloads = []
    for group, share in zip(groups, shares):
        worker_config = replace(
            config, jobs=1, resume_from=None,
            deadline_s=share["deadline_s"],
            total_sat_budget=share["total_sat_budget"],
            total_bdd_nodes=share["total_bdd_nodes"])
        payloads.append((work, spec, worker_config, list(failing), group))
    policy = RetryPolicy(max_retries=config.worker_retries,
                         base_delay_s=config.retry_backoff_s,
                         seed=config.seed)

    inline = os.environ.get("REPRO_ECO_JOBS_INLINE") == "1"
    bus = aggregator = None
    if run.trace.enabled:
        bus = LiveBus.create(inline)
        if bus is not None:
            aggregator = LiveAggregator(
                run.trace, bus, registry=run.trace.metrics).start()
    try:
        supervised = _run_partitions(payloads, run, policy, inline,
                                     bus=bus, aggregator=aggregator)
    except _PoolUnavailable as exc:
        # no process pool available (restricted environments):
        # leave everything to the caller's sequential loop
        logger.warning("parallel search unavailable (%s); "
                       "falling back to sequential", exc)
        run.trace.event("eco.parallel_fallback", reason=str(exc))
        return work, failing
    finally:
        if aggregator is not None:
            aggregator.stop()
        if bus is not None:
            bus.close()
    results = [r for r in supervised if r is not None]

    strict_error: Optional[str] = None
    for result in results:
        run.absorb_worker(result.counters, degraded=result.degraded,
                          degrade_reason=result.degrade_reason)
        run.trace.absorb(result.records)
        if result.error is not None and strict_error is None:
            strict_error = result.error
    if strict_error is not None and not config.degrade_on_budget:
        raise ResourceBudgetExceeded(
            f"parallel worker aborted: {strict_error}")

    # replay every worker commit against the main circuit, re-validated
    # under the supervised solver: worker verdicts were computed against
    # a snapshot and may conflict with another group's commits
    failing_now = list(failing)
    replayed = rejected = 0
    for result in results:
        for port, how, ops in result.commits:
            run.checkpoint()
            if not _ops_applicable(work, spec, ops):
                rejected += 1
                run.trace.event("eco.replay_skip", output=port)
                continue
            outcome = validate_rewire(
                work, spec, ops, failing_now, patch.clone_map,
                sat_budget=config.sat_budget, target=port, run=run)
            if not outcome.valid:
                rejected += 1
                run.trace.event("eco.replay_reject", output=port,
                                ops=len(ops))
                continue
            if journal is not None:
                journal.record_commit(
                    port, how, ops, outcome.fixed,
                    rng_state=rng.getstate() if rng is not None else None,
                    sat_spent=run.budget.sat_spent,
                    bdd_spent=run.budget.bdd_spent)
            new_work = outcome.patched
            assert_patch_structure(new_work, ops)
            work = new_work
            patch.record(ops, outcome.clone_map, outcome.new_gates)
            for fixed_port in outcome.fixed:
                per_output[fixed_port] = (
                    how if fixed_port == port else "fixed-by-earlier")
            fixed = set(outcome.fixed)
            failing_now = [p for p in failing_now if p not in fixed]
            replayed += 1
    run.trace.event("eco.parallel_merged", workers=len(results),
                    replayed=replayed, rejected=rejected,
                    remaining=len(failing_now))
    logger.info("parallel phase: %d workers, %d commits replayed, "
                "%d rejected, %d outputs remaining",
                len(results), replayed, rejected, len(failing_now))
    return work, failing_now
