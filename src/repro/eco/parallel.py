"""Parallel per-output rectification search (``EcoConfig.jobs``).

With ``jobs > 1`` the non-equivalent outputs are partitioned into
groups and each group is searched by a separate worker process running
the same :meth:`SysEco._repair_outputs` loop the sequential engine
uses.  Every worker gets

* a pickled snapshot of the work-in-progress circuit and the spec
  (derived caches are stripped on pickling and rebuilt lazily),
* the **full** failing list — validation must know every currently
  failing output, or candidates that also touch another group's
  failing outputs would be wrongly rejected as damaging a "passing"
  output — plus its own ``targets`` subset to drive,
* a share of the run budget: SAT conflicts and BDD nodes are divided
  ``remaining // (jobs + 1)`` (one share held back for the main
  process), wall-clock deadline is concurrent and passed whole.

Workers return their commit logs, counters, and trace records.  The
main process absorbs the telemetry into the run supervisor and
*replays* each commit against its own evolving circuit under the
supervised validator — two workers can commit patches that conflict
(e.g. both rewire the same shared gate), so a worker's verdict is
never trusted across process boundaries.  Commits that fail replay are
dropped; their outputs simply stay failing and the sequential loop
that follows the parallel phase repairs them with the reserve budget.

``REPRO_ECO_JOBS_INLINE=1`` forces workers to run in-process (same
code path minus the pool), which keeps multi-worker merge behavior
deterministic for tests.
"""

from __future__ import annotations

import logging
import os
import pickle
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ResourceBudgetExceeded
from repro.netlist.circuit import Circuit
from repro.obs.trace import Trace
from repro.runtime.supervisor import RunSupervisor

logger = logging.getLogger("repro.eco")


@dataclass
class WorkerResult:
    """Everything a search worker ships back to the main process."""

    targets: Tuple[str, ...]
    #: ``(port, how, ops)`` per commit, in commit order
    commits: List[Tuple[str, str, list]] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    records: List[dict] = field(default_factory=list)
    degraded: bool = False
    degrade_reason: Optional[str] = None
    #: budget exception message when the worker aborted in strict mode
    error: Optional[str] = None


def _run_worker(payload) -> WorkerResult:
    """One worker: repair ``targets`` on a private copy of the run.

    Module-level so it pickles for :class:`ProcessPoolExecutor`; also
    called directly in inline mode.
    """
    import random

    from repro.eco.engine import SysEco
    from repro.eco.patch import Patch

    work, spec, config, failing, targets = payload
    engine = SysEco(config)
    trace = Trace(name=f"worker:{','.join(targets)}")
    run = RunSupervisor.from_config(config, trace=trace)
    trace.set_counters(run.counters)
    rng = random.Random(config.seed)
    patch = Patch()
    per_output: Dict[str, str] = {}
    result = WorkerResult(targets=tuple(targets))
    try:
        with trace.span("eco.worker", targets=",".join(targets),
                        failing=len(failing)):
            engine._repair_outputs(work, spec, list(failing), patch,
                                   per_output, rng, run,
                                   targets=set(targets),
                                   commit_log=result.commits)
    except ResourceBudgetExceeded as exc:
        # strict mode: ship telemetry and partial commits back, the
        # main process re-raises after absorbing them
        result.error = str(exc)
    result.counters = run.counters.as_dict()
    result.records = trace.records()
    result.degraded = run.degraded
    result.degrade_reason = run.degrade_reason
    return result


def partition_targets(failing: Sequence[str],
                      jobs: int) -> List[List[str]]:
    """Deal the failing outputs round-robin into ``jobs`` groups.

    ``failing`` arrives cone-size ordered (small first), so the deal
    balances expected work; empty groups are dropped.
    """
    groups: List[List[str]] = [[] for _ in range(jobs)]
    for i, port in enumerate(failing):
        groups[i % jobs].append(port)
    return [g for g in groups if g]


def _ops_applicable(work: Circuit, spec: Circuit, ops) -> bool:
    """All pins and sources of the ops exist in the replay circuits.

    A commit whose sources were cloned by an *earlier* worker commit
    that failed replay references nets the main circuit never grew;
    such commits cannot be replayed and are dropped.
    """
    for op in ops:
        if op.from_spec:
            if not (spec.has_net(op.source_net)
                    or op.source_net in spec.inputs):
                return False
        elif not work.has_net(op.source_net):
            return False
        if op.pin.is_output_port:
            if op.pin.owner not in work.outputs:
                return False
        elif op.pin.owner not in work.gates:
            return False
    return True


def _verify_worker(payload):
    """Prove one output group of the final verification miter."""
    from repro.cec.equivalence import check_equivalence

    work, spec, group = payload
    return check_equivalence(work, spec, outputs=group)


def parallel_verify(work: Circuit, spec: Circuit, jobs: int):
    """Final full verification, fanned across output groups.

    Unlike search commits, verification verdicts need no replay: each
    worker proves its own output pairs on the same frozen circuits, so
    the conjunction of the group results *is* the whole-miter result.
    Returns the first failing group's result (counterexample included),
    ``EquivalenceResult(None)`` when any group went over budget, or
    ``EquivalenceResult(True)``.
    """
    from repro.cec.equivalence import EquivalenceResult, check_equivalence

    outputs = [p for p in work.outputs if p in spec.outputs]
    jobs = min(jobs, len(outputs))
    if jobs < 2:
        return check_equivalence(work, spec)
    groups = partition_targets(outputs, jobs)
    payloads = [(work, spec, group) for group in groups]
    if os.environ.get("REPRO_ECO_JOBS_INLINE") == "1":
        results = [_verify_worker(p) for p in payloads]
    else:
        try:
            from concurrent.futures import ProcessPoolExecutor
            with ProcessPoolExecutor(max_workers=len(groups)) as pool:
                results = list(pool.map(_verify_worker, payloads))
        except (OSError, pickle.PicklingError, ImportError) as exc:
            logger.warning("parallel verification unavailable (%s); "
                           "verifying sequentially", exc)
            return check_equivalence(work, spec)
    unknown = False
    for result in results:
        if result.equivalent is False:
            return result
        if result.equivalent is None:
            unknown = True
    return EquivalenceResult(None if unknown else True)


def parallel_repair(engine, work: Circuit, spec: Circuit,
                    failing: List[str], patch, per_output: Dict[str, str],
                    run: RunSupervisor) -> Tuple[Circuit, List[str]]:
    """Fan the failing outputs across workers and merge the results.

    Returns the replayed work circuit and the outputs still failing
    (replay conflicts and worker misses fall through to the caller's
    sequential loop).  Raises :class:`ResourceBudgetExceeded` when a
    worker aborted in strict mode, after absorbing all telemetry.
    """
    from repro.eco.validate import assert_patch_structure, validate_rewire

    config = engine.config
    jobs = min(config.jobs, len(failing))
    groups = partition_targets(failing, jobs)
    share = run.partition_budget(len(groups))
    worker_config = replace(
        config, jobs=1,
        deadline_s=share["deadline_s"],
        total_sat_budget=share["total_sat_budget"],
        total_bdd_nodes=share["total_bdd_nodes"])
    payloads = [(work, spec, worker_config, list(failing), group)
                for group in groups]

    inline = os.environ.get("REPRO_ECO_JOBS_INLINE") == "1"
    if inline:
        results = [_run_worker(p) for p in payloads]
    else:
        try:
            from concurrent.futures import ProcessPoolExecutor
            with ProcessPoolExecutor(max_workers=len(groups)) as pool:
                results = list(pool.map(_run_worker, payloads))
        except (OSError, pickle.PicklingError, ImportError) as exc:
            # no process pool available (restricted environments):
            # leave everything to the caller's sequential loop
            logger.warning("parallel search unavailable (%s); "
                           "falling back to sequential", exc)
            run.trace.event("eco.parallel_fallback", reason=str(exc))
            return work, failing

    strict_error: Optional[str] = None
    for result in results:
        run.absorb_worker(result.counters, degraded=result.degraded,
                          degrade_reason=result.degrade_reason)
        run.trace.absorb(result.records)
        if result.error is not None and strict_error is None:
            strict_error = result.error
    if strict_error is not None and not config.degrade_on_budget:
        raise ResourceBudgetExceeded(
            f"parallel worker aborted: {strict_error}")

    # replay every worker commit against the main circuit, re-validated
    # under the supervised solver: worker verdicts were computed against
    # a snapshot and may conflict with another group's commits
    failing_now = list(failing)
    replayed = rejected = 0
    for result in results:
        for port, how, ops in result.commits:
            run.checkpoint()
            if not _ops_applicable(work, spec, ops):
                rejected += 1
                run.trace.event("eco.replay_skip", output=port)
                continue
            outcome = validate_rewire(
                work, spec, ops, failing_now, patch.clone_map,
                sat_budget=config.sat_budget, target=port, run=run)
            if not outcome.valid:
                rejected += 1
                run.trace.event("eco.replay_reject", output=port,
                                ops=len(ops))
                continue
            new_work = outcome.patched
            assert_patch_structure(new_work, ops)
            work = new_work
            patch.record(ops, outcome.clone_map, outcome.new_gates)
            for fixed_port in outcome.fixed:
                per_output[fixed_port] = (
                    how if fixed_port == port else "fixed-by-earlier")
            fixed = set(outcome.fixed)
            failing_now = [p for p in failing_now if p not in fixed]
            replayed += 1
    run.trace.event("eco.parallel_merged", workers=len(results),
                    replayed=replayed, rejected=rejected,
                    remaining=len(failing_now))
    logger.info("parallel phase: %d workers, %d commits replayed, "
                "%d rejected, %d outputs remaining",
                len(results), replayed, rejected, len(failing_now))
    return work, failing_now
