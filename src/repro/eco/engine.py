"""The syseco rectification engine: overall flow of Section 5.2.

``RewireRectification`` iterates over the non-equivalent output pairs
of the current implementation ``C`` and revised specification ``C'``
(smallest cones first) and, per output:

1. builds an error-biased symbolic sampling domain;
2. enumerates feasible rectification point-sets via ``H(t)``;
3. ranks candidate rewiring nets per point (structural filter +
   rectification utility);
4. solves ``Xi(c)`` for valid rewiring choices, cheapest first;
5. validates each choice on the full domain with a resource-constrained
   SAT solver, favoring choices that fix the most outputs and rejecting
   any that damage an already-correct output.

A guaranteed fallback (rewiring the output port itself to a clone of
the revised function — the completeness argument of Section 3.3)
handles outputs the search cannot fix within budget.  Afterwards the
patch inputs are refined by sweeping against existing logic.

Every resource-bounded step runs under a per-run
:class:`~repro.runtime.supervisor.RunSupervisor`: a wall-clock deadline
and aggregate SAT/BDD budgets, adaptive per-call SAT escalation, and —
unless strict mode is configured — *graceful degradation*: when a
run-level budget blows mid-search, the partial patch is kept and every
remaining failing output is force-completed via the Section 3.3
fallback, yielding a fully verified but ``degraded`` result instead of
an exception.
"""

from __future__ import annotations

import logging
import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import (
    BddNodeLimitError,
    EcoError,
    JournalError,
    PatchStructureError,
    ReproError,
    ResourceBudgetExceeded,
)
from repro.bdd.manager import BddManager
from repro.netlist import simd
from repro.netlist.circuit import Circuit, Pin
from repro.netlist.gate import WORD_MASK
from repro.netlist.simulate import patterns_to_words, simulate_words
from repro.netlist.traverse import (
    levelize,
    support_masks,
    topological_order,
    transitive_fanin,
)
from repro.cec.equivalence import check_equivalence, nonequivalent_outputs
from repro.eco.choices import (
    enumerate_rewiring_choices,
    make_clone_aware_cost,
)
from repro.eco.config import EcoConfig
from repro.eco.incremental import IncrementalValidator
from repro.eco.patch import Patch, RectificationResult, RewireOp
from repro.eco.points import feasible_point_sets
from repro.eco.rewiring import RewireCandidate, RewiringContext
from repro.eco.samples import collect_error_samples
from repro.eco.sampling import SamplingDomain
from repro.eco.sweep import refine_patch_inputs
from repro.eco.validate import (
    SimulationFilter,
    ValidationOutcome,
    assert_patch_structure,
    validate_rewire,
)
from repro.obs.sampler import maybe_sampler
from repro.obs.trace import Trace, ensure_trace
from repro.runtime.clock import now
from repro.runtime.faultinject import FaultInjector
from repro.runtime.supervisor import RunSupervisor


logger = logging.getLogger("repro.eco")


class SysEco:
    """Rewire-based ECO rectification engine.

    One engine instance carries a configuration and can rectify many
    designs; all state of a run lives in its
    :class:`~repro.runtime.supervisor.RunSupervisor`, so one engine can
    serve concurrent ``rectify`` calls.
    """

    #: candidates pre-screened per batched simulation screen call
    SCREEN_BATCH = 8

    def __init__(self, config: Optional[EcoConfig] = None):
        self.config = config or EcoConfig()
        # backend choice is process-global so pickled plans re-dispatch
        # correctly inside parallel workers (each worker constructs its
        # own SysEco from the worker config)
        simd.set_backend(self.config.sim_backend)

    # ------------------------------------------------------------------
    def rectify(self, impl: Circuit, spec: Circuit,
                injector: Optional[FaultInjector] = None,
                trace: Optional[Trace] = None,
                journal=None) -> RectificationResult:
        """Rectify ``impl`` to match ``spec``; returns the result record.

        Both circuits must share primary-input and output-port names.
        Raises :class:`EcoError` when the final verification cannot
        prove full equivalence.  When a run-level budget (deadline,
        aggregate SAT conflicts, aggregate BDD nodes) is exhausted the
        run degrades gracefully — remaining failing outputs are
        force-completed via the guaranteed fallback and the result is
        marked ``degraded`` — unless ``config.degrade_on_budget`` is
        False, in which case :class:`ResourceBudgetExceeded` propagates.

        ``injector`` arms deterministic faults at the supervised call
        sites (tests of the degradation paths use this).  ``trace``
        receives the run's phase spans (see :mod:`repro.obs`); the
        finished trace is attached to the result.  ``journal`` (a
        :class:`~repro.eco.checkpoint.RunJournal`) makes the run
        durable: every commit is journaled write-ahead, and a journal
        opened for resume replays a dead run's commits before the
        search continues — see :mod:`repro.eco.checkpoint`.
        """
        started = now()
        trace = ensure_trace(trace)
        self._check_interfaces(impl, spec)
        config = self.config
        if config.sync_debug:
            from repro.runtime.sync import enable_sync_debug
            enable_sync_debug(registry=trace.metrics)
        rng = random.Random(config.seed)
        run = RunSupervisor.from_config(config, injector=injector,
                                        trace=trace)
        trace.set_counters(run.counters)

        sampler = maybe_sampler(
            trace, counters=run.counters, bdd_stats=run.live_bdd_stats,
            interval_s=config.sample_interval_s,
            stall_window_s=config.stall_window_s,
            gauge_hook=run.publish_gauges,
            trace_malloc=config.trace_malloc)
        try:
            if sampler is not None:
                sampler.start()
            with trace.span("eco.rectify", impl=impl.name,
                            outputs=len(impl.outputs)):
                result = self._rectify_run(impl, spec, rng, run, started,
                                           journal=journal)
        finally:
            if sampler is not None:
                # the sampler thread must never outlive the run, even
                # when teardown's final sample raises (e.g. a broken
                # trace exporter) while the run itself is unwinding a
                # failure — log and keep the original exception
                try:
                    sampler.stop()
                except Exception:
                    logger.exception("telemetry sampler teardown failed")
        trace.meta.update(
            impl=impl.name,
            counters=run.counters.as_dict(),
            degraded=result.degraded,
            degrade_reason=result.degrade_reason,
            wall_seconds=result.runtime_seconds,
            # the budget clock observes injected clock faults, so the
            # supervised elapsed time is the one regression checks trust
            supervised_elapsed_s=run.budget.elapsed(),
        )
        if trace.enabled:
            result.trace = trace
        return result

    def _rectify_run(self, impl: Circuit, spec: Circuit,
                     rng: random.Random, run: RunSupervisor,
                     started: float, journal=None) -> RectificationResult:
        config = self.config
        trace = run.trace
        work = impl.copy()
        patch = Patch()
        per_output: Dict[str, str] = {}

        with trace.span("eco.diagnose") as dsp:
            failing = nonequivalent_outputs(work, spec)
            failing = self._order_by_cone(work, failing)
            dsp.tag(failing=len(failing))
        logger.info("rectifying %s: %d of %d outputs non-equivalent",
                    impl.name, len(failing), len(impl.outputs))

        if journal is not None:
            journal.bind(run.injector, metrics=trace.metrics)
            if journal.resuming:
                journal.check_resumable(impl.name, config, failing)
                with trace.span("eco.resume",
                                commits=len(journal.commits)) as rsp:
                    work, failing = self._replay_journal(
                        work, spec, failing, patch, per_output, rng,
                        run, journal)
                    rsp.tag(remaining=len(failing))
            else:
                journal.start(impl.name, config, failing)

        if config.jobs > 1 and len(failing) > 1:
            from repro.eco.parallel import parallel_repair
            with trace.span("eco.parallel", jobs=config.jobs,
                            failing=len(failing)) as psp:
                try:
                    work, failing = parallel_repair(
                        self, work, spec, failing, patch, per_output,
                        run, journal=journal, rng=rng)
                except ResourceBudgetExceeded as exc:
                    if not config.degrade_on_budget:
                        raise
                    run.mark_degraded(str(exc))
                psp.tag(remaining=len(failing))
            failing = self._order_by_cone(work, failing)

        work, failing = self._repair_outputs(work, spec, failing, patch,
                                             per_output, rng, run,
                                             journal=journal)

        with trace.span("eco.refine"):
            refine_patch_inputs(work, patch.cloned_gates,
                                seed=self.config.seed)
        if self.config.resynthesis:
            from repro.eco.resynth import resubstitute_patch
            with trace.span("eco.resynth") as rsp:
                resubs, patch_gates = resubstitute_patch(
                    work, patch.cloned_gates, seed=self.config.seed)
                rsp.tag(resubstitutions=resubs)
            patch.cloned_gates = patch_gates
            run.counters.resubstitutions = resubs

        with trace.span("cec.verify_final") as vsp:
            if config.jobs > 1:
                from repro.eco.parallel import parallel_verify
                verification = parallel_verify(work, spec, config.jobs)
            else:
                verification = check_equivalence(work, spec)
            vsp.tag(equivalent=verification.equivalent)
        if verification.equivalent is not True:
            raise EcoError(
                "final verification failed; counterexample: "
                f"{verification.counterexample}")
        logger.info("run summary: %s", run.summary())
        # a quarantined output forced a fallback for infrastructure
        # reasons; the result is degraded even when no budget blew
        degraded = run.degraded or bool(run.quarantined)
        degrade_reason = run.degrade_reason
        if degrade_reason is None and run.quarantined:
            degrade_reason = "quarantined: " + ", ".join(
                sorted(run.quarantined))
        if journal is not None:
            journal.finish("degraded" if degraded else "ok")
        return RectificationResult(
            patched=work,
            patch=patch,
            verified_outputs=tuple(sorted(work.outputs)),
            runtime_seconds=now() - started,
            per_output=per_output,
            counters=run.counters,
            degraded=degraded,
            degrade_reason=degrade_reason,
        )

    # ------------------------------------------------------------------
    def _replay_journal(self, work: Circuit, spec: Circuit,
                        failing: List[str], patch: Patch,
                        per_output: Dict[str, str], rng: random.Random,
                        run: RunSupervisor, journal
                        ) -> Tuple[Circuit, List[str]]:
        """Re-prove and re-apply a dead run's journaled commits.

        A journal is never trusted blindly: each commit's op set is
        re-validated under the supervised validator before it is
        applied (a commit that no longer validates means the inputs
        changed — :class:`JournalError`).  After the last commit the
        engine RNG is restored to the journaled stream position and the
        journaled cumulative budget spend is topped up, so the
        continued search is bit-identical to the uninterrupted run.
        """
        config = self.config
        replayed = 0
        last = None
        for commit in journal.commits:
            try:
                outcome = validate_rewire(
                    work, spec, commit.ops, failing, patch.clone_map,
                    sat_budget=config.sat_budget, target=commit.port,
                    run=run)
            except ResourceBudgetExceeded as exc:
                if not config.degrade_on_budget:
                    raise
                run.mark_degraded(str(exc))
                # the commit was proven once already; finish the replay
                # unsupervised rather than tear the patch in half
                outcome = validate_rewire(
                    work, spec, commit.ops, failing, patch.clone_map,
                    sat_budget=None, target=commit.port)
            except ReproError as exc:
                # an op that no longer even applies (missing gate or
                # pin) means the designs on disk are not the ones the
                # journal was recorded against
                raise JournalError(
                    f"journaled commit #{commit.seq} for output "
                    f"{commit.port!r} no longer applies to these "
                    f"designs ({exc}); the input netlists changed"
                ) from exc
            if not outcome.valid or commit.port not in outcome.fixed:
                raise JournalError(
                    f"journaled commit #{commit.seq} for output "
                    f"{commit.port!r} failed re-validation; the "
                    "journal does not match the input designs")
            work = outcome.patched
            assert_patch_structure(work, commit.ops)
            patch.record(commit.ops, outcome.clone_map,
                         outcome.new_gates)
            for fixed_port in outcome.fixed:
                per_output[fixed_port] = (
                    commit.how if fixed_port == commit.port
                    else "fixed-by-earlier")
            fixed = set(outcome.fixed)
            failing = [p for p in failing if p not in fixed]
            run.counters.replayed_commits += 1
            replayed += 1
            last = commit
        if last is not None:
            if last.rng_state is not None:
                from repro.eco.checkpoint import decode_rng_state
                rng.setstate(decode_rng_state(last.rng_state))
            # continue with the dead run's *remaining* budget: top the
            # journaled cumulative spend up over what replay charged
            run.budget.charge_sat(
                max(0, last.sat_spent - run.budget.sat_spent))
            run.budget.charge_bdd(
                max(0, last.bdd_spent - run.budget.bdd_spent))
        run.trace.event("eco.resumed", replayed=replayed,
                        remaining=len(failing))
        logger.info("resumed run: %d commit(s) replayed, %d output(s) "
                    "remaining", replayed, len(failing))
        return work, failing

    # ------------------------------------------------------------------
    def _repair_outputs(self, work: Circuit, spec: Circuit,
                        failing: List[str], patch: Patch,
                        per_output: Dict[str, str], rng: random.Random,
                        run: RunSupervisor,
                        targets: Optional[Set[str]] = None,
                        commit_log: Optional[List] = None,
                        journal=None
                        ) -> Tuple[Circuit, List[str]]:
        """Drive the per-output repair loop to completion.

        The workhorse of the run: picks the next failing output, runs
        the symbolic search (joint first when configured), falls back
        when the search comes up empty, commits the winning patch and
        repeats.  With ``targets`` only those outputs are driven (other
        failing outputs pass through untouched — parallel workers
        restrict their search this way while still validating against
        the full failing set).  ``commit_log`` receives one
        ``(port, how, ops)`` entry per commit so a parent process can
        replay the patch sequence.

        Returns the patched circuit and the outputs still failing.
        """
        config = self.config
        trace = run.trace
        while True:
            port = next((p for p in failing
                         if targets is None or p in targets), None)
            if port is None:
                break
            with trace.span("eco.output", output=port) as osp:
                outcome = None
                how = "rewire"
                quarantined = port in run.quarantined
                if not run.degraded and not quarantined:
                    try:
                        run.checkpoint()
                        if config.joint_outputs > 1 and len(failing) > 1:
                            ordered = [port] + [p for p in failing
                                                if p != port]
                            group = self._joint_group(work, ordered)
                            if len(group) > 1:
                                with trace.span(
                                        "eco.joint", output=port,
                                        group=len(group)) as jsp:
                                    outcome = self._rectify_joint(
                                        work, spec, group, failing,
                                        patch, rng, run=run)
                                    jsp.tag(
                                        committed=outcome is not None)
                                if outcome is not None:
                                    how = "joint-rewire"
                        if outcome is None:
                            outcome = self._rectify_output(
                                work, spec, port, failing, patch, rng,
                                run)
                    except ResourceBudgetExceeded as exc:
                        if not config.degrade_on_budget:
                            raise
                        run.mark_degraded(str(exc))
                        logger.warning(
                            "budget exhausted on output %s; degrading: "
                            "remaining outputs force-completed via "
                            "fallback", port)
                        outcome = None
                if outcome is None:
                    forced = run.degraded or quarantined
                    how = "fallback-degraded" if forced else "fallback"
                    with trace.span("eco.fallback", output=port,
                                    degraded=forced):
                        outcome = self._fallback(work, spec, port,
                                                 failing, patch)
                    run.counters.fallbacks += 1
                    if forced:
                        run.counters.degraded_outputs += 1
                logger.info(
                    "output %s: %s with %d op(s), %d cloned gate(s), "
                    "fixes %s", port, how, len(outcome.committed_ops),
                    len(outcome.new_gates), ", ".join(outcome.fixed))
                logger.debug("ops: %s",
                             "; ".join(op.describe()
                                       for op in outcome.committed_ops))
                if journal is not None:
                    # write-ahead: the journal record lands before the
                    # in-memory commit, so a crash at any point either
                    # replays this commit or re-finds it — never loses
                    # it half-applied
                    journal.record_commit(
                        port, how, outcome.committed_ops, outcome.fixed,
                        rng_state=rng.getstate(),
                        sat_spent=run.budget.sat_spent,
                        bdd_spent=run.budget.bdd_spent)
                work = outcome.patched
                # post-commit structural assertion: the lint screen
                # should make this unreachable
                assert_patch_structure(work, outcome.committed_ops)
                patch.record(outcome.committed_ops, outcome.clone_map,
                             outcome.new_gates)
                for fixed_port in outcome.fixed:
                    per_output[fixed_port] = (
                        how if fixed_port == port else "fixed-by-earlier")
                fixed = set(outcome.fixed)
                failing = [p for p in failing if p not in fixed]
                if commit_log is not None:
                    commit_log.append(
                        (port, how, list(outcome.committed_ops)))
                osp.tag(how=how, ops=len(outcome.committed_ops),
                        fixed=len(fixed))
        return work, failing

    # ------------------------------------------------------------------
    def _check_interfaces(self, impl: Circuit, spec: Circuit) -> None:
        if set(spec.inputs) - set(impl.inputs):
            raise EcoError("specification reads inputs the implementation "
                           "does not have")
        if set(impl.outputs) != set(spec.outputs):
            raise EcoError("output ports of C and C' must correspond")

    def _order_by_cone(self, impl: Circuit,
                       ports: Sequence[str]) -> List[str]:
        """Failing outputs sorted by increasing logical complexity."""
        sizes = {
            p: len(transitive_fanin(impl, [impl.outputs[p]]))
            for p in ports
        }
        return sorted(ports, key=lambda p: (sizes[p], p))

    # ------------------------------------------------------------------
    def _rectify_output(self, work: Circuit, spec: Circuit, port: str,
                        failing: Sequence[str], patch: Patch,
                        rng: random.Random,
                        run: RunSupervisor) -> Optional["_Commit"]:
        """Steps 1-5 of the flow for one failing output."""
        config = self.config
        with run.trace.span("eco.samples", output=port) as sp:
            samples = self._exact_domain_samples(work, spec, port)
            exact = samples is not None
            if samples is None:
                samples = collect_error_samples(
                    work, spec, port, config.num_samples, rng,
                    error_bias=config.error_bias,
                    diversify=config.sample_diversify)
            sp.tag(count=len(samples), exact=exact)
        if not samples:
            return None

        commit = self._search_at_scale(work, spec, port, failing, patch,
                                       samples, run)
        if commit is not None or exact:
            return commit

        # counterexample-guided refinement: every sampled candidate was
        # refuted on the full domain; fold the refuting assignments in
        # and search once more on the sharper domain
        if config.cegar_refinement and run.cegar_cex:
            seen = {tuple(sorted(s.items())) for s in samples}
            refined = list(samples)
            for cex in run.cegar_cex:
                key = tuple(sorted(cex.items()))
                if key not in seen and len(refined) < 64:
                    seen.add(key)
                    refined.append(cex)
            if len(refined) > len(samples):
                run.counters.cegar_rounds += 1
                run.trace.event("cegar.refine", output=port,
                                added=len(refined) - len(samples))
                return self._search_at_scale(work, spec, port, failing,
                                             patch, refined, run)
        return None

    def _search_at_scale(self, work: Circuit, spec: Circuit, port: str,
                         failing: Sequence[str], patch: Patch,
                         samples: List[Dict[str, bool]],
                         run: RunSupervisor) -> Optional["_Commit"]:
        """Run the symbolic search, shrinking the pin set on BDD blowup."""
        run.cegar_cex = []
        max_pins = self.config.max_candidate_pins
        while max_pins >= 4:
            if not run.note_attempt(port):
                logger.debug("output %s: attempt cap reached", port)
                return None
            span = run.trace.span("eco.search", output=port,
                                  max_pins=max_pins)
            try:
                with span:
                    return self._search_with_domain(
                        work, spec, port, failing, patch, samples,
                        max_pins, run)
            except BddNodeLimitError:
                run.trace.event("bdd.node_limit", output=port,
                                max_pins=max_pins)
                max_pins //= 2  # shrink the symbolic problem and retry
        return None

    def _exact_domain_samples(self, work: Circuit, spec: Circuit,
                              port: str) -> Optional[List[Dict[str, bool]]]:
        """Exhaustive domain when the failing cone's support is small.

        Returns None when exact mode is off or the support is too wide;
        otherwise all assignments of the joint structural support with
        the remaining inputs tied low — the Section 4 computation in
        its exact form.
        """
        limit = self.config.exact_domain_max_inputs
        if limit <= 0:
            return None
        from repro.netlist.traverse import input_support
        from repro.eco.sampling import exhaustive_assignments
        relevant = sorted(
            input_support(work, work.outputs[port])
            | input_support(spec, spec.outputs[port]))
        if len(relevant) > limit:
            return None
        fixed = {n: False for n in work.inputs if n not in relevant}
        return exhaustive_assignments(relevant, fixed=fixed)

    def _search_with_domain(self, work: Circuit, spec: Circuit, port: str,
                            failing: Sequence[str], patch: Patch,
                            samples: List[Dict[str, bool]],
                            max_pins: int,
                            run: RunSupervisor) -> Optional["_Commit"]:
        config = self.config
        manager = BddManager(
            node_limit=run.open_bdd(config.bdd_node_limit),
            node_hook=run.node_hook)
        run.adopt_bdd(manager)
        try:
            return self._search_in_manager(
                work, spec, port, failing, patch, samples, max_pins,
                run, manager)
        finally:
            run.close_bdd(manager)

    def _search_in_manager(self, work: Circuit, spec: Circuit, port: str,
                           failing: Sequence[str], patch: Patch,
                           samples: List[Dict[str, bool]],
                           max_pins: int, run: RunSupervisor,
                           manager: BddManager) -> Optional["_Commit"]:
        config = self.config
        domain = SamplingDomain(manager, samples, inputs=work.inputs,
                                checkpoint=run.checkpoint)
        impl_z = domain.cast_circuit(work)
        spec_z = domain.cast_circuit(spec)

        input_index = {n: i for i, n in enumerate(work.inputs)}
        impl_supports = support_masks(work, input_index)
        spec_supports = support_masks(spec, input_index)
        impl_levels = levelize(work)
        spec_levels = levelize(spec)

        ctx = RewiringContext(
            work, spec, port, domain, config, impl_z, spec_z,
            impl_supports, spec_supports, impl_levels, spec_levels,
            trace=run.trace)

        with run.trace.span("eco.rank_pins", output=port) as psp:
            candidate_pins = self._select_candidate_pins(
                work, spec, port, samples, max_pins)
            psp.tag(pins=len(candidate_pins))
        if not candidate_pins:
            return None
        spec_value = spec_z[spec.outputs[port]]

        cost_fn = self._make_cost_fn(work, spec, port, impl_levels,
                                     patch.clone_map)
        sim_filter = self._make_sim_filter(work, spec, samples,
                                           counters=run.counters)
        inc_box: List[Optional[IncrementalValidator]] = [None]

        best: Optional[_Commit] = None
        validations = 0
        max_validations = 6 * config.max_points
        for m in range(1, config.max_points + 1):
            point_sets = feasible_point_sets(
                work, port, domain, candidate_pins, spec_value, m,
                prime_limit=config.prime_limit,
                pointset_limit=config.pointset_limit,
                checkpoint=run.checkpoint, trace=run.trace)
            run.counters.point_sets += len(point_sets)
            for pins in point_sets:
                run.checkpoint()
                cand_lists = [ctx.candidates_for_pin(p) for p in pins]
                choices = enumerate_rewiring_choices(
                    work, port, domain, pins, cand_lists, spec_value,
                    limit=config.choice_limit, cost_fn=cost_fn,
                    trace=run.trace)
                run.counters.choices += len(choices)
                # choices are cost-ordered; the simulation screen drops
                # sampling false positives cheaply, and only the first
                # few survivors per point-set get a SAT proof.  The sim
                # screen runs in lookahead batches so the vector
                # backend can score SCREEN_BATCH candidates per array
                # evaluation; results are consumed in choice order, so
                # the SAT decision sequence matches the scalar loop.
                sat_tried = 0
                choice_iter = iter(choices)
                pending: List[Tuple[List[RewireOp], bool]] = []
                while True:
                    if sat_tried >= 3:
                        break
                    if not pending:
                        batch: List[List[RewireOp]] = []
                        for choice in choice_iter:
                            ops = [
                                RewireOp(pin, cand.net, cand.from_spec)
                                for pin, cand in zip(pins, choice)
                                if not cand.trivial
                            ]
                            if not ops:
                                continue
                            if not self._lint_screen(run, ctx, ops,
                                                     port):
                                continue
                            batch.append(ops)
                            if len(batch) >= self.SCREEN_BATCH:
                                break
                        if not batch:
                            break
                        oks = self._screen_batch(run, sim_filter,
                                                 batch, port, failing)
                        pending = list(zip(batch, oks))
                        pending.reverse()
                    ops, sim_ok = pending.pop()
                    if not sim_ok:
                        run.counters.sim_rejects += 1
                        continue
                    sat_tried += 1
                    run.counters.sat_validations += 1
                    with run.trace.span("eco.validate", output=port,
                                        ops=len(ops)) as vsp:
                        outcome = self._validate_candidate(
                            run, inc_box, work, spec, candidate_pins,
                            ops, failing, patch.clone_map, port)
                        vsp.tag(valid=outcome.valid,
                                fixed=len(outcome.fixed))
                    if not outcome.valid and \
                            outcome.target_counterexample is not None:
                        run.cegar_cex.append(
                            outcome.target_counterexample)
                    validations += 1
                    if outcome.valid and port in outcome.fixed:
                        commit = _Commit.from_outcome(outcome, ops)
                        if best is None or commit.score > best.score:
                            best = commit
                        # a pure rewire (no new logic) cannot be beaten
                        # on patch size; commit it immediately
                        if not commit.outcome.new_gates:
                            return best
                    if validations >= max_validations:
                        return best
            # grow the point-set only while the best patch still clones
            # a noticeable amount of logic
            if best is not None and len(best.outcome.new_gates) <= 2 * m:
                return best
        return best

    # ------------------------------------------------------------------
    # joint multi-output rectification
    # ------------------------------------------------------------------
    def _joint_group(self, work: Circuit,
                     failing: Sequence[str]) -> List[str]:
        """Failing outputs whose cones overlap the head output's cone."""
        head = failing[0]
        head_cone = transitive_fanin(work, [work.outputs[head]])
        head_gates = {n for n in head_cone if n in work.gates}
        group = [head]
        for other in failing[1:]:
            if len(group) >= self.config.joint_outputs:
                break
            cone = transitive_fanin(work, [work.outputs[other]])
            union = len(head_cone | cone)
            overlap = len(head_cone & cone) / union if union else 0.0
            shared_gates = head_gates & cone
            if overlap >= 0.2 or shared_gates:
                group.append(other)
        return group

    def _rectify_joint(self, work: Circuit, spec: Circuit,
                       group: Sequence[str], failing: Sequence[str],
                       patch: Patch, rng: random.Random,
                       run: Optional[RunSupervisor] = None
                       ) -> Optional["_Commit"]:
        """One point-set and rewiring fixing a whole output group."""
        from repro.eco.choices import enumerate_rewiring_choices_joint
        from repro.eco.points import feasible_point_sets_joint

        if run is None:
            run = RunSupervisor.from_config(self.config)
        config = self.config
        per_port = max(2, config.num_samples // len(group))
        samples: List[Dict[str, bool]] = []
        seen = set()
        for p in group:
            for s in collect_error_samples(work, spec, p, per_port, rng,
                                           error_bias=config.error_bias):
                key = tuple(sorted(s.items()))
                if key not in seen:
                    seen.add(key)
                    samples.append(s)
        if not samples:
            return None
        samples = samples[:64]

        manager: Optional[BddManager] = None
        try:
            manager = BddManager(
                node_limit=run.open_bdd(config.bdd_node_limit),
                node_hook=run.node_hook)
            run.adopt_bdd(manager)
            domain = SamplingDomain(manager, samples, inputs=work.inputs,
                                    checkpoint=run.checkpoint)
            impl_z = domain.cast_circuit(work)
            spec_z = domain.cast_circuit(spec)
            input_index = {n: i for i, n in enumerate(work.inputs)}
            impl_supports = support_masks(work, input_index)
            spec_supports = support_masks(spec, input_index)
            impl_levels = levelize(work)
            spec_levels = levelize(spec)
            ctx = RewiringContext(
                work, spec, group[0], domain, config, impl_z, spec_z,
                impl_supports, spec_supports, impl_levels, spec_levels,
                ports=group, trace=run.trace)

            pins: List[Pin] = []
            per_port_pins = max(4, config.max_candidate_pins
                                // len(group))
            for p in group:
                for pin in self._select_candidate_pins(
                        work, spec, p, samples, per_port_pins):
                    if pin not in pins:
                        pins.append(pin)
            spec_values = {p: spec_z[spec.outputs[p]] for p in group}
            cost_fn = self._make_cost_fn(work, spec, group[0],
                                         impl_levels, patch.clone_map)
            sim_filter = self._make_sim_filter(work, spec, samples,
                                               counters=run.counters)
            inc_box: List[Optional[IncrementalValidator]] = [None]

            best: Optional[_Commit] = None
            validations = 0
            for m in range(1, config.max_points + 1):
                point_sets = feasible_point_sets_joint(
                    work, spec_values, domain, pins, m,
                    prime_limit=config.prime_limit,
                    pointset_limit=config.pointset_limit,
                    checkpoint=run.checkpoint, trace=run.trace)
                for point_set in point_sets:
                    cand_lists = [ctx.candidates_for_pin(p)
                                  for p in point_set]
                    choices = enumerate_rewiring_choices_joint(
                        work, spec_values, domain, point_set, cand_lists,
                        limit=config.choice_limit, cost_fn=cost_fn,
                        trace=run.trace)
                    for choice in choices[:4]:
                        ops = [RewireOp(pin, cand.net, cand.from_spec)
                               for pin, cand in zip(point_set, choice)
                               if not cand.trivial]
                        if not ops:
                            continue
                        if not self._lint_screen(run, ctx, ops,
                                                 group[0]):
                            continue
                        if not all(self._screen(run, sim_filter, ops, p,
                                                failing)
                                   for p in group):
                            continue
                        validations += 1
                        with run.trace.span(
                                "eco.validate", output=group[0],
                                ops=len(ops), joint=True) as vsp:
                            outcome = self._validate_candidate(
                                run, inc_box, work, spec, pins, ops,
                                failing, patch.clone_map, group[0])
                            vsp.tag(valid=outcome.valid,
                                    fixed=len(outcome.fixed))
                        if outcome.valid and \
                                set(group) <= set(outcome.fixed):
                            # economy guard: a joint commit must beat
                            # what per-output repair would plausibly
                            # cost — fewer rewires than outputs fixed,
                            # or no new logic at all; otherwise the
                            # single-output path with clone reuse wins
                            economical = (
                                not outcome.new_gates
                                or len(ops) < len(outcome.fixed))
                            if not economical:
                                continue
                            commit = _Commit.from_outcome(outcome, ops)
                            if best is None or commit.score > best.score:
                                best = commit
                            if not commit.outcome.new_gates:
                                run.counters.joint_commits += 1
                                return best
                        if validations >= 6:
                            if best is not None:
                                run.counters.joint_commits += 1
                            return best
                if best is not None:
                    break
            if best is not None:
                run.counters.joint_commits += 1
            return best
        except BddNodeLimitError:
            return None  # joint problem too big; single-output path
        finally:
            if manager is not None:
                run.close_bdd(manager)

    # ------------------------------------------------------------------
    def _validate_candidate(self, run: RunSupervisor, inc_box: List,
                            work: Circuit, spec: Circuit,
                            pins: Sequence[Pin], ops: List[RewireOp],
                            failing: Sequence[str],
                            clone_map: Dict[str, str],
                            port: str) -> ValidationOutcome:
        """Full-domain validation through the incremental miter.

        The :class:`IncrementalValidator` for this search is built
        lazily — only when a candidate actually survives the screens —
        and kept in ``inc_box`` so every later candidate of the same
        search is a single assumption-based solve on the one persistent
        miter.  Rewires outside the registered cut, and runs with
        ``config.incremental_validate`` off, go through the legacy
        copy-and-re-encode oracle instead.
        """
        config = self.config
        if config.incremental_validate:
            validator = inc_box[0]
            if validator is None:
                validator = IncrementalValidator(
                    work, spec, pins, cache=run.cnf_cache,
                    counters=run.counters)
                inc_box[0] = validator
            if validator.covers(ops):
                return validator.validate(
                    ops, failing, clone_map,
                    sat_budget=config.sat_budget, target=port, run=run)
        return validate_rewire(work, spec, ops, failing, clone_map,
                               sat_budget=config.sat_budget,
                               target=port, run=run)

    # ------------------------------------------------------------------
    @staticmethod
    def _screen(run: RunSupervisor, sim_filter: SimulationFilter,
                ops: List[RewireOp], port: str,
                failing: Sequence[str]) -> bool:
        """One simulation-screen decision, recorded as a trace span."""
        with run.trace.span("sim.screen", output=port) as sp:
            ok = sim_filter.passes(ops, port, failing)
            sp.tag(passed=ok)
            return ok

    @staticmethod
    def _screen_batch(run: RunSupervisor,
                      sim_filter: SimulationFilter,
                      ops_batch: Sequence[List[RewireOp]], port: str,
                      failing: Sequence[str]) -> List[bool]:
        """Batched simulation-screen decisions, one trace span.

        Result-identical per candidate to :meth:`_screen`; the batch
        shape only changes how many candidates one array evaluation
        scores on the vector backend.
        """
        with run.trace.span("sim.screen", output=port,
                            batch=len(ops_batch)) as sp:
            oks = sim_filter.passes_batch(ops_batch, port, failing)
            sp.tag(passed=sum(1 for ok in oks if ok))
            return oks

    @staticmethod
    def _lint_screen(run: RunSupervisor, ctx: RewiringContext,
                     ops: List[RewireOp], port: str) -> bool:
        """Static legality screen before any simulation or SAT spend.

        The context's :class:`~repro.lint.patch_rules.PatchScreen`
        proves the candidate cannot close a combinational cycle and
        that every pin/source is structurally sound — rejecting here
        costs a graph walk over already-built adjacency instead of a
        solver call.
        """
        with run.trace.span("lint.screen", output=port,
                            ops=len(ops)) as sp:
            report = ctx.screen.check_ops(ops)
            ok = report.ok
            sp.tag(passed=ok)
            if not ok:
                sp.tag(codes=",".join(sorted(report.codes())))
        run.counters.lint_screens += 1
        if not ok:
            run.counters.lint_rejects += 1
        return ok

    # ------------------------------------------------------------------
    def _make_sim_filter(self, work: Circuit, spec: Circuit,
                         samples: List[Dict[str, bool]],
                         counters=None) -> SimulationFilter:
        """Error samples plus fresh random words for the cheap screen."""
        rng = random.Random(self.config.seed ^ 0x53C0)
        words_list = [patterns_to_words(work.inputs, samples[:64])]
        for _ in range(2):
            words_list.append({
                n: rng.getrandbits(64) for n in work.inputs
            })
        return SimulationFilter(work, spec, words_list,
                                counters=counters)

    # ------------------------------------------------------------------
    def _make_cost_fn(self, work: Circuit, spec: Circuit, port: str,
                      impl_levels: Dict[str, int],
                      clone_map: Dict[str, str]):
        level_term = None
        if self.config.level_aware:
            out_level = impl_levels[work.outputs[port]]

            def level_term(pin: Pin, cand: RewireCandidate) -> float:
                if cand.trivial:
                    return 0.0
                pin_level = 0 if pin.is_output_port else \
                    impl_levels.get(pin.owner, out_level)
                # penalize sources deeper than the logic they feed
                return 0.5 * max(0, cand.level - max(pin_level - 1, 0))

        return make_clone_aware_cost(spec, clone_map,
                                     level_term=level_term)

    # ------------------------------------------------------------------
    def _select_candidate_pins(self, work: Circuit, spec: Circuit,
                               port: str, samples: List[Dict[str, bool]],
                               max_pins: int) -> List[Pin]:
        """Rank the sink pins of the failing cone as candidate points.

        Nets are scored by *flip credit*: the number of error samples on
        which complementing the net corrects the output (64-way parallel
        resimulation).  Pins inherit the score of their driving net;
        the output port pin is always included (completeness).
        """
        out_net = work.outputs[port]
        cone = transitive_fanin(work, [out_net])
        cone_order = topological_order(work, roots=[out_net])

        samples = samples[:64]  # one simulation word for the heuristic
        words = patterns_to_words(work.inputs, samples)
        n_mask = (1 << len(samples)) - 1
        base_values = simulate_words(work, words)
        spec_words = {n: words.get(n, 0) for n in spec.inputs}
        spec_values = simulate_words(spec, spec_words)
        error_mask = (base_values[out_net] ^
                      spec_values[spec.outputs[port]]) & n_mask

        # score only the nets closest to the output when cones are huge
        scored_nets = [n for n in cone]
        if len(scored_nets) > 600:
            lv = levelize(work)
            scored_nets.sort(key=lambda n: -lv[n])
            scored_nets = scored_nets[:600]
        scored_set = set(scored_nets)

        from repro.netlist.gate import eval_gate
        flip_credit: Dict[str, int] = {}
        for net in scored_nets:
            override = {net: base_values[net] ^ WORD_MASK}
            for gname in cone_order:
                gate = work.gates[gname]
                if gname == net:
                    continue
                if not any(f in override for f in gate.fanins):
                    continue
                operands = [override.get(f, base_values[f])
                            for f in gate.fanins]
                value = eval_gate(gate.gtype, operands)
                if value != base_values[gname]:
                    override[gname] = value
            flipped_out = override.get(out_net, base_values[out_net])
            corrected = (~(flipped_out ^ spec_values[spec.outputs[port]])
                         & error_mask)
            flip_credit[net] = bin(corrected & n_mask).count("1")

        # collect gate input pins of the cone, ranked by driver credit
        pins: List[Tuple[int, int, Pin]] = []
        levels = levelize(work)
        for gname in cone:
            gate = work.gates.get(gname)
            if gate is None:
                continue
            for idx, fanin in enumerate(gate.fanins):
                credit = flip_credit.get(fanin, 0)
                if credit <= 0:
                    continue
                pins.append((-credit, levels[fanin], Pin.gate(gname, idx)))
        pins.sort(key=lambda item: (item[0], item[1], item[2]))
        selected = [p for _, _, p in pins[:max_pins - 1]]
        selected.append(Pin.output(port))
        return selected

    # ------------------------------------------------------------------
    def _fallback(self, work: Circuit, spec: Circuit, port: str,
                  failing: Sequence[str], patch: Patch) -> "_Commit":
        """Completeness fallback: drive the output port from a clone of
        the revised function (always valid by Proposition 1).

        Deliberately unsupervised: this is the path degradation relies
        on, so it must complete regardless of budgets (no conflict
        limit, no deadline check).
        """
        ops = [RewireOp(Pin.output(port), spec.outputs[port],
                        from_spec=True)]
        outcome = validate_rewire(work, spec, ops, failing,
                                  patch.clone_map, sat_budget=None)
        if not outcome.valid:
            raise EcoError(
                f"fallback rectification failed for output {port!r}")
        return _Commit.from_outcome(outcome, ops)


class _Commit:
    """A validated rewire bundled with its committed operations."""

    def __init__(self, outcome: ValidationOutcome,
                 committed_ops: List[RewireOp]):
        self.outcome = outcome
        self.committed_ops = committed_ops
        # favor most outputs fixed, then least new logic
        self.score = (len(outcome.fixed), -len(outcome.new_gates))

    @staticmethod
    def from_outcome(outcome: ValidationOutcome,
                     ops: List[RewireOp]) -> "_Commit":
        return _Commit(outcome, list(ops))

    @property
    def patched(self) -> Circuit:
        if self.outcome.patched is None:
            raise PatchStructureError(
                "commit built from an invalid validation outcome "
                "(no patched circuit)")
        return self.outcome.patched

    @property
    def fixed(self) -> Tuple[str, ...]:
        return self.outcome.fixed

    @property
    def clone_map(self) -> Dict[str, str]:
        return self.outcome.clone_map

    @property
    def new_gates(self) -> Set[str]:
        return self.outcome.new_gates


def rectify(impl: Circuit, spec: Circuit,
            config: Optional[EcoConfig] = None,
            injector: Optional[FaultInjector] = None,
            trace: Optional[Trace] = None,
            journal=None) -> RectificationResult:
    """Convenience one-shot: ``SysEco(config).rectify(impl, spec)``."""
    return SysEco(config).rectify(impl, spec, injector=injector,
                                  trace=trace, journal=journal)
