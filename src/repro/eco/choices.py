"""Rewiring-choice selection: the ``Xi(c)`` computation (Section 4.4).

Given a rectification point-set ``(p_1 ... p_m)`` with ordered candidate
rewiring nets ``S_i`` per point, decision words ``c_i`` parameterize the
consistency relation::

    R(z, y, c) = AND_i AND_k ( c_i^k -> (y_i == r_ik(z)) )

and Theorem 1 turns into the characteristic function of all valid
rewire operations::

    Xi(c) = forall z, y ( (L -> h) & (h -> U) ) & valid(c)
    L = f' & R ,  U = f' | ~R

computed in the sampling domain.  Concrete choices are then read off
``Xi``: combinations are walked in increasing patch-cost order and kept
when ``Xi`` evaluates true on their code — cheap point evaluations on
the BDD instead of cube enumeration, so the cost order is exact.
"""

from __future__ import annotations

import itertools
import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bdd.manager import FALSE, TRUE
from repro.netlist.circuit import Circuit, Pin
from repro.netlist.traverse import topological_order
from repro.eco.rewiring import RewireCandidate
from repro.eco.points import compute_h_function
from repro.eco.sampling import SamplingDomain
from repro.obs.trace import ensure_trace

#: a choice assigns one candidate to every point of the set
Choice = Tuple[RewireCandidate, ...]

CostFn = Callable[[Pin, RewireCandidate], float]


def default_cost(pin: Pin, candidate: RewireCandidate) -> float:
    """Patch-size flavored cost: trivial < existing net < cloned logic."""
    if candidate.trivial:
        return 0.0
    if not candidate.from_spec:
        return 1.0
    return 2.0 + 0.05 * candidate.level


def make_clone_aware_cost(spec: Circuit, clone_map: Dict[str, str],
                          level_term: Optional[Callable[
                              [Pin, RewireCandidate], float]] = None
                          ) -> CostFn:
    """Cost that charges specification candidates by clone size.

    A candidate from ``C'`` costs one unit per gate that would actually
    be instantiated — gates already cloned by earlier rewires (present
    in ``clone_map``) are free, which makes the engine converge on
    shared patch logic across outputs.
    """
    cache: Dict[str, int] = {}

    def clone_gates(net: str) -> int:
        hit = cache.get(net)
        if hit is not None:
            return hit
        if net in spec.inputs:
            cache[net] = 0
            return 0
        count = sum(
            1 for g in topological_order(spec, roots=[net])
            if g not in clone_map
        )
        cache[net] = count
        return count

    def cost(pin: Pin, candidate: RewireCandidate) -> float:
        if candidate.trivial:
            base = 0.0
        elif not candidate.from_spec:
            base = 1.0
        else:
            base = 1.2 + 0.6 * clone_gates(candidate.net)
        if level_term is not None:
            base += level_term(pin, candidate)
        return base

    return cost


def enumerate_rewiring_choices(
        impl: Circuit, port: str, domain: SamplingDomain,
        pins: Sequence[Pin],
        candidates: Sequence[Sequence[RewireCandidate]],
        spec_value: int,
        limit: int = 16,
        cost_fn: Optional[CostFn] = None,
        trace=None) -> List[Choice]:
    """Valid rewiring choices for one point-set, cheapest first.

    Args:
        impl: current implementation.
        port: the failing output being rectified.
        domain: the sampling domain (fresh ``y``/``c`` variables are
            allocated on its manager).
        pins: the rectification point-set.
        candidates: ordered candidate list per pin (index 0 should be
            the trivial candidate).
        spec_value: ``f'(g(z))`` BDD of the revised output.
        limit: maximum number of choices returned.
        cost_fn: choice ordering; defaults to :func:`default_cost`.

    Returns:
        Up to ``limit`` choices whose codes satisfy ``Xi(c)``, ordered
        by total cost.  The all-trivial choice is excluded (it denotes
        'change nothing' and cannot rectify a failing output).
    """
    return enumerate_rewiring_choices_joint(
        impl, {port: spec_value}, domain, pins, candidates,
        limit=limit, cost_fn=cost_fn, trace=trace)


def enumerate_rewiring_choices_joint(
        impl: Circuit, spec_values,
        domain: SamplingDomain,
        pins: Sequence[Pin],
        candidates: Sequence[Sequence[RewireCandidate]],
        limit: int = 16,
        cost_fn: Optional[CostFn] = None,
        trace=None) -> List[Choice]:
    """Joint multi-output version of :func:`enumerate_rewiring_choices`.

    ``spec_values`` maps each output port to its revised function in
    the sampling domain; a valid choice must satisfy Theorem 1 for
    every listed output with the *same* rewiring (the shared ``R``).
    """
    with ensure_trace(trace).span(
            "choices.enumerate", outputs=",".join(spec_values),
            pins=len(pins)) as _span:
        result = _enumerate_choices_joint(
            impl, spec_values, domain, pins, candidates, limit, cost_fn)
        _span.tag(choices=len(result))
        return result


def _enumerate_choices_joint(
        impl: Circuit, spec_values,
        domain: SamplingDomain,
        pins: Sequence[Pin],
        candidates: Sequence[Sequence[RewireCandidate]],
        limit: int,
        cost_fn: Optional[CostFn]) -> List[Choice]:
    from repro.eco.points import compute_h_functions

    manager = domain.manager
    cost_fn = cost_fn or default_cost
    m = len(pins)
    ports = list(spec_values)

    y_vars = [manager.add_var() for _ in range(m)]
    y_nodes = [manager.var(v) for v in y_vars]
    h_map = compute_h_functions(impl, ports, domain, pins, y_nodes,
                                selector=None)

    # decision words c_i, MSB first
    c_words: List[List[int]] = []
    for cand_list in candidates:
        bits = max(1, math.ceil(math.log2(len(cand_list)))) \
            if len(cand_list) > 1 else 1
        c_words.append([manager.add_var() for _ in range(bits)])

    def code_cube(i: int, k: int) -> int:
        word = c_words[i]
        bits = len(word)
        return manager.cube({
            word[b]: bool((k >> (bits - 1 - b)) & 1) for b in range(bits)
        })

    r_relation = TRUE
    valid_c = TRUE
    for i, cand_list in enumerate(candidates):
        word_valid = FALSE
        for k, cand in enumerate(cand_list):
            sel = code_cube(i, k)
            consistent = manager.xnor(y_nodes[i], cand.z_function)
            r_relation = manager.and_(
                r_relation, manager.implies(sel, consistent))
            word_valid = manager.or_(word_valid, sel)
        valid_c = manager.and_(valid_c, word_valid)

    not_r = manager.not_(r_relation)
    f = TRUE
    for port in ports:
        spec_value = spec_values[port]
        h = h_map[port]
        lower = manager.and_(spec_value, r_relation)
        upper = manager.or_(spec_value, not_r)
        f = manager.and_(f, manager.and_(
            manager.implies(lower, h), manager.implies(h, upper)))
    xi = manager.and_(manager.forall(f, list(domain.z_vars) + y_vars),
                      valid_c)
    if xi == FALSE:
        return []

    # walk candidate combinations cheapest-total-cost first
    indexed: List[List[Tuple[float, int]]] = []
    for i, cand_list in enumerate(candidates):
        pairs = [(cost_fn(pins[i], cand), k)
                 for k, cand in enumerate(cand_list)]
        pairs.sort()
        indexed.append(pairs)

    combos = []
    for combo in itertools.product(*indexed):
        total = sum(c for c, _ in combo)
        combos.append((total, tuple(k for _, k in combo)))
    combos.sort()

    choices: List[Choice] = []
    for _, ks in combos:
        if all(candidates[i][k].trivial for i, k in enumerate(ks)):
            continue
        assignment: Dict[int, bool] = {}
        for i, k in enumerate(ks):
            word = c_words[i]
            bits = len(word)
            for b in range(bits):
                assignment[word[b]] = bool((k >> (bits - 1 - b)) & 1)
        if manager.evaluate(xi, _pad(assignment, manager.support(xi))):
            choices.append(tuple(
                candidates[i][k] for i, k in enumerate(ks)))
            if len(choices) >= limit:
                break
    return choices


def _pad(assignment: Dict[int, bool], support) -> Dict[int, bool]:
    out = dict(assignment)
    for v in support:
        out.setdefault(v, False)
    return out
