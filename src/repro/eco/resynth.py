"""Rectification logic resynthesis (the paper's future-work direction).

Section 7 names 'rectification logic synthesis' as the next improvement
to the flow.  This module implements it as *patch resubstitution*:
after the rewires are committed and the sweep has reused exact
duplicates, each remaining cloned net is re-expressed — when possible —
as a single gate over nets that already exist in the implementation:

* ``c == ~s``            -> one inverter;
* ``c == g(s1, s2)``     -> one 2-input gate, ``g`` drawn from the
  AND/OR/XOR families with optional input inversions (the NPN-ish
  variants that one physical cell could realize).

Candidates are screened with multi-round simulation signatures and
confirmed by SAT before any edit, so the pass is strictly
function-preserving.  Every successful resubstitution removes at least
one cloned gate (deep clones collapse transitively).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.netlist.circuit import Circuit
from repro.netlist.gate import GateType, WORD_MASK
from repro.netlist.simulate import random_patterns, simulate_words
from repro.netlist.traverse import (
    support_masks,
    topological_order,
    transitive_fanout,
)
from repro.cec.sweep import prune_dangling
from repro.sat import Solver, UNSAT
from repro.sat.tseitin import CircuitEncoder

# (gate type, invert first operand, invert second operand); the
# double-inversion variants are redundant (AND(~a,~b) == NOR(a,b)), so
# every listed form adds at most one inverter.
_TWO_INPUT_FORMS: Tuple[Tuple[GateType, bool, bool], ...] = (
    (GateType.AND, False, False), (GateType.AND, True, False),
    (GateType.AND, False, True),
    (GateType.OR, False, False), (GateType.OR, True, False),
    (GateType.OR, False, True),
    (GateType.XOR, False, False), (GateType.XNOR, False, False),
    (GateType.NAND, False, False), (GateType.NOR, False, False),
)


def _word_signatures(circuit: Circuit, rounds: int,
                     seed: int) -> Dict[str, List[int]]:
    """Per-net list of simulation words (one per round)."""
    import random
    rng = random.Random(seed)
    order = topological_order(circuit)
    sigs: Dict[str, List[int]] = {n: [] for n in circuit.nets()}
    for _ in range(rounds):
        words = random_patterns(circuit.inputs, rng)
        values = simulate_words(circuit, words, order)
        for net in sigs:
            sigs[net].append(values[net])
    return sigs


def _form_words(form: Tuple[GateType, bool, bool],
                a: Sequence[int], b: Sequence[int]) -> List[int]:
    gtype, inv_a, inv_b = form
    out = []
    for wa, wb in zip(a, b):
        if inv_a:
            wa = ~wa & WORD_MASK
        if inv_b:
            wb = ~wb & WORD_MASK
        if gtype is GateType.AND:
            w = wa & wb
        elif gtype is GateType.OR:
            w = wa | wb
        elif gtype is GateType.XOR:
            w = wa ^ wb
        elif gtype is GateType.XNOR:
            w = ~(wa ^ wb) & WORD_MASK
        elif gtype is GateType.NAND:
            w = ~(wa & wb) & WORD_MASK
        else:  # NOR
            w = ~(wa | wb) & WORD_MASK
        out.append(w)
    return out


class _Prover:
    """Lazy SAT instance proving net-vs-expression equalities."""

    def __init__(self, circuit: Circuit, budget: Optional[int]):
        self.solver = Solver()
        self.encoder = CircuitEncoder(self.solver)
        self.varmap = self.encoder.encode(circuit)
        self.budget = budget

    def equal_direct(self, target: str, source: str) -> bool:
        eq = self.encoder.equality(self.varmap[target],
                                   self.varmap[source])
        return self.solver.solve(assumptions=[-eq],
                                 conflict_budget=self.budget) == UNSAT

    def equal_to_inverter(self, target: str, source: str) -> bool:
        eq = self.encoder.equality(self.varmap[target],
                                   -self.varmap[source])
        return self.solver.solve(assumptions=[-eq],
                                 conflict_budget=self.budget) == UNSAT

    def equal_to_form(self, target: str,
                      form: Tuple[GateType, bool, bool],
                      a: str, b: str) -> bool:
        gtype, inv_a, inv_b = form
        va = self.varmap[a] * (-1 if inv_a else 1)
        vb = self.varmap[b] * (-1 if inv_b else 1)
        out = self.encoder.encode_gate(gtype, [va, vb])
        eq = self.encoder.equality(self.varmap[target], out)
        return self.solver.solve(assumptions=[-eq],
                                 conflict_budget=self.budget) == UNSAT


def resubstitute_patch(patched: Circuit, cloned_gates: Set[str],
                       rounds: int = 4, seed: int = 131,
                       max_pool: int = 20,
                       conflict_budget: Optional[int] = 20000
                       ) -> Tuple[int, Set[str]]:
    """Re-express cloned patch logic over existing nets, in place.

    Args:
        patched: the rectified implementation (edited in place).
        cloned_gates: gate names the patch instantiated.
        rounds: signature rounds for candidate screening.
        seed: signature seed.
        max_pool: cap on existing nets paired per target.
        conflict_budget: SAT budget per equality proof.

    Returns:
        ``(resubstitutions, patch_gates)`` — the second element is the
        up-to-date set of patch-owned gates: surviving clones plus the
        single gates this pass materialized.
    """
    alive = {g for g in cloned_gates if g in patched.gates}
    if not alive:
        return 0, set()

    sigs = _word_signatures(patched, rounds, seed)
    supports = support_masks(patched)
    prover = _Prover(patched, conflict_budget)
    resubs = 0
    added: Set[str] = set()

    def freed_estimate(target: str) -> int:
        """Patch gates that die if ``target``'s sinks move elsewhere:
        the target plus its single-sink chains of upstream clones."""
        total = 1
        for f in patched.gates[target].fanins:
            if f in alive and f in patched.gates and \
                    patched.sinks(f) == [p for p in patched.sinks(f)
                                         if p.kind == "gate"
                                         and p.owner == target]:
                total += freed_estimate(f)
        return total

    # deepest clones first: replacing a deep clone frees its whole cone
    order = [g for g in topological_order(patched) if g in alive]
    for target in reversed(order):
        if target not in patched.gates or not patched.sinks(target):
            continue
        gate = patched.gates[target]
        if gate.gtype.is_constant:
            continue
        budget_gates = freed_estimate(target)
        target_sig = sigs[target]
        target_support = supports[target]
        forbidden = transitive_fanout(patched, [target])

        # candidate pool: existing (non-clone) nets inside the target's
        # support whose own support is contained in it, shallow first
        pool: List[str] = []
        for net in patched.nets():
            if net in alive or net in forbidden:
                continue
            if supports[net] & ~target_support:
                continue
            pool.append(net)
            if len(pool) >= max_pool * 3:
                break
        pool = pool[: max_pool * 3]

        gates_before = set(patched.gates)
        replacement = _find_replacement(
            patched, prover, sigs, target, target_sig, pool, max_pool,
            budget_gates)
        if replacement is None:
            continue
        new_gates = set(patched.gates) - gates_before
        added |= new_gates
        patched.replace_net(target, replacement)
        resubs += 1
        # the new gates participate in later searches
        for name in sorted(new_gates,
                           key=lambda n: len(patched.gates[n].fanins)):
            gate_new = patched.gates[name]
            operands = [sigs[f] for f in gate_new.fanins]
            sigs[name] = _eval_sig(gate_new.gtype, operands)
            supports[name] = 0
            for f in gate_new.fanins:
                supports[name] |= supports[f]

    if resubs:
        prune_dangling(patched)
    patch_gates = {g for g in (alive | added) if g in patched.gates}
    return resubs, patch_gates


def _eval_sig(gtype: GateType, operands: Sequence[Sequence[int]]
              ) -> List[int]:
    from repro.netlist.gate import eval_gate
    rounds = len(operands[0])
    return [eval_gate(gtype, [op[r] for op in operands])
            for r in range(rounds)]


def _find_replacement(patched: Circuit, prover: _Prover,
                      sigs: Dict[str, List[int]], target: str,
                      target_sig: List[int], pool: Sequence[str],
                      max_pool: int, budget_gates: int) -> Optional[str]:
    """One confirmed replacement net for ``target``, or None.

    ``budget_gates`` is the estimated number of patch gates that die
    when the target's sinks move; a replacement is only built when it
    costs strictly fewer gates than it frees (direct reuse is free).
    The returned net may be a freshly added single gate; gates are only
    added once SAT has confirmed the equality.
    """
    # direct reuse of an existing net: always a win
    for net in pool:
        if sigs[net] == target_sig and prover.equal_direct(target, net):
            return net

    inv_sig = [~w & WORD_MASK for w in target_sig]
    # single inverter: costs 1 gate, pays off when it frees more than
    # one gate or demotes a multi-input clone to an inverter
    if budget_gates > 1 or len(patched.gates[target].fanins) >= 2:
        for net in pool:
            if sigs[net] == inv_sig and \
                    prover.equal_to_inverter(target, net):
                return patched.not_(net, name=_fresh(patched,
                                                     f"rs${target}"))

    # one 2-input gate over a pool pair (costs 1 gate + the inverter)
    ranked = sorted(
        pool,
        key=lambda n: -_agreement(sigs[n], target_sig))[:max_pool]
    for i, a in enumerate(ranked):
        for b in ranked[i + 1:]:
            for form in _TWO_INPUT_FORMS:
                cost = 1 + int(form[1]) + int(form[2])
                if cost >= budget_gates:
                    continue
                if _form_words(form, sigs[a], sigs[b]) != target_sig:
                    continue
                if prover.equal_to_form(target, form, a, b):
                    return _materialize(patched, form, a, b, target)
    return None


def _agreement(sig: Sequence[int], target: Sequence[int]) -> int:
    same = 0
    for wa, wb in zip(sig, target):
        same += bin(~(wa ^ wb) & WORD_MASK).count("1")
    return same


def _materialize(patched: Circuit, form: Tuple[GateType, bool, bool],
                 a: str, b: str, target: str) -> str:
    gtype, inv_a, inv_b = form
    if inv_a:
        a = patched.not_(a, name=_fresh(patched, f"rs${target}$na"))
    if inv_b:
        b = patched.not_(b, name=_fresh(patched, f"rs${target}$nb"))
    return patched.add(gtype, [a, b],
                       name=_fresh(patched, f"rs${target}"))


def _fresh(circuit: Circuit, base: str) -> str:
    name = base
    while circuit.has_net(name):
        name += "_"
    return name
