"""Patch data model: rewire operations and Table-2 style attributes.

A patch is the complete record of an ECO: the rewire operations
``p_1/s_1, ..., p_m/s_m`` committed by the engine, plus the gates cloned
from the specification ``C'`` into the implementation when a rewiring
net ``s_i`` lives in ``C'`` (Proposition 1: 'its logic copy is
instantiated in C').

Patch attributes follow the paper's Table 2 columns:

* **outputs** — sink pins the patch drives (the rectification points);
* **gates** — logic gates instantiated by the patch (constants
  excluded, as a constant is a net tie, not a cell);
* **inputs** — distinct pre-existing implementation nets the patch
  reads (as rewiring sources or as fanins of cloned logic);
* **nets** — distinct nets belonging to the patch: cloned nets,
  constant ties and pre-existing nets used directly as sources.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.netlist.circuit import Circuit, Pin
from repro.netlist.gate import GateType
from repro.runtime.counters import RunCounters


@dataclass(frozen=True)
class RewireOp:
    """One elementary rewiring ``pin/source``.

    ``source_net`` names a net in the implementation when ``from_spec``
    is False, or in the specification when True (its cone gets cloned
    when the op is applied).
    """

    pin: Pin
    source_net: str
    from_spec: bool = False

    def describe(self) -> str:
        where = "C'" if self.from_spec else "C"
        if self.pin.is_output_port:
            target = f"output {self.pin.owner}"
        else:
            target = f"{self.pin.owner}[{self.pin.index}]"
        return f"{target} / {self.source_net} ({where})"


@dataclass(frozen=True)
class PatchStats:
    """Patch attribute counts as reported in Table 2."""

    inputs: int
    outputs: int
    gates: int
    nets: int

    def row(self) -> str:
        return (f"{self.inputs:>6} {self.outputs:>7} {self.gates:>6} "
                f"{self.nets:>6}")


class Patch:
    """Accumulates committed rewires and cloned specification logic."""

    def __init__(self):
        self.ops: List[RewireOp] = []
        #: spec net -> name of its clone in the patched implementation
        self.clone_map: Dict[str, str] = {}
        #: names of gates the patch added to the implementation
        self.cloned_gates: Set[str] = set()

    def record(self, ops: List[RewireOp], clone_map: Dict[str, str],
               new_gates: Set[str]) -> None:
        self.ops.extend(ops)
        self.clone_map.update(clone_map)
        self.cloned_gates.update(new_gates)

    @property
    def rewired_pins(self) -> List[Pin]:
        return [op.pin for op in self.ops]

    def stats(self, patched: Circuit) -> PatchStats:
        """Patch attributes measured on the patched implementation.

        Cloned gates removed by later sweeping are not counted; the
        stats reflect the logic that actually ships.
        """
        alive_clones = {g for g in self.cloned_gates if g in patched.gates}
        const_clones = {
            g for g in alive_clones
            if patched.gates[g].gtype.is_constant
        }
        logic_clones = alive_clones - const_clones

        boundary_inputs: Set[str] = set()
        for g in logic_clones:
            for f in patched.gates[g].fanins:
                if f not in alive_clones:
                    boundary_inputs.add(f)
        direct_sources: Set[str] = set()
        for op in self.ops:
            current = patched.pin_driver(op.pin) if _pin_exists(
                patched, op.pin) else op.source_net
            if current not in alive_clones:
                direct_sources.add(current)
        # constants are ties, not readable inputs
        def is_const(net: str) -> bool:
            g = patched.gates.get(net)
            return g is not None and g.gtype.is_constant

        inputs = {n for n in boundary_inputs | direct_sources
                  if not is_const(n)}
        nets = alive_clones | direct_sources | boundary_inputs
        distinct_pins = set(self.rewired_pins)
        return PatchStats(
            inputs=len(inputs),
            outputs=len(distinct_pins),
            gates=len(logic_clones),
            nets=len(nets),
        )

    def __len__(self) -> int:
        return len(self.ops)

    def describe(self) -> str:
        return "\n".join(op.describe() for op in self.ops)

    def extract_circuit(self, patched: Circuit,
                        name: str = "patch"
                        ) -> Tuple[Circuit, Dict[str, Pin]]:
        """The patch as a standalone netlist — what an ECO actually
        ships: the cloned logic over its boundary inputs, with one
        output per rectification point.

        Returns ``(circuit, port_map)`` where ``port_map`` maps each
        patch output port to the sink pin of the implementation it
        drives.  Boundary nets of the implementation become primary
        inputs of the patch (same names); rewires whose source is a
        pre-existing net appear as a patch input wired straight to an
        output port.
        """
        alive = {g for g in self.cloned_gates if g in patched.gates}
        boundary: Set[str] = set()
        for g in alive:
            for f in patched.gates[g].fanins:
                if f not in alive:
                    boundary.add(f)
        drivers: Dict[Pin, str] = {}
        for op in self.ops:
            if _pin_exists(patched, op.pin):
                drivers[op.pin] = patched.pin_driver(op.pin)
        for net in drivers.values():
            if net not in alive:
                boundary.add(net)

        from repro.netlist.traverse import topological_order
        patch_circuit = Circuit(name)
        for net in sorted(boundary):
            patch_circuit.add_input(net)
        order = [g for g in topological_order(patched) if g in alive]
        for g in order:
            gate = patched.gates[g]
            patch_circuit.add_gate(g, gate.gtype, gate.fanins)

        port_map: Dict[str, Pin] = {}
        for i, (pin, net) in enumerate(sorted(drivers.items())):
            port = f"rp{i}"
            patch_circuit.set_output(port, net)
            port_map[port] = pin
        return patch_circuit, port_map


def _pin_exists(circuit: Circuit, pin: Pin) -> bool:
    if pin.is_output_port:
        return pin.owner in circuit.outputs
    gate = circuit.gates.get(pin.owner)
    return gate is not None and pin.index < len(gate.fanins)


@dataclass
class RectificationResult:
    """Outcome of :meth:`repro.eco.engine.SysEco.rectify`.

    Attributes:
        patched: the rectified implementation.
        patch: the committed rewires and cloned logic.
        verified_outputs: ports proven equivalent to the spec.
        runtime_seconds: wall-clock time of the rectification.
        per_output: for each initially failing port, how it was fixed
            ('rewire', 'joint-rewire', 'fixed-by-earlier', 'fallback',
            or 'fallback-degraded' when a budget ran out first).
        counters: typed per-run telemetry (search effort + supervision);
            supports mapping-style access for the ablation benches.
        degraded: True when a run-level budget (deadline, aggregate SAT
            conflicts, aggregate BDD nodes) was exhausted and remaining
            outputs were force-completed via the guaranteed fallback.
            The patched circuit is still proven equivalent — degradation
            affects patch quality, never correctness.
        degrade_reason: human-readable cause of the degradation.
        trace: the run's :class:`~repro.obs.trace.Trace` when tracing
            was requested (``None`` otherwise); exportable via
            :mod:`repro.obs.export` and summarizable via
            :meth:`trace_summary`.
    """

    patched: Circuit
    patch: Patch
    verified_outputs: Tuple[str, ...]
    runtime_seconds: float
    per_output: Dict[str, str] = field(default_factory=dict)
    counters: RunCounters = field(default_factory=RunCounters)
    degraded: bool = False
    degrade_reason: Optional[str] = None
    trace: Optional[object] = None

    def stats(self) -> PatchStats:
        return self.patch.stats(self.patched)

    def trace_summary(self):
        """The run's :class:`~repro.obs.summary.TraceSummary`, or
        ``None`` when the run was not traced."""
        if self.trace is None:
            return None
        from repro.obs.summary import summarize
        return summarize(self.trace.records())
