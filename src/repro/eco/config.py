"""Configuration of the syseco engine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class EcoConfig:
    """Tuning knobs of the rectification search.

    Attributes:
        num_samples: size ``N`` of the sampling domain (Section 5.1);
            ``ceil(log2 N)`` ``z`` variables are allocated.  Larger
            domains mean fewer false-positive candidates but bigger
            BDDs.
        max_points: largest rectification point-set size ``m`` tried
            (the engine starts at 1 and grows on failure).
        max_candidate_pins: cap ``M`` on the sink pins considered as
            rectification points per failing output.
        max_rewire_candidates: cap on candidate rewiring nets per
            rectification point (ordered by rectification utility).
        prime_limit: number of prime cubes of ``H(t)`` expanded into
            candidate point-sets.
        pointset_limit: number of candidate point-sets examined per
            failing output.
        choice_limit: number of rewiring-choice assignments of
            ``Xi(c)`` validated per point-set.
        sat_budget: conflict budget per validation SAT call (the
            'resource-constrained SAT solver').
        bdd_node_limit: node cap of the sampling-domain BDD manager;
            exceeding it shrinks the candidate-pin set and retries.
        sim_rounds: 64-pattern random simulation rounds used by the
            utility heuristic on top of the error samples.
        error_bias: fraction of the sampling domain drawn from the
            error domain ``E`` (the remainder is uniform random);
            the paper observes error-domain samples give fewer false
            positives.
        use_impl_nets / use_spec_nets: allow rewiring sources from the
            current implementation / the synthesized specification
            (both True reproduces the paper; ablation B toggles them).
        utility_ordering: order candidate rewiring nets by the Section
            4.3 utility ratio (ablation C toggles this).
        level_aware: prefer rewire choices that do not increase logic
            depth (the 'level-driven optimization decisions' behind
            Table 3).
        resynthesis: run the rectification-logic resynthesis post-pass
            (the paper's future-work direction, Section 7): cloned
            patch logic is re-expressed as single gates over existing
            nets where SAT proves the equality.
        sample_diversify: harvest a larger error pool and keep a greedy
            max-Hamming-distance subset (the paper's other future-work
            direction: sampling domain selection).
        exact_domain_max_inputs: when a failing cone's structural
            support has at most this many inputs, enumerate it
            completely instead of sampling — the Section 4 computation
            in its exact form (0 disables; 8 is a practical value).
        cegar_refinement: when every sampled candidate for an output is
            refuted on the full domain, fold the refuting
            counterexamples back into the sample set and search once
            more — counterexample-guided domain refinement.
        joint_outputs: when greater than 1, failing outputs whose cones
            overlap are rectified *jointly* — one point-set and one
            rewiring must fix the whole group (addresses the paper's
            single-output-view limitation; groups of this size at most).
        seed: randomization seed (sampling, simulation).

    Performance machinery (see docs/performance.md):

        incremental_validate: validate candidates on one persistent
            assumption-based SAT miter per output search
            (:class:`repro.eco.incremental.IncrementalValidator`)
            instead of copy-and-re-encode per candidate; the legacy
            path remains as a cross-check oracle when ``False``.
        jobs: worker processes for the per-output search phase.  With
            ``jobs > 1`` non-equivalent outputs are partitioned across
            a process pool; the run budget is split between workers and
            every worker's counters, spans and commits are merged back
            into the main run.  ``1`` (default) keeps the sequential
            path.
        sim_backend: simulation-kernel backend — ``"auto"`` (default)
            uses the numpy level-batched vector kernels when numpy is
            installed and the batch shape favors them, ``"python"``
            forces the pure-Python bignum paths (the bit-identity
            oracle), ``"numpy"`` forces the vector kernels and raises
            when numpy is missing.  Ships as the ``repro[perf]``
            optional extra; see docs/performance.md.

    Run supervision (see ``repro.runtime`` and docs/architecture.md):

        deadline_s: wall-clock deadline of one ``rectify`` run in
            seconds (``None`` = unlimited).  On expiry the run degrades
            gracefully or, with ``degrade_on_budget=False``, raises.
        total_sat_budget: aggregate SAT conflict cap across all
            supervised validation calls of a run (``None`` = unlimited;
            ``sat_budget`` still caps each individual call).
        total_bdd_nodes: aggregate BDD node cap across all symbolic
            sessions of a run (``None`` = unlimited; ``bdd_node_limit``
            still caps each session).
        max_output_attempts: symbolic-search attempts (pin-shrink
            retries, CEGAR rounds) allowed per failing output before
            the engine stops searching it and falls back.
        sat_budget_initial: starting per-call conflict budget of the
            adaptive escalation policy (``None`` derives
            ``sat_budget // 8``); escalated geometrically on UNKNOWN.
        sat_escalation_factor: geometric growth of the per-call budget
            between attempts of one validation.
        sat_escalation_attempts: attempts per validation call before
            the answer is accepted as UNKNOWN.
        sat_deescalate_after: consecutive unresolved calls after which
            the starting budget is halved (de-escalation).
        degrade_on_budget: when a run-level budget (deadline, total SAT
            conflicts, total BDD nodes) is exhausted, checkpoint the
            partial patch and force-complete the remaining failing
            outputs via the guaranteed fallback, returning a
            ``degraded=True`` result; ``False`` = strict mode, raise
            :class:`~repro.errors.ResourceBudgetExceeded` instead.

    Fault tolerance (see docs/robustness.md):

        resume_from: run id of a dead journaled run to resume; its
            checkpoint journal is replayed before the search continues
            (``repro eco --resume``; ``None`` = fresh run).
        worker_retries: times a parallel partition whose worker died is
            re-dispatched before its outputs are quarantined; ``0``
            quarantines on the first death.
        retry_backoff_s: base of the exponential backoff slept before a
            partition retry (doubled per retry, jittered).

    Telemetry sampling (active only when the run is traced; see
    :mod:`repro.obs.sampler`):

        sample_interval_s: seconds between ``obs.sample`` counter
            snapshots taken by the in-run sampler thread; ``0``
            disables the thread but keeps the start/stop snapshots.
        stall_window_s: span-progress silence after which the sampler
            emits a ``run.stalled`` event with a degradation hint.
        trace_malloc: run ``tracemalloc`` for the duration of a traced
            run and record traced-memory peaks in each sample
            (measurable overhead; off by default).
        sync_debug: enable the runtime lock-order/deadlock detector
            (:mod:`repro.runtime.sync`) for the run: every sanctioned
            lock participates in the global acquisition-order graph,
            order inversions are logged with both stacks, and per-lock
            wait times feed the ``repro_sync_lock_wait_seconds``
            histogram on a traced run's registry.  Equivalent to
            ``REPRO_SYNC_DEBUG=1``; off by default (the traced
            wrappers cost a few hundred nanoseconds per acquisition).
    """

    num_samples: int = 16
    max_points: int = 2
    max_candidate_pins: int = 20
    max_rewire_candidates: int = 8
    prime_limit: int = 8
    pointset_limit: int = 12
    choice_limit: int = 16
    sat_budget: int = 50000
    bdd_node_limit: int = 400000
    sim_rounds: int = 4
    error_bias: float = 1.0
    use_impl_nets: bool = True
    use_spec_nets: bool = True
    utility_ordering: bool = True
    level_aware: bool = False
    resynthesis: bool = False
    sample_diversify: bool = False
    exact_domain_max_inputs: int = 0
    cegar_refinement: bool = True
    joint_outputs: int = 1
    incremental_validate: bool = True
    jobs: int = 1
    sim_backend: str = "auto"
    seed: int = 2019
    deadline_s: Optional[float] = None
    total_sat_budget: Optional[int] = None
    total_bdd_nodes: Optional[int] = None
    max_output_attempts: int = 8
    sat_budget_initial: Optional[int] = None
    sat_escalation_factor: float = 4.0
    sat_escalation_attempts: int = 3
    sat_deescalate_after: int = 3
    degrade_on_budget: bool = True
    resume_from: Optional[str] = None
    worker_retries: int = 1
    retry_backoff_s: float = 0.25
    sample_interval_s: float = 0.05
    stall_window_s: float = 30.0
    trace_malloc: bool = False
    sync_debug: bool = False

    def __post_init__(self) -> None:
        for name in ("num_samples", "max_points", "max_candidate_pins",
                     "max_rewire_candidates", "prime_limit",
                     "pointset_limit", "choice_limit", "sat_budget",
                     "bdd_node_limit", "sim_rounds", "joint_outputs",
                     "jobs", "max_output_attempts",
                     "sat_escalation_attempts", "sat_deescalate_after"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be positive")
        if not (self.use_impl_nets or self.use_spec_nets):
            raise ValueError("at least one rewiring-net source is required")
        if self.sim_backend not in ("auto", "python", "numpy"):
            raise ValueError(
                "sim_backend must be one of auto, python, numpy")
        if not 0.0 <= self.error_bias <= 1.0:
            raise ValueError("error_bias must be in [0, 1]")
        if self.exact_domain_max_inputs < 0:
            raise ValueError("exact_domain_max_inputs must be >= 0")
        for name in ("deadline_s", "total_sat_budget", "total_bdd_nodes",
                     "sat_budget_initial"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive when set")
        if self.sat_escalation_factor <= 1.0:
            raise ValueError("sat_escalation_factor must exceed 1")
        if self.worker_retries < 0:
            raise ValueError("worker_retries must be >= 0")
        if self.retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be >= 0")
        if self.sample_interval_s < 0:
            raise ValueError("sample_interval_s must be >= 0")
        if self.stall_window_s <= 0:
            raise ValueError("stall_window_s must be positive")
