"""Checkpoint/resume: a write-ahead journal of committed run progress.

A rectification run on an industrial case can take minutes to hours; a
run that dies at minute 40 of 45 must not start over from zero.  This
module gives every journaled run durable, replayable progress:

* :class:`RunJournal` appends one WAL record per committed unit of
  progress — the diagnosis (failing-output list), every committed
  patch (port, how, rewire ops, outputs fixed, the engine's RNG state
  and cumulative budget spend at commit time), and the final outcome —
  into ``<store>/journals/<run_id>.jsonl`` via the crash-safe writers
  of :mod:`repro.obs.atomicio`.
* ``repro eco --resume RUN_ID`` (or :attr:`EcoConfig.resume_from`)
  reopens the journal, *replays* the committed patches under the
  supervised validator (a journal is never trusted blindly — every
  replayed op set is re-proven before it is applied), restores the RNG
  stream position and budget spend of the last commit, skips the
  outputs already fixed and continues the search exactly where the
  dead run left off.  Because the engine is deterministic under a
  seed, a run killed at *any* point resumes to bit-identical patch
  outcomes.

The journal is written ahead of the in-memory commit: a crash between
the append and the circuit mutation loses nothing (the record replays
on resume), and a crash *during* the append leaves at worst a torn
trailing line, which :func:`repro.obs.atomicio.salvage_jsonl` drops on
reopen — everything before the torn write survives.

Fault injection: every append observes
:data:`~repro.runtime.faultinject.SITE_JOURNAL`, so the chaos harness
can kill the run deterministically before or in the middle of any
journal write (payloads ``"crash"`` / ``"torn"``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import JournalError
from repro.netlist.circuit import Pin
from repro.eco.patch import RewireOp
from repro.obs.atomicio import append_jsonl_line, read_jsonl, salvage_jsonl
from repro.obs.store import DEFAULT_STORE_DIR
from repro.runtime.faultinject import (
    FAULT_CRASH,
    FAULT_TORN,
    InjectedCrash,
    SITE_JOURNAL,
)

JOURNAL_VERSION = 1

#: subdirectory of the run store holding one journal per run
JOURNAL_DIR = "journals"


def resolve_store_root(root: Optional[str] = None) -> str:
    """The run-store directory, resolved like :class:`RunStore` does."""
    return root or os.environ.get("REPRO_RUN_STORE") or DEFAULT_STORE_DIR


def journal_path(store_root: str, run_id: str) -> str:
    return os.path.join(store_root, JOURNAL_DIR, f"{run_id}.jsonl")


# ----------------------------------------------------------------------
# record (de)serialization
# ----------------------------------------------------------------------
def serialize_ops(ops: Sequence[RewireOp]) -> List[Dict[str, Any]]:
    """Rewire ops as plain JSON records (journal interchange form)."""
    return [{
        "kind": op.pin.kind,
        "owner": op.pin.owner,
        "index": op.pin.index,
        "source": op.source_net,
        "from_spec": op.from_spec,
    } for op in ops]


def deserialize_ops(payload: Sequence[Dict[str, Any]]) -> List[RewireOp]:
    ops: List[RewireOp] = []
    for rec in payload:
        pin = (Pin.output(rec["owner"]) if rec["kind"] == Pin.OUTPUT
               else Pin.gate(rec["owner"], int(rec["index"])))
        ops.append(RewireOp(pin, rec["source"],
                            from_spec=bool(rec["from_spec"])))
    return ops


def encode_rng_state(state: Tuple[Any, ...]) -> List[Any]:
    """``random.Random.getstate()`` as a JSON-serializable list."""
    version, internal, gauss_next = state
    return [version, list(internal), gauss_next]


def decode_rng_state(payload: Sequence[Any]) -> Tuple[Any, ...]:
    version, internal, gauss_next = payload
    return (version, tuple(internal), gauss_next)


def config_digest(config: Any) -> str:
    """Stable digest of an :class:`EcoConfig`, ignoring resume wiring.

    Bit-identical resumption requires the resumed run to search under
    the *same* configuration; ``resume_from`` itself is excluded so the
    original run and its resumption digest equal.
    """
    if dataclasses.is_dataclass(config):
        payload = dataclasses.asdict(config)
    else:
        payload = dict(config or {})
    payload.pop("resume_from", None)
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# the journal
# ----------------------------------------------------------------------
@dataclass
class JournalCommit:
    """One committed patch, as replayed on resume."""

    seq: int
    port: str
    how: str
    ops: List[RewireOp]
    fixed: List[str]
    rng_state: Optional[List[Any]] = None
    sat_spent: int = 0
    bdd_spent: int = 0


@dataclass
class JournalState:
    """Everything :meth:`RunJournal.load` recovers from disk."""

    header: Optional[Dict[str, Any]] = None
    failing: Optional[List[str]] = None
    commits: List[JournalCommit] = field(default_factory=list)
    finished: Optional[str] = None
    salvaged: Optional[str] = None
    skipped: int = 0


class RunJournal:
    """Write-ahead journal of one run's committed progress.

    Args:
        run_id: the run's durable identity (``repro eco --resume`` key).
        store_root: run-store directory; the journal file lives in its
            ``journals/`` subdirectory.  ``None`` resolves like
            :class:`~repro.obs.store.RunStore` (``$REPRO_RUN_STORE`` or
            ``.repro/runs``).
        resume: reload existing records (salvaging a torn tail) so the
            engine can replay them; without it an existing file is an
            error — journal ids are never silently reused.
    """

    def __init__(self, run_id: str, store_root: Optional[str] = None,
                 resume: bool = False):
        self.run_id = run_id
        self.store_root = resolve_store_root(store_root)
        self.path = journal_path(self.store_root, run_id)
        self.state = JournalState()
        self._injector = None
        self._metrics = None
        self._seq = 0
        if resume:
            self.load()
        elif os.path.exists(self.path):
            raise JournalError(
                f"journal for run {run_id!r} already exists at "
                f"{self.path!r}; use resume to continue it")

    # ------------------------------------------------------------------
    @property
    def resuming(self) -> bool:
        """True when a prior run's header was recovered from disk."""
        return self.state.header is not None

    @property
    def commits(self) -> List[JournalCommit]:
        return self.state.commits

    def bind(self, injector, metrics=None) -> None:
        """Route subsequent appends through a fault injector, and
        optionally time them into the ``repro_journal_append_seconds``
        histogram of a :class:`~repro.obs.metrics.MetricsRegistry`."""
        self._injector = injector
        self._metrics = metrics

    # ------------------------------------------------------------------
    def load(self) -> JournalState:
        """(Re)load the journal, salvaging a torn trailing record."""
        state = JournalState()
        state.salvaged = salvage_jsonl(self.path)
        payloads, state.skipped = read_jsonl(self.path)
        for rec in payloads:
            kind = rec.get("type")
            if kind == "run_started":
                state.header = rec
            elif kind == "diagnosed":
                state.failing = list(rec.get("failing", []))
            elif kind == "commit":
                state.commits.append(JournalCommit(
                    seq=int(rec.get("seq", len(state.commits) + 1)),
                    port=str(rec.get("port")),
                    how=str(rec.get("how", "rewire")),
                    ops=deserialize_ops(rec.get("ops", [])),
                    fixed=list(rec.get("fixed", [])),
                    rng_state=rec.get("rng_state"),
                    sat_spent=int(rec.get("sat_spent", 0)),
                    bdd_spent=int(rec.get("bdd_spent", 0)),
                ))
            elif kind == "run_finished":
                state.finished = str(rec.get("outcome", "?"))
        self.state = state
        self._seq = len(state.commits)
        return state

    # ------------------------------------------------------------------
    def check_resumable(self, impl_name: str, config: Any,
                        failing: Sequence[str]) -> None:
        """Refuse to resume against a different problem.

        Bit-identical resumption is only defined for the same design
        pair under the same configuration; a mismatched implementation
        name, config digest or diagnosed failing set means the journal
        belongs to a different run and replaying it would corrupt the
        result.
        """
        header = self.state.header or {}
        if header.get("impl") != impl_name:
            raise JournalError(
                f"journal {self.run_id} was recorded for design "
                f"{header.get('impl')!r}, not {impl_name!r}")
        digest = config_digest(config)
        if header.get("config_digest") != digest:
            raise JournalError(
                f"journal {self.run_id} was recorded under a different "
                "configuration; resume with the original settings "
                f"(digest {header.get('config_digest')} != {digest})")
        if self.state.failing is not None \
                and list(failing) != list(self.state.failing):
            raise JournalError(
                f"journal {self.run_id} diagnosed failing outputs "
                f"{self.state.failing}, but this run diagnosed "
                f"{list(failing)}; the input netlists changed")
        if self.state.finished is not None:
            raise JournalError(
                f"run {self.run_id} already finished "
                f"({self.state.finished}); nothing to resume")

    # ------------------------------------------------------------------
    # WAL appends
    # ------------------------------------------------------------------
    def start(self, impl_name: str, config: Any,
              failing: Sequence[str]) -> None:
        """Journal the run header and the diagnosis."""
        self._append({
            "type": "run_started",
            "version": JOURNAL_VERSION,
            "run_id": self.run_id,
            "impl": impl_name,
            "config_digest": config_digest(config),
        })
        self._append({"type": "diagnosed", "failing": list(failing)})

    def record_commit(self, port: str, how: str,
                      ops: Sequence[RewireOp], fixed: Sequence[str],
                      rng_state: Optional[Tuple[Any, ...]] = None,
                      sat_spent: int = 0, bdd_spent: int = 0) -> None:
        """Journal one committed patch (write-ahead of the mutation)."""
        self._seq += 1
        self._append({
            "type": "commit",
            "seq": self._seq,
            "port": port,
            "how": how,
            "ops": serialize_ops(ops),
            "fixed": list(fixed),
            "rng_state": (encode_rng_state(rng_state)
                          if rng_state is not None else None),
            "sat_spent": sat_spent,
            "bdd_spent": bdd_spent,
        })

    def finish(self, outcome: str) -> None:
        """Journal the terminal outcome; the run stops being resumable."""
        self._append({"type": "run_finished", "outcome": outcome})

    # ------------------------------------------------------------------
    def _append(self, record: Dict[str, Any]) -> None:
        if self._injector is not None:
            fault = self._injector.observe(SITE_JOURNAL)
            if fault is not None and fault.payload == FAULT_CRASH:
                raise InjectedCrash(
                    f"fault injection: process killed before journal "
                    f"append {self._injector.calls(SITE_JOURNAL)}")
            if fault is not None and fault.payload == FAULT_TORN:
                self._tear(record)
                raise InjectedCrash(
                    f"fault injection: process killed mid-append "
                    f"{self._injector.calls(SITE_JOURNAL)} (torn write)")
        if self._metrics is None:
            append_jsonl_line(self.path, record)
            return
        t0 = time.monotonic()
        append_jsonl_line(self.path, record)
        from repro.obs.metrics import JOURNAL_APPEND_HISTOGRAM
        self._metrics.histogram(
            JOURNAL_APPEND_HISTOGRAM[0],
            help=JOURNAL_APPEND_HISTOGRAM[1],
        ).observe(time.monotonic() - t0)

    def _tear(self, record: Dict[str, Any]) -> None:
        """Write half a record non-atomically, as a dying legacy writer
        would — the torn tail the salvage path must recover from."""
        line = json.dumps(record, sort_keys=True, default=str)
        os.makedirs(os.path.dirname(self.path), exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line[:max(1, len(line) // 2)])


# ----------------------------------------------------------------------
# recovery listing
# ----------------------------------------------------------------------
def list_resumable(store_root: Optional[str] = None) -> List[Dict[str, Any]]:
    """Journals of runs that started but never finished, oldest first.

    Each entry carries the run id, design name, committed-patch count
    and whether the journal needed salvage — the data ``repro runs
    recover`` renders.
    """
    root = resolve_store_root(store_root)
    directory = os.path.join(root, JOURNAL_DIR)
    if not os.path.isdir(directory):
        return []
    entries: List[Dict[str, Any]] = []
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".jsonl"):
            continue
        run_id = name[:-len(".jsonl")]
        journal = RunJournal(run_id, store_root=root, resume=True)
        state = journal.state
        if state.finished is not None:
            continue
        entries.append({
            "run_id": run_id,
            "impl": (state.header or {}).get("impl"),
            "commits": len(state.commits),
            "started": state.header is not None,
            "salvaged": state.salvaged is not None,
            "path": journal.path,
        })
    return entries
