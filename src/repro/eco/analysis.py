"""Diagnostic analyses of an ECO instance.

Utilities a user runs *before* rectification to understand the change:
which outputs fail, how large their error domains are, how structurally
dissimilar the two netlists got, and a digest that suggests engine
settings.  None of this is needed by the engine itself; it is the
front-of-flow tooling an ECO practitioner expects.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.netlist.circuit import Circuit
from repro.netlist.gate import WORD_BITS
from repro.netlist.simulate import random_patterns, simulate_words
from repro.netlist.traverse import input_support, transitive_fanin
from repro.netlist.hashing import structural_hash
from repro.cec.equivalence import nonequivalent_outputs


@dataclass
class OutputDiagnosis:
    """Per-failing-output characteristics."""

    port: str
    #: estimated fraction of the input space in the error domain
    error_rate: float
    #: structural input support size of the implementation cone
    impl_support: int
    #: structural input support size of the revised cone
    spec_support: int
    #: gates in the implementation cone
    cone_gates: int

    @property
    def support_grew(self) -> bool:
        return self.spec_support > self.impl_support


@dataclass
class EcoDiagnosis:
    """Whole-instance characteristics."""

    failing_outputs: Tuple[str, ...]
    total_outputs: int
    per_output: Dict[str, OutputDiagnosis] = field(default_factory=dict)
    #: fraction of spec nets with a structural twin in the impl —
    #: low values mean heavy restructuring (DeltaSyn-hostile)
    structural_similarity: float = 0.0

    @property
    def failing_fraction(self) -> float:
        return len(self.failing_outputs) / max(1, self.total_outputs)

    def suggest_config(self):
        """A reasonable :class:`EcoConfig` for this instance."""
        from repro.eco.config import EcoConfig
        widest = max(
            (d.impl_support for d in self.per_output.values()),
            default=0)
        exact = 8 if widest <= 8 else 0
        rare = any(d.error_rate < 0.02 for d in self.per_output.values())
        return EcoConfig(
            num_samples=32 if rare else 16,
            exact_domain_max_inputs=exact,
        )


def error_rate(impl: Circuit, spec: Circuit, port: str,
               rounds: int = 16, seed: int = 7) -> float:
    """Monte-Carlo estimate of ``|E| / 2^n`` for one output pair."""
    rng = random.Random(seed)
    differing = 0
    total = rounds * WORD_BITS
    impl_net = impl.outputs[port]
    spec_net = spec.outputs[port]
    for _ in range(rounds):
        words = random_patterns(impl.inputs, rng)
        iv = simulate_words(impl, words)[impl_net]
        sv = simulate_words(
            spec, {n: words.get(n, 0) for n in spec.inputs})[spec_net]
        differing += bin(iv ^ sv).count("1")
    return differing / total


def structural_similarity(impl: Circuit, spec: Circuit) -> float:
    """Fraction of spec gate cones with a structural twin in the impl.

    Uses the strash keys of both circuits under a shared input
    numbering; 1.0 means the spec's structures all survive in the
    implementation (easy for structural ECO), values near the inputs'
    baseline mean the netlists only agree at the PIs.
    """
    impl_keys = structural_hash(impl)
    spec_keys = structural_hash(spec)
    # keys are interned per-circuit; re-intern through a common table
    common: Dict[object, int] = {}

    def canon(circuit: Circuit, keys: Dict[str, int]) -> Dict[str, int]:
        # rebuild canonical keys by traversing with a shared intern table
        from repro.netlist.gate import SYMMETRIC_TYPES
        from repro.netlist.traverse import topological_order
        out: Dict[str, int] = {}

        def intern(sig: object) -> int:
            if sig not in common:
                common[sig] = len(common)
            return common[sig]

        for name in circuit.inputs:
            out[name] = intern(("input", name))
        for name in topological_order(circuit):
            gate = circuit.gates[name]
            fk = tuple(out[f] for f in gate.fanins)
            if gate.gtype in SYMMETRIC_TYPES:
                fk = tuple(sorted(fk))
            out[name] = intern((gate.gtype, fk))
        return out

    impl_canon = canon(impl, impl_keys)
    spec_canon = canon(spec, spec_keys)
    impl_set = set(impl_canon.values())
    spec_gates = [spec_canon[g] for g in spec.gates]
    if not spec_gates:
        return 1.0
    return sum(1 for k in spec_gates if k in impl_set) / len(spec_gates)


def diagnose(impl: Circuit, spec: Circuit,
             rounds: int = 16) -> EcoDiagnosis:
    """Full pre-rectification diagnosis of an ECO instance."""
    failing = tuple(nonequivalent_outputs(impl, spec))
    diagnosis = EcoDiagnosis(
        failing_outputs=failing,
        total_outputs=len(impl.outputs),
        structural_similarity=structural_similarity(impl, spec),
    )
    for port in failing:
        cone = transitive_fanin(impl, [impl.outputs[port]],
                                include_inputs=False)
        diagnosis.per_output[port] = OutputDiagnosis(
            port=port,
            error_rate=error_rate(impl, spec, port, rounds=rounds),
            impl_support=len(input_support(impl, impl.outputs[port])),
            spec_support=len(input_support(spec, spec.outputs[port])),
            cone_gates=len([n for n in cone if n in impl.gates]),
        )
    return diagnosis


def format_diagnosis(diagnosis: EcoDiagnosis) -> str:
    """Human-readable report of a diagnosis."""
    lines = [
        f"failing outputs     : {len(diagnosis.failing_outputs)} of "
        f"{diagnosis.total_outputs} "
        f"({100 * diagnosis.failing_fraction:.1f}%)",
        f"structural similarity (spec cones surviving in impl): "
        f"{100 * diagnosis.structural_similarity:.1f}%",
    ]
    if diagnosis.per_output:
        lines.append(
            f"{'output':>16} {'err rate':>9} {'impl sup':>9} "
            f"{'spec sup':>9} {'cone':>6}")
        for d in diagnosis.per_output.values():
            lines.append(
                f"{d.port:>16} {d.error_rate:>9.4f} {d.impl_support:>9} "
                f"{d.spec_support:>9} {d.cone_gates:>6}")
    return "\n".join(lines)
