"""Graphviz (dot) export of BDDs.

Visualization helper for debugging the sampled characteristic
functions: solid edges are then-branches, dashed edges else-branches;
nodes are labelled by variable (names optional).
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.bdd.manager import BddManager, FALSE, TRUE


def to_dot(manager: BddManager, roots: Mapping[str, int],
           var_names: Optional[Mapping[int, str]] = None,
           graph_name: str = "bdd") -> str:
    """Render the shared DAG of several named roots as dot text.

    Args:
        manager: the owning manager.
        roots: label -> node; each label becomes a box pointing at its
            root node.
        var_names: optional variable index -> display name.
        graph_name: dot graph identifier.
    """
    names = dict(var_names) if var_names else {}
    lines = [f"digraph {graph_name} {{",
             "  rankdir=TB;",
             "  node [shape=circle];",
             '  nF [label="0", shape=box];',
             '  nT [label="1", shape=box];']

    seen = set()
    order: list = []
    stack = [node for node in roots.values()]
    while stack:
        n = stack.pop()
        if n <= TRUE or n in seen:
            continue
        seen.add(n)
        order.append(n)
        stack.append(manager.low(n))
        stack.append(manager.high(n))

    def node_id(n: int) -> str:
        if n == FALSE:
            return "nF"
        if n == TRUE:
            return "nT"
        return f"n{n}"

    for n in sorted(order):
        var = manager.top_var(n)
        label = names.get(var, f"v{var}")
        lines.append(f'  n{n} [label="{label}"];')
        lines.append(f"  n{n} -> {node_id(manager.high(n))};")
        lines.append(
            f"  n{n} -> {node_id(manager.low(n))} [style=dashed];")

    for label, node in roots.items():
        lines.append(f'  r_{_sanitize(label)} [label="{label}", '
                     "shape=box, style=filled];")
        lines.append(f"  r_{_sanitize(label)} -> {node_id(node)};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def _sanitize(label: str) -> str:
    return "".join(ch if ch.isalnum() else "_" for ch in label)


def write_dot(manager: BddManager, roots: Mapping[str, int], path: str,
              var_names: Optional[Mapping[int, str]] = None) -> None:
    """Write the dot rendering to a file."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_dot(manager, roots, var_names=var_names))
