"""Bridge between netlists and BDDs.

Builds the BDD of every net of a circuit given BDDs for its inputs.
The input functions may be plain variables (exact-domain computation)
or the components of a sampling function ``g(z)`` (sampling-domain
computation, Section 5.1) — the bridge is agnostic.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence

from repro.errors import BddError
from repro.bdd.manager import BddManager, FALSE, TRUE
from repro.netlist.circuit import Circuit
from repro.netlist.gate import GateType
from repro.netlist.traverse import topological_order


def apply_gate(manager: BddManager, gtype: GateType,
               operands: Sequence[int]) -> int:
    """Evaluate one gate over BDD operands."""
    if gtype is GateType.CONST0:
        return FALSE
    if gtype is GateType.CONST1:
        return TRUE
    if gtype is GateType.BUF:
        return operands[0]
    if gtype is GateType.NOT:
        return manager.not_(operands[0])
    if gtype is GateType.MUX:
        s, d0, d1 = operands
        return manager.mux(s, d0, d1)
    if gtype is GateType.AND:
        return manager.and_(*operands)
    if gtype is GateType.OR:
        return manager.or_(*operands)
    if gtype is GateType.NAND:
        return manager.not_(manager.and_(*operands))
    if gtype is GateType.NOR:
        return manager.not_(manager.or_(*operands))
    if gtype is GateType.XOR:
        acc = operands[0]
        for w in operands[1:]:
            acc = manager.xor(acc, w)
        return acc
    if gtype is GateType.XNOR:
        acc = operands[0]
        for w in operands[1:]:
            acc = manager.xor(acc, w)
        return manager.not_(acc)
    raise BddError(f"unknown gate type {gtype!r}")


def net_functions(circuit: Circuit, manager: BddManager,
                  input_functions: Mapping[str, int],
                  roots: Optional[Iterable[str]] = None) -> Dict[str, int]:
    """BDD of every net (or of the cones of ``roots`` only).

    Args:
        circuit: the netlist.
        manager: target BDD manager.
        input_functions: BDD node per primary input — variables for an
            exact computation, ``g_i(z)`` components for a sampled one.
        roots: restrict the computation to the transitive fanin of these
            nets (saves work when only some outputs matter).

    Returns:
        Mapping net name -> BDD node.
    """
    values: Dict[str, int] = {}
    for name in circuit.inputs:
        try:
            values[name] = input_functions[name]
        except KeyError:
            raise BddError(f"missing BDD for input {name!r}")
    order = topological_order(circuit, roots=list(roots) if roots else None)
    for name in order:
        gate = circuit.gates[name]
        values[name] = apply_gate(
            manager, gate.gtype, [values[f] for f in gate.fanins])
    return values


def circuit_to_bdds(circuit: Circuit, manager: Optional[BddManager] = None,
                    var_order: Optional[Sequence[str]] = None):
    """Exact-domain BDDs of all output ports.

    Returns ``(manager, var_map, outputs)`` where ``var_map`` maps each
    input name to its variable index and ``outputs`` maps each output
    port to its BDD node.  When ``manager`` is provided its variables
    are extended as needed.
    """
    names = list(var_order) if var_order is not None else list(circuit.inputs)
    if set(names) != set(circuit.inputs):
        raise BddError("var_order must be a permutation of the inputs")
    if manager is None:
        manager = BddManager(len(names))
        var_map = {n: i for i, n in enumerate(names)}
    else:
        var_map = {}
        for n in names:
            var_map[n] = manager.add_var()
    input_functions = {n: manager.var(i) for n, i in var_map.items()}
    values = net_functions(circuit, manager, input_functions)
    outputs = {p: values[net] for p, net in circuit.outputs.items()}
    return manager, var_map, outputs
