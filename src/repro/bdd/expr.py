"""Operator-overloading wrapper over :class:`BddManager` nodes.

``Bdd`` objects make exploratory code and tests read like Boolean
algebra::

    m = BddManager(3)
    a, b, c = (Bdd.variable(m, i) for i in range(3))
    f = (a & b) | ~c

The wrapper is intentionally thin: it holds a manager reference and a
node handle, and every operator delegates to the manager.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from repro.errors import BddError
from repro.bdd.manager import BddManager, FALSE, TRUE


class Bdd:
    """A Boolean function: a node handle bound to its manager."""

    __slots__ = ("manager", "node")

    def __init__(self, manager: BddManager, node: int):
        self.manager = manager
        self.node = node

    # constructors ------------------------------------------------------
    @staticmethod
    def variable(manager: BddManager, index: int) -> "Bdd":
        return Bdd(manager, manager.var(index))

    @staticmethod
    def true(manager: BddManager) -> "Bdd":
        return Bdd(manager, TRUE)

    @staticmethod
    def false(manager: BddManager) -> "Bdd":
        return Bdd(manager, FALSE)

    def _coerce(self, other) -> int:
        if isinstance(other, Bdd):
            if other.manager is not self.manager:
                raise BddError("mixing nodes from different managers")
            return other.node
        if other is True or other == 1:
            return TRUE
        if other is False or other == 0:
            return FALSE
        raise BddError(f"cannot combine Bdd with {other!r}")

    # operators ---------------------------------------------------------
    def __and__(self, other) -> "Bdd":
        return Bdd(self.manager, self.manager.and_(self.node, self._coerce(other)))

    def __or__(self, other) -> "Bdd":
        return Bdd(self.manager, self.manager.or_(self.node, self._coerce(other)))

    def __xor__(self, other) -> "Bdd":
        return Bdd(self.manager, self.manager.xor(self.node, self._coerce(other)))

    def __invert__(self) -> "Bdd":
        return Bdd(self.manager, self.manager.not_(self.node))

    __rand__ = __and__
    __ror__ = __or__
    __rxor__ = __xor__

    def implies(self, other) -> "Bdd":
        return Bdd(self.manager, self.manager.implies(self.node, self._coerce(other)))

    def equiv(self, other) -> "Bdd":
        return Bdd(self.manager, self.manager.equiv(self.node, self._coerce(other)))

    def ite(self, then, else_) -> "Bdd":
        return Bdd(self.manager, self.manager.ite(
            self.node, self._coerce(then), self._coerce(else_)))

    # queries -----------------------------------------------------------
    @property
    def is_true(self) -> bool:
        return self.node == TRUE

    @property
    def is_false(self) -> bool:
        return self.node == FALSE

    def __bool__(self) -> bool:
        raise BddError(
            "Bdd truth value is ambiguous; use .is_true / .is_false or =="
        )

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Bdd):
            return self.manager is other.manager and self.node == other.node
        return NotImplemented

    def __hash__(self) -> int:
        return hash((id(self.manager), self.node))

    def evaluate(self, assignment: Mapping[int, bool]) -> bool:
        return self.manager.evaluate(self.node, assignment)

    def support(self) -> frozenset:
        return self.manager.support(self.node)

    def size(self) -> int:
        return self.manager.size(self.node)

    def satcount(self, num_vars: Optional[int] = None) -> int:
        return self.manager.satcount(self.node, num_vars)

    def exists(self, variables: Iterable[int]) -> "Bdd":
        return Bdd(self.manager, self.manager.exists(self.node, variables))

    def forall(self, variables: Iterable[int]) -> "Bdd":
        return Bdd(self.manager, self.manager.forall(self.node, variables))

    def restrict(self, assignment: Mapping[int, bool]) -> "Bdd":
        return Bdd(self.manager, self.manager.restrict(self.node, assignment))

    def compose(self, var: int, g: "Bdd") -> "Bdd":
        return Bdd(self.manager, self.manager.compose(
            self.node, var, self._coerce(g)))

    def __repr__(self) -> str:
        return f"Bdd(node={self.node}, size={self.size()})"
