"""Variable reordering by rebuild-based sifting.

The classic sifting algorithm swaps adjacent levels in place.  For the
node counts this library works with (sampling-domain BDDs are small by
construction) a simpler strategy suffices: rebuild the functions under
a candidate order and keep the order when it shrinks the shared size.
``greedy_sift`` moves one variable at a time to its best position, in
decreasing order of occupancy — the same search shape as Rudell's
sifting, implemented by reconstruction.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.bdd.manager import BddManager, FALSE, TRUE


def rebuild_with_order(manager: BddManager, roots: Sequence[int],
                       order: Sequence[int]) -> Tuple[BddManager, List[int]]:
    """Reconstruct functions in a fresh manager under a variable order.

    Args:
        manager: source manager.
        roots: nodes to transfer.
        order: permutation of variable indices; ``order[k]`` is the old
            variable placed at new position ``k``.

    Returns:
        ``(new_manager, new_roots)``; new variable ``k`` corresponds to
        old variable ``order[k]``.
    """
    new = BddManager(len(order))
    position = {old: new_pos for new_pos, old in enumerate(order)}
    memo: Dict[int, int] = {FALSE: FALSE, TRUE: TRUE}

    def transfer(node: int) -> int:
        hit = memo.get(node)
        if hit is not None:
            return hit
        v = manager.top_var(node)
        lo = transfer(manager.low(node))
        hi = transfer(manager.high(node))
        result = new.ite(new.var(position[v]), hi, lo)
        memo[node] = result
        return result

    return new, [transfer(r) for r in roots]


def shared_size(manager: BddManager, roots: Sequence[int]) -> int:
    """Node count of the shared DAG of several roots."""
    seen = set()
    stack = list(roots)
    count = 0
    while stack:
        n = stack.pop()
        if n <= TRUE or n in seen:
            continue
        seen.add(n)
        count += 1
        stack.append(manager.low(n))
        stack.append(manager.high(n))
    return count


def _occupancy(manager: BddManager, roots: Sequence[int]) -> Dict[int, int]:
    """Nodes labelled by each variable in the shared DAG."""
    seen = set()
    stack = list(roots)
    occ: Dict[int, int] = {}
    while stack:
        n = stack.pop()
        if n <= TRUE or n in seen:
            continue
        seen.add(n)
        v = manager.top_var(n)
        occ[v] = occ.get(v, 0) + 1
        stack.append(manager.low(n))
        stack.append(manager.high(n))
    return occ


def greedy_sift(manager: BddManager, roots: Sequence[int],
                max_rounds: int = 1) -> Tuple[BddManager, List[int], List[int]]:
    """Search for a better variable order by per-variable relocation.

    Each round takes every variable (densest first) and tries every
    position for it, keeping the placement with the smallest shared
    size.  Returns ``(new_manager, new_roots, order)`` where ``order``
    maps new variable index -> old variable index.

    This is a semantics-preserving optimization: the returned roots
    denote the same functions modulo the variable renaming in ``order``.
    """
    order = list(range(manager.num_vars))
    current_mgr, current_roots = manager, list(roots)
    best_size = shared_size(current_mgr, current_roots)

    for _ in range(max_rounds):
        improved = False
        occ = _occupancy(current_mgr, current_roots)
        # Old variable ids, densest first.
        by_density = sorted(occ, key=lambda v: -occ[v])
        for old_var in by_density:
            pos = order.index(old_var)
            best_pos, best_local = pos, best_size
            for candidate in range(len(order)):
                if candidate == pos:
                    continue
                trial = list(order)
                trial.pop(pos)
                trial.insert(candidate, old_var)
                trial_mgr, trial_roots = rebuild_with_order(
                    manager, roots, trial)
                sz = shared_size(trial_mgr, trial_roots)
                if sz < best_local:
                    best_local, best_pos = sz, candidate
            if best_pos != pos:
                order.pop(pos)
                order.insert(best_pos, old_var)
                current_mgr, current_roots = rebuild_with_order(
                    manager, roots, order)
                best_size = best_local
                improved = True
        if not improved:
            break
    return current_mgr, current_roots, order
