"""The ROBDD manager: unique table, computed cache, core operations.

Nodes are integers.  ``FALSE`` is node 0 and ``TRUE`` is node 1; every
other node ``n`` has a variable index ``var(n)`` and two children
``lo(n)`` (variable false) / ``hi(n)`` (variable true).  Variable
indices double as ordering positions: smaller index = closer to the
root.  The manager enforces the ROBDD invariants (no redundant node,
no duplicate node) so equality of functions is pointer equality.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import BddError, BddNodeLimitError

FALSE = 0
TRUE = 1


class BddManager:
    """Owns the node store and all BDD operations.

    Args:
        num_vars: number of variables to pre-allocate (more can be added
            with :meth:`add_var`).
        node_limit: raise :class:`BddNodeLimitError` when the node count
            would exceed this bound; ``None`` disables the check.  The
            ECO engine uses this as part of its resource-constrained
            symbolic computation.
        node_hook: optional callback invoked with the current node
            count every 4096 allocations.  The run supervisor installs
            its deadline checkpoint here so long symbolic computations
            stay interruptible; the hook may raise to abort the
            operation in progress.
    """

    def __init__(self, num_vars: int = 0, node_limit: Optional[int] = None,
                 node_hook: Optional[Callable[[int], None]] = None):
        # parallel arrays indexed by node id; slots 0/1 are terminals
        self._var: List[int] = [-1, -1]
        self._lo: List[int] = [FALSE, TRUE]
        self._hi: List[int] = [FALSE, TRUE]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._cache: Dict[Tuple, int] = {}
        self._nvars = 0
        self.node_limit = node_limit
        self.node_hook = node_hook
        for _ in range(num_vars):
            self.add_var()

    # ------------------------------------------------------------------
    # variables and raw nodes
    # ------------------------------------------------------------------
    @property
    def num_vars(self) -> int:
        return self._nvars

    @property
    def num_nodes(self) -> int:
        return len(self._var)

    def add_var(self) -> int:
        """Allocate a new variable (at the bottom of the order)."""
        self._nvars += 1
        return self._nvars - 1

    def var(self, index: int) -> int:
        """The BDD of variable ``index``."""
        self._check_var(index)
        return self._node(index, FALSE, TRUE)

    def nvar(self, index: int) -> int:
        """The BDD of the negated variable ``index``."""
        self._check_var(index)
        return self._node(index, TRUE, FALSE)

    def literal(self, index: int, positive: bool) -> int:
        return self.var(index) if positive else self.nvar(index)

    def _check_var(self, index: int) -> None:
        if not 0 <= index < self._nvars:
            raise BddError(f"variable {index} not allocated (have {self._nvars})")

    def _node(self, var: int, lo: int, hi: int) -> int:
        if lo == hi:
            return lo
        key = (var, lo, hi)
        node = self._unique.get(key)
        if node is None:
            if self.node_limit is not None and len(self._var) >= self.node_limit:
                raise BddNodeLimitError(
                    f"BDD node limit {self.node_limit} exceeded")
            node = len(self._var)
            self._var.append(var)
            self._lo.append(lo)
            self._hi.append(hi)
            self._unique[key] = node
            if self.node_hook is not None and not (node & 0xFFF):
                self.node_hook(node)
        return node

    def top_var(self, node: int) -> int:
        """Variable index at the root of ``node`` (-1 for terminals)."""
        return self._var[node]

    def low(self, node: int) -> int:
        return self._lo[node]

    def high(self, node: int) -> int:
        return self._hi[node]

    def is_terminal(self, node: int) -> bool:
        return node <= TRUE

    # ------------------------------------------------------------------
    # core: if-then-else
    # ------------------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f & g | ~f & h``; the universal connective."""
        # terminal shortcuts
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        key = ("ite", f, g, h)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        top = self._var[f]
        for n in (g, h):
            if n > TRUE and self._var[n] < top:
                top = self._var[n]
        f0, f1 = self._cofactors(f, top)
        g0, g1 = self._cofactors(g, top)
        h0, h1 = self._cofactors(h, top)
        lo = self.ite(f0, g0, h0)
        hi = self.ite(f1, g1, h1)
        result = self._node(top, lo, hi)
        self._cache[key] = result
        return result

    def _cofactors(self, node: int, var: int) -> Tuple[int, int]:
        if node > TRUE and self._var[node] == var:
            return self._lo[node], self._hi[node]
        return node, node

    # ------------------------------------------------------------------
    # derived Boolean connectives
    # ------------------------------------------------------------------
    def not_(self, f: int) -> int:
        return self.ite(f, FALSE, TRUE)

    def and_(self, *fs: int) -> int:
        acc = TRUE
        for f in fs:
            acc = self.ite(acc, f, FALSE)
        return acc

    def or_(self, *fs: int) -> int:
        acc = FALSE
        for f in fs:
            acc = self.ite(acc, TRUE, f)
        return acc

    def xor(self, f: int, g: int) -> int:
        return self.ite(f, self.not_(g), g)

    def xnor(self, f: int, g: int) -> int:
        return self.ite(f, g, self.not_(g))

    def implies(self, f: int, g: int) -> int:
        return self.ite(f, g, TRUE)

    def equiv(self, f: int, g: int) -> int:
        return self.xnor(f, g)

    def mux(self, s: int, d0: int, d1: int) -> int:
        return self.ite(s, d1, d0)

    # ------------------------------------------------------------------
    # quantification
    # ------------------------------------------------------------------
    def exists(self, f: int, variables: Iterable[int]) -> int:
        """Existentially quantify ``variables`` out of ``f``."""
        vs = frozenset(variables)
        if not vs:
            return f
        return self._quantify(f, vs, existential=True)

    def forall(self, f: int, variables: Iterable[int]) -> int:
        """Universally quantify ``variables`` out of ``f``."""
        vs = frozenset(variables)
        if not vs:
            return f
        return self._quantify(f, vs, existential=False)

    def _quantify(self, f: int, vs: frozenset, existential: bool) -> int:
        if f <= TRUE:
            return f
        key = ("exists" if existential else "forall", f, vs)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        v = self._var[f]
        lo = self._quantify(self._lo[f], vs, existential)
        hi = self._quantify(self._hi[f], vs, existential)
        if v in vs:
            result = self.or_(lo, hi) if existential else self.and_(lo, hi)
        else:
            result = self._node(v, lo, hi)
        self._cache[key] = result
        return result

    # ------------------------------------------------------------------
    # cofactor / restrict / compose
    # ------------------------------------------------------------------
    def restrict(self, f: int, assignment: Mapping[int, bool]) -> int:
        """Cofactor ``f`` by a partial variable assignment."""
        if not assignment:
            return f
        items = frozenset(assignment.items())
        return self._restrict(f, dict(assignment), items)

    def _restrict(self, f: int, assignment: Dict[int, bool],
                  key_items: frozenset) -> int:
        if f <= TRUE:
            return f
        key = ("restrict", f, key_items)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        v = self._var[f]
        if v in assignment:
            branch = self._hi[f] if assignment[v] else self._lo[f]
            result = self._restrict(branch, assignment, key_items)
        else:
            lo = self._restrict(self._lo[f], assignment, key_items)
            hi = self._restrict(self._hi[f], assignment, key_items)
            result = self._node(v, lo, hi)
        self._cache[key] = result
        return result

    def compose(self, f: int, var: int, g: int) -> int:
        """Substitute function ``g`` for variable ``var`` in ``f``."""
        return self.vector_compose(f, {var: g})

    def vector_compose(self, f: int, substitution: Mapping[int, int]) -> int:
        """Simultaneously substitute functions for variables.

        This realizes the input overloading of Section 5.1: composing
        the sampling function ``g(z)`` onto the ``x`` variables casts a
        computation into the sampling domain.
        """
        if not substitution:
            return f
        items = frozenset(substitution.items())
        return self._vcompose(f, dict(substitution), items)

    def _vcompose(self, f: int, sub: Dict[int, int], key_items: frozenset) -> int:
        if f <= TRUE:
            return f
        key = ("vcompose", f, key_items)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        v = self._var[f]
        lo = self._vcompose(self._lo[f], sub, key_items)
        hi = self._vcompose(self._hi[f], sub, key_items)
        selector = sub.get(v)
        if selector is None:
            selector = self.var(v)
        result = self.ite(selector, hi, lo)
        self._cache[key] = result
        return result

    # ------------------------------------------------------------------
    # evaluation, counting, enumeration
    # ------------------------------------------------------------------
    def evaluate(self, f: int, assignment: Mapping[int, bool]) -> bool:
        """Evaluate ``f`` under a total assignment of its support."""
        node = f
        while node > TRUE:
            v = self._var[node]
            try:
                branch = assignment[v]
            except KeyError:
                raise BddError(f"assignment misses variable {v}")
            node = self._hi[node] if branch else self._lo[node]
        return node == TRUE

    def support(self, f: int) -> frozenset:
        """Set of variables ``f`` depends on."""
        seen = set()
        sup = set()
        stack = [f]
        while stack:
            n = stack.pop()
            if n <= TRUE or n in seen:
                continue
            seen.add(n)
            sup.add(self._var[n])
            stack.append(self._lo[n])
            stack.append(self._hi[n])
        return frozenset(sup)

    def size(self, f: int) -> int:
        """Number of nodes reachable from ``f`` (excluding terminals)."""
        seen = set()
        stack = [f]
        count = 0
        while stack:
            n = stack.pop()
            if n <= TRUE or n in seen:
                continue
            seen.add(n)
            count += 1
            stack.append(self._lo[n])
            stack.append(self._hi[n])
        return count

    def satcount(self, f: int, num_vars: Optional[int] = None) -> int:
        """Number of satisfying assignments over ``num_vars`` variables.

        Defaults to the manager's full variable count.  This is the
        'efficient counting of consistent value assignments' the paper
        relies on for the rectification-utility ratio.
        """
        n = self._nvars if num_vars is None else num_vars
        if f == FALSE:
            return 0
        if f == TRUE:
            return 1 << n

        def level(node: int) -> int:
            return n if node <= TRUE else self._var[node]

        top_support = max(self.support(f), default=-1)
        if top_support >= n:
            raise BddError(
                f"num_vars={n} does not cover support variable {top_support}")
        memo: Dict[int, int] = {}

        def count(node: int) -> int:
            """Solutions over variables strictly below level(node)."""
            if node == FALSE:
                return 0
            if node == TRUE:
                return 1
            hit = memo.get(node)
            if hit is not None:
                return hit
            lo, hi = self._lo[node], self._hi[node]
            here = level(node)
            total = (count(lo) << (level(lo) - here - 1)) + \
                    (count(hi) << (level(hi) - here - 1))
            memo[node] = total
            return total

        return count(f) << level(f)

    def pick_assignment(self, f: int,
                        variables: Optional[Sequence[int]] = None,
                        prefer: Optional[Callable[[int], bool]] = None,
                        ) -> Optional[Dict[int, bool]]:
        """One satisfying assignment of ``f``, or ``None`` if unsat.

        Variables listed in ``variables`` but not forced by the BDD are
        filled with ``prefer(var)`` (default ``False``).
        """
        if f == FALSE:
            return None
        out: Dict[int, bool] = {}
        node = f
        while node > TRUE:
            v = self._var[node]
            if self._lo[node] != FALSE:
                out[v] = False
                node = self._lo[node]
            else:
                out[v] = True
                node = self._hi[node]
        if variables is not None:
            for v in variables:
                if v not in out:
                    out[v] = bool(prefer(v)) if prefer else False
        return out

    def sat_cubes(self, f: int) -> Iterator[Dict[int, bool]]:
        """Generate all satisfying cubes (partial assignments) of ``f``.

        Each cube assigns exactly the variables on one root-to-TRUE
        path; unassigned variables are don't-cares.
        """
        path: Dict[int, bool] = {}

        def walk(node: int) -> Iterator[Dict[int, bool]]:
            if node == FALSE:
                return
            if node == TRUE:
                yield dict(path)
                return
            v = self._var[node]
            path[v] = False
            yield from walk(self._lo[node])
            path[v] = True
            yield from walk(self._hi[node])
            del path[v]

        yield from walk(f)

    def cube(self, assignment: Mapping[int, bool]) -> int:
        """BDD of the conjunction of the given literals."""
        result = TRUE
        for v in sorted(assignment, reverse=True):
            result = self._node(v, FALSE, result) if assignment[v] else \
                self._node(v, result, FALSE)
        return result

    def implies_check(self, f: int, g: int) -> bool:
        """Decide ``f => g`` (i.e. ``f & ~g`` is unsatisfiable)."""
        return self.ite(f, self.not_(g), FALSE) == FALSE

    def clear_cache(self) -> None:
        """Drop the computed cache (keeps the node store)."""
        self._cache.clear()

    def stats(self) -> Dict[str, int]:
        """Session statistics for telemetry (node store never shrinks,
        so ``nodes`` doubles as the session peak)."""
        return {
            "nodes": len(self._var),
            "vars": self._nvars,
            "cache_entries": len(self._cache),
        }

    def __repr__(self) -> str:
        return (f"BddManager(vars={self._nvars}, nodes={len(self._var)}, "
                f"cache={len(self._cache)})")
