"""Reduced Ordered Binary Decision Diagram (ROBDD) package.

This is the reproduction of the paper's "in-house BDD package": the
symbolic engine in which the sampling-domain computations of Sections
4-5 run — quantification for ``H(t)`` and ``Xi(c)``, assignment counting
for the rectification-utility heuristic, and prime-cube enumeration for
candidate rectification point-sets.

Two API levels are exposed:

* :class:`~repro.bdd.manager.BddManager` — integer node handles,
  explicit method calls; the fast path used by the ECO engine.
* :class:`~repro.bdd.expr.Bdd` — a thin operator-overloading wrapper
  (``&``, ``|``, ``^``, ``~``) for examples and tests.
"""

from repro.bdd.manager import BddManager, FALSE, TRUE
from repro.bdd.expr import Bdd
from repro.bdd.cube import Cube
from repro.bdd.primes import enumerate_primes, expand_to_prime
from repro.bdd.netbridge import circuit_to_bdds, net_functions
from repro.bdd.reorder import greedy_sift
from repro.bdd.dot import to_dot, write_dot

__all__ = [
    "to_dot",
    "write_dot",
    "BddManager",
    "FALSE",
    "TRUE",
    "Bdd",
    "Cube",
    "enumerate_primes",
    "expand_to_prime",
    "circuit_to_bdds",
    "net_functions",
    "greedy_sift",
]
