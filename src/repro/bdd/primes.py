"""Prime-cube enumeration on BDDs.

Section 4.2 of the paper enumerates *prime cubes* of the characteristic
function ``H(t)`` and uses them as seeds for candidate rectification
point-sets.  A cube contained in ``f`` is prime when dropping any of its
literals voids the containment.

``expand_to_prime`` turns any implicant into a prime by greedy literal
dropping; ``enumerate_primes`` produces a stream of distinct primes by
repeatedly picking a satisfying cube of the not-yet-covered remainder
and expanding it — an irredundant prime cover generator.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.bdd.cube import Cube
from repro.bdd.manager import BddManager, FALSE, TRUE


def expand_to_prime(manager: BddManager, cube: Cube, f: int,
                    drop_order: Optional[Sequence[int]] = None) -> Cube:
    """Expand an implicant of ``f`` into a prime implicant.

    Args:
        manager: the BDD manager owning ``f``.
        cube: an implicant (``cube => f`` must hold).
        f: the target function.
        drop_order: preferred order in which to try dropping variables;
            defaults to descending variable index (drops the cheapest,
            bottom-most decisions first).

    Returns:
        A prime cube containing ``cube`` and contained in ``f``.
    """
    if not manager.implies_check(cube.to_bdd(manager), f):
        raise ValueError("cube is not an implicant of f")
    current = cube
    variables = list(drop_order) if drop_order is not None else sorted(
        (v for v, _ in cube), reverse=True)
    for v in variables:
        if v not in current:
            continue
        candidate = current.without(v)
        if manager.implies_check(candidate.to_bdd(manager), f):
            current = candidate
    return current


def enumerate_primes(manager: BddManager, f: int,
                     limit: Optional[int] = None) -> Iterator[Cube]:
    """Stream distinct prime implicants covering ``f``.

    Repeatedly takes a satisfying cube of the uncovered remainder,
    expands it to a prime of the *original* function, yields it and
    removes it from the remainder.  Terminates when the remainder is
    FALSE (the yielded primes form a cover of ``f``) or after ``limit``
    primes.
    """
    remainder = f
    produced = 0
    while remainder != FALSE:
        if limit is not None and produced >= limit:
            return
        seed = next(manager.sat_cubes(remainder), None)
        if seed is None:  # pragma: no cover - remainder != FALSE guards this
            return
        prime = expand_to_prime(manager, Cube(seed), f)
        yield prime
        produced += 1
        remainder = manager.and_(remainder,
                                 manager.not_(prime.to_bdd(manager)))


def all_primes(manager: BddManager, f: int,
               limit: Optional[int] = None) -> list:
    """Materialized list of :func:`enumerate_primes`."""
    return list(enumerate_primes(manager, f, limit=limit))
