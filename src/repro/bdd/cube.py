"""Cubes: conjunctions of literals over BDD variables.

A :class:`Cube` is an immutable partial assignment with set-like
helpers.  Cubes are the currency of the rectification-point search:
prime cubes of ``H(t)`` seed candidate point-sets (Section 4.2) and
cubes of ``Xi(c)`` select rewiring nets (Section 4.4).
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Tuple

from repro.bdd.manager import BddManager


class Cube:
    """An immutable conjunction of literals ``var -> bool``."""

    __slots__ = ("_literals",)

    def __init__(self, literals: Mapping[int, bool]):
        self._literals: Tuple[Tuple[int, bool], ...] = tuple(
            sorted((int(v), bool(b)) for v, b in literals.items())
        )

    @property
    def literals(self) -> Dict[int, bool]:
        return dict(self._literals)

    def __len__(self) -> int:
        return len(self._literals)

    def __iter__(self) -> Iterator[Tuple[int, bool]]:
        return iter(self._literals)

    def __contains__(self, var: int) -> bool:
        return any(v == var for v, _ in self._literals)

    def value(self, var: int) -> bool:
        for v, b in self._literals:
            if v == var:
                return b
        raise KeyError(var)

    def without(self, var: int) -> "Cube":
        """A copy with one literal dropped (used by prime expansion)."""
        return Cube({v: b for v, b in self._literals if v != var})

    def restricted_to(self, variables) -> "Cube":
        """Literals over the given variable set only."""
        vs = set(variables)
        return Cube({v: b for v, b in self._literals if v in vs})

    def to_bdd(self, manager: BddManager) -> int:
        return manager.cube(self.literals)

    def agrees_with(self, assignment: Mapping[int, bool]) -> bool:
        """Whether the cube contains the (total) assignment."""
        return all(assignment.get(v) == b for v, b in self._literals)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Cube) and self._literals == other._literals

    def __hash__(self) -> int:
        return hash(self._literals)

    def __repr__(self) -> str:
        body = " & ".join(
            (f"v{v}" if b else f"~v{v}") for v, b in self._literals
        )
        return f"Cube({body or '1'})"
