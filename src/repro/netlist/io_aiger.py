"""ASCII AIGER (``aag``) reader / writer.

AIGER is the interchange format of the model-checking and logic-
synthesis communities (and of the ECO literature's academic branch).
The combinational subset is supported: header ``aag M I L O A`` with
``L = 0``, one even literal per input, one literal per output, ``A``
and-gate rows ``lhs rhs0 rhs1``, and the optional symbol table.

Writing converts the gate vocabulary into an and-inverter structure
(OR/NAND/NOR via De Morgan, XOR/XNOR/MUX via three ANDs); reading
produces AND/NOT gates.  Round-tripping preserves functions and port
names, not gate structure.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import ParseError
from repro.netlist.circuit import Circuit
from repro.netlist.gate import GateType
from repro.netlist.traverse import topological_order

_FALSE_LIT = 0
_TRUE_LIT = 1


class _AigBuilder:
    """Builds an and-inverter structure with structural hashing."""

    def __init__(self, num_inputs: int):
        self.next_var = num_inputs + 1
        self.ands: List[Tuple[int, int, int]] = []
        self._cache: Dict[Tuple[int, int], int] = {}

    def and_(self, a: int, b: int) -> int:
        if a == _FALSE_LIT or b == _FALSE_LIT or a == (b ^ 1):
            return _FALSE_LIT
        if a == _TRUE_LIT:
            return b
        if b == _TRUE_LIT or a == b:
            return a
        key = (min(a, b), max(a, b))
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        lhs = 2 * self.next_var
        self.next_var += 1
        self.ands.append((lhs, key[0], key[1]))
        self._cache[key] = lhs
        return lhs

    def or_(self, a: int, b: int) -> int:
        return self.and_(a ^ 1, b ^ 1) ^ 1

    def xor(self, a: int, b: int) -> int:
        return self.or_(self.and_(a, b ^ 1), self.and_(a ^ 1, b))

    def mux(self, s: int, d0: int, d1: int) -> int:
        return self.or_(self.and_(s, d1), self.and_(s ^ 1, d0))


def dumps_aiger(circuit: Circuit) -> str:
    """Serialize a circuit to ASCII AIGER text."""
    builder = _AigBuilder(len(circuit.inputs))
    lits: Dict[str, int] = {}
    for i, name in enumerate(circuit.inputs):
        lits[name] = 2 * (i + 1)

    for gname in topological_order(circuit):
        gate = circuit.gates[gname]
        ops = [lits[f] for f in gate.fanins]
        t = gate.gtype
        if t is GateType.CONST0:
            lit = _FALSE_LIT
        elif t is GateType.CONST1:
            lit = _TRUE_LIT
        elif t is GateType.BUF:
            lit = ops[0]
        elif t is GateType.NOT:
            lit = ops[0] ^ 1
        elif t in (GateType.AND, GateType.NAND):
            acc = _TRUE_LIT
            for o in ops:
                acc = builder.and_(acc, o)
            lit = acc ^ 1 if t is GateType.NAND else acc
        elif t in (GateType.OR, GateType.NOR):
            acc = _FALSE_LIT
            for o in ops:
                acc = builder.or_(acc, o)
            lit = acc ^ 1 if t is GateType.NOR else acc
        elif t in (GateType.XOR, GateType.XNOR):
            acc = ops[0]
            for o in ops[1:]:
                acc = builder.xor(acc, o)
            lit = acc ^ 1 if t is GateType.XNOR else acc
        else:  # MUX
            lit = builder.mux(*ops)
        lits[gname] = lit

    outputs = [(port, lits[net]) for port, net in circuit.outputs.items()]
    max_var = builder.next_var - 1
    lines = [f"aag {max_var} {len(circuit.inputs)} 0 "
             f"{len(outputs)} {len(builder.ands)}"]
    for i in range(len(circuit.inputs)):
        lines.append(str(2 * (i + 1)))
    for _, lit in outputs:
        lines.append(str(lit))
    for lhs, rhs0, rhs1 in builder.ands:
        lines.append(f"{lhs} {rhs0} {rhs1}")
    for i, name in enumerate(circuit.inputs):
        lines.append(f"i{i} {name}")
    for i, (port, _) in enumerate(outputs):
        lines.append(f"o{i} {port}")
    lines.append("c")
    lines.append(f"written by repro from circuit {circuit.name}")
    return "\n".join(lines) + "\n"


def loads_aiger(text: str, filename: str = "<string>") -> Circuit:
    """Parse ASCII AIGER text into a :class:`Circuit`."""
    lines = text.splitlines()
    if not lines or not lines[0].startswith("aag "):
        raise ParseError("missing 'aag' header", filename, 1)
    parts = lines[0].split()
    if len(parts) != 6 or any(not p.isdigit() for p in parts[1:]):
        raise ParseError("malformed header", filename, 1)
    max_var, n_in, n_latch, n_out, n_and = (int(p) for p in parts[1:])
    if n_latch:
        raise ParseError("latches are not supported (combinational "
                         "subset only)", filename, 1)

    expected = n_in + n_out + n_and
    body = lines[1:1 + expected]
    if len(body) < expected:
        raise ParseError("truncated body", filename, len(lines))

    input_lits = []
    for i in range(n_in):
        lit = _parse_lit(body[i], filename, 2 + i)
        if lit % 2 or lit == 0:
            raise ParseError(f"input literal {lit} must be even and "
                             "positive", filename, 2 + i)
        input_lits.append(lit)
    output_lits = [_parse_lit(body[n_in + i], filename, 2 + n_in + i)
                   for i in range(n_out)]
    and_rows: List[Tuple[int, int, int]] = []
    for i in range(n_and):
        row = body[n_in + n_out + i].split()
        if len(row) != 3 or any(not t.isdigit() for t in row):
            raise ParseError("malformed and row", filename,
                             2 + n_in + n_out + i)
        lhs, rhs0, rhs1 = (int(t) for t in row)
        if lhs % 2:
            raise ParseError(f"and output literal {lhs} must be even",
                             filename, 2 + n_in + n_out + i)
        and_rows.append((lhs, rhs0, rhs1))

    # symbol table
    input_names = {i: f"x{i}" for i in range(n_in)}
    output_names = {i: f"y{i}" for i in range(n_out)}
    for raw in lines[1 + expected:]:
        raw = raw.strip()
        if not raw or raw == "c":
            break
        kind, idx_name = raw[0], raw[1:]
        try:
            idx_str, name = idx_name.split(None, 1)
            idx = int(idx_str)
        except ValueError:
            continue
        if kind == "i" and idx in input_names:
            input_names[idx] = name
        elif kind == "o" and idx in output_names:
            output_names[idx] = name

    circuit = Circuit("aig")
    lit_net: Dict[int, str] = {}
    for i, lit in enumerate(input_lits):
        lit_net[lit] = circuit.add_input(input_names[i])

    def net_of(lit: int, line: int) -> str:
        if lit == _FALSE_LIT:
            if not circuit.has_net("aig$const0"):
                circuit.const0("aig$const0")
            return "aig$const0"
        if lit == _TRUE_LIT:
            if not circuit.has_net("aig$const1"):
                circuit.const1("aig$const1")
            return "aig$const1"
        if lit in lit_net:
            return lit_net[lit]
        if lit % 2:  # complemented: build an inverter over the base
            base = net_of(lit ^ 1, line)
            name = f"aig$n{lit}"
            circuit.add_gate(name, GateType.NOT, [base])
            lit_net[lit] = name
            return name
        raise ParseError(f"literal {lit} is not defined", filename, line)

    # rows may be out of order; resolve by repeated passes
    remaining = list(and_rows)
    while remaining:
        progress = False
        deferred = []
        for lhs, rhs0, rhs1 in remaining:
            bases_ready = all(
                (r | 1) == 1 or (r & ~1) in lit_net
                for r in (rhs0, rhs1))
            if not bases_ready:
                deferred.append((lhs, rhs0, rhs1))
                continue
            name = f"aig$a{lhs}"
            circuit.add_gate(name, GateType.AND,
                             [net_of(rhs0, 0), net_of(rhs1, 0)])
            lit_net[lhs] = name
            progress = True
        if not progress:
            raise ParseError("cyclic or dangling and rows", filename, 0)
        remaining = deferred

    for i, lit in enumerate(output_lits):
        port = output_names[i]
        circuit.set_output(port, net_of(lit, 0))
    return circuit


def _parse_lit(line: str, filename: str, lineno: int) -> int:
    token = line.strip()
    if not token.isdigit():
        raise ParseError(f"expected a literal, got {token!r}",
                         filename, lineno)
    return int(token)


def read_aiger(path: str) -> Circuit:
    """Read an ASCII AIGER file from disk."""
    with open(path, "r", encoding="utf-8") as fh:
        return loads_aiger(fh.read(), filename=path)


def write_aiger(circuit: Circuit, path: str) -> None:
    """Write a circuit to an ASCII AIGER file."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dumps_aiger(circuit))
