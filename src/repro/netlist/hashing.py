"""Structural hashing (strash).

``structural_hash`` assigns every net a key that is identical for
structurally identical cones; ``strash`` rebuilds a circuit merging
gates with identical ``(type, canonical fanins)`` signatures.  This is
the first pass of every synthesis script and the paper's premise that
optimized netlists share logic aggressively.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.netlist.circuit import Circuit
from repro.netlist.gate import GateType, SYMMETRIC_TYPES
from repro.netlist.traverse import topological_order


def _canonical_fanins(gtype: GateType, fanins: Tuple[str, ...]) -> Tuple[str, ...]:
    if gtype in SYMMETRIC_TYPES:
        return tuple(sorted(fanins))
    return fanins


def structural_hash(circuit: Circuit) -> Dict[str, int]:
    """Map every net to a structural key.

    Two nets receive the same key iff their cones are structurally
    identical up to symmetric-fanin reordering.  Primary inputs hash to
    distinct keys by name.
    """
    keys: Dict[str, int] = {}
    table: Dict[object, int] = {}

    def intern(sig: object) -> int:
        if sig not in table:
            table[sig] = len(table)
        return table[sig]

    for name in circuit.inputs:
        keys[name] = intern(("input", name))
    for name in topological_order(circuit):
        gate = circuit.gates[name]
        fk = tuple(keys[f] for f in gate.fanins)
        if gate.gtype in SYMMETRIC_TYPES:
            fk = tuple(sorted(fk))
        keys[name] = intern((gate.gtype, fk))
    return keys


def strash(circuit: Circuit, name: Optional[str] = None) -> Circuit:
    """Rebuild the circuit with structurally duplicate gates merged.

    Gate and net names of surviving gates are preserved (the first
    occurrence in topological order wins), so the result can be related
    back to the original netlist — important for ECO flows that must
    track rectification points by name.
    """
    out = Circuit(name or circuit.name)
    out.add_inputs(circuit.inputs)
    rep: Dict[str, str] = {n: n for n in circuit.inputs}
    table: Dict[Tuple, str] = {}
    for gname in topological_order(circuit):
        gate = circuit.gates[gname]
        fanins = tuple(rep[f] for f in gate.fanins)
        # single-fanin AND/OR/XOR degenerate to a buffer of the operand
        if gate.gtype in (GateType.AND, GateType.OR, GateType.XOR) and len(fanins) == 1:
            rep[gname] = fanins[0]
            continue
        if gate.gtype is GateType.BUF:
            rep[gname] = fanins[0]
            continue
        sig = (gate.gtype, _canonical_fanins(gate.gtype, fanins))
        if sig in table:
            rep[gname] = table[sig]
        else:
            out.add_gate(gname, gate.gtype, list(fanins))
            table[sig] = gname
            rep[gname] = gname
    for port, net in circuit.outputs.items():
        out.set_output(port, rep[net])
    return out
