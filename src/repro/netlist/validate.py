"""Well-formedness checks (Section 3.1).

A circuit is *well-formed* when every pin is connected to an existing
net, the netlist is acyclic, and names are consistent.  ``validate``
raises with a precise message; ``is_well_formed`` is the Boolean view.
"""

from __future__ import annotations

from typing import List

from repro.errors import NetlistError
from repro.netlist.circuit import Circuit
from repro.netlist.traverse import topological_order


def validation_problems(circuit: Circuit) -> List[str]:
    """All well-formedness violations, as human-readable strings."""
    problems: List[str] = []
    seen = set(circuit.inputs)
    if len(seen) != len(circuit.inputs):
        problems.append("duplicate primary input names")
    for name, gate in circuit.gates.items():
        if name != gate.name:
            problems.append(f"gate key {name!r} != gate name {gate.name!r}")
        if name in seen:
            problems.append(f"net name {name!r} is both input and gate")
        if not gate.gtype.arity_ok(len(gate.fanins)):
            problems.append(
                f"gate {name!r}: arity {len(gate.fanins)} invalid for "
                f"{gate.gtype.value}"
            )
        for i, f in enumerate(gate.fanins):
            if not circuit.has_net(f):
                problems.append(f"gate {name!r} pin {i}: dangling net {f!r}")
    for port, net in circuit.outputs.items():
        if not circuit.has_net(net):
            problems.append(f"output {port!r}: dangling net {net!r}")
    if not circuit.outputs:
        problems.append("circuit has no outputs")
    try:
        topological_order(circuit)
    except NetlistError as exc:
        problems.append(str(exc))
    return problems


def validate(circuit: Circuit) -> None:
    """Raise :class:`NetlistError` unless the circuit is well-formed."""
    problems = validation_problems(circuit)
    if problems:
        raise NetlistError(
            f"circuit {circuit.name!r} is not well-formed: "
            + "; ".join(problems)
        )


def is_well_formed(circuit: Circuit) -> bool:
    """True when the circuit passes all structural checks."""
    return not validation_problems(circuit)
