"""Well-formedness checks (Section 3.1).

A circuit is *well-formed* when every pin is connected to an existing
net, the netlist is acyclic, and names are consistent.  The actual
rules live in :mod:`repro.lint.netlist_rules` (the ``NL0xx`` error
tier); this module keeps the historical convenience surface:
``validate`` raises with a precise message, ``is_well_formed`` is the
Boolean view, and ``validation_problems`` returns the messages as
plain strings.
"""

from __future__ import annotations

from typing import List

from repro.errors import NetlistError
from repro.netlist.circuit import Circuit


def validation_problems(circuit: Circuit) -> List[str]:
    """All well-formedness violations, as human-readable strings.

    Only error-severity findings count: the ``NL004`` port/net
    collision is a serialization hazard the writers handle, not an
    in-memory defect, so it keeps its historical non-fatal status here.
    """
    from repro.lint.diag import Severity
    from repro.lint.netlist_rules import well_formedness

    return [d.message for d in well_formedness(circuit)
            if d.severity is Severity.ERROR]


def validate(circuit: Circuit) -> None:
    """Raise :class:`NetlistError` unless the circuit is well-formed."""
    problems = validation_problems(circuit)
    if problems:
        raise NetlistError(
            f"circuit {circuit.name!r} is not well-formed: "
            + "; ".join(problems)
        )


def is_well_formed(circuit: Circuit) -> bool:
    """True when the circuit passes all structural checks."""
    return not validation_problems(circuit)
