"""BLIF reader / writer.

Supports the combinational subset of Berkeley BLIF: ``.model``,
``.inputs``, ``.outputs``, ``.names`` with single-output cover rows, and
``.end``.  Covers are converted to the gate vocabulary on read (constant
/ buffer / inverter / AND-of-literals rows, OR of multiple rows); on
write every gate type maps to an equivalent cover.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.netlist.circuit import Circuit
from repro.netlist.gate import GateType
from repro.netlist.traverse import topological_order


def _tokenize(text: str, filename: str) -> List[Tuple[int, List[str]]]:
    """Logical lines with continuations resolved and comments stripped."""
    lines: List[Tuple[int, List[str]]] = []
    pending: List[str] = []
    pending_lineno = 0
    for lineno, raw in enumerate(text.splitlines(), start=1):
        body = raw.split("#", 1)[0].rstrip()
        cont = body.endswith("\\")
        if cont:
            body = body[:-1]
        if not pending:
            pending_lineno = lineno
        pending.extend(body.split())
        if not cont:
            if pending:
                lines.append((pending_lineno, pending))
            pending = []
    if pending:
        raise ParseError("dangling line continuation", filename, pending_lineno)
    return lines


class _NamesBlock:
    def __init__(self, lineno: int, signals: List[str]):
        self.lineno = lineno
        self.inputs = signals[:-1]
        self.output = signals[-1]
        self.rows: List[Tuple[str, str]] = []  # (input pattern, output value)


def loads_blif(text: str, filename: str = "<string>") -> Circuit:
    """Parse BLIF text into a :class:`Circuit`."""
    model_name = "top"
    inputs: List[str] = []
    outputs: List[str] = []
    blocks: List[_NamesBlock] = []
    current: Optional[_NamesBlock] = None

    for lineno, toks in _tokenize(text, filename):
        head = toks[0]
        if head == ".model":
            model_name = toks[1] if len(toks) > 1 else "top"
            current = None
        elif head == ".inputs":
            inputs.extend(toks[1:])
            current = None
        elif head == ".outputs":
            outputs.extend(toks[1:])
            current = None
        elif head == ".names":
            if len(toks) < 2:
                raise ParseError(".names needs at least an output", filename, lineno)
            current = _NamesBlock(lineno, toks[1:])
            blocks.append(current)
        elif head == ".end":
            current = None
        elif head.startswith("."):
            raise ParseError(f"unsupported construct {head!r}", filename, lineno)
        else:
            if current is None:
                raise ParseError(f"cover row outside .names: {toks!r}", filename, lineno)
            if len(current.inputs) == 0:
                if len(toks) != 1 or toks[0] not in ("0", "1"):
                    raise ParseError("bad constant row", filename, lineno)
                current.rows.append(("", toks[0]))
            else:
                if len(toks) != 2:
                    raise ParseError("cover row needs pattern and value", filename, lineno)
                pattern, value = toks
                if len(pattern) != len(current.inputs):
                    raise ParseError(
                        f"pattern width {len(pattern)} != fanin count "
                        f"{len(current.inputs)}", filename, lineno)
                if any(ch not in "01-" for ch in pattern) or value not in ("0", "1"):
                    raise ParseError("bad cover row characters", filename, lineno)
                current.rows.append((pattern, value))

    circuit = Circuit(model_name)
    circuit.add_inputs(inputs)

    # Build gates block by block.  Blocks may be out of topological
    # order in the file, so add in dependency order.
    by_output = {}
    for b in blocks:
        if b.output in by_output:
            raise ParseError(f"net {b.output!r} defined twice", filename, b.lineno)
        by_output[b.output] = b

    emitted: set = set(inputs)

    def emit(b: _NamesBlock, chain: Tuple[str, ...]) -> None:
        if b.output in emitted:
            return
        if b.output in chain:
            raise ParseError(f"cyclic definition of {b.output!r}", filename, b.lineno)
        for f in b.inputs:
            if f in by_output:
                emit(by_output[f], chain + (b.output,))
            elif f not in emitted:
                raise ParseError(f"undefined net {f!r}", filename, b.lineno)
        _emit_block(circuit, b, filename)
        emitted.add(b.output)

    for b in blocks:
        emit(b, ())
    for o in outputs:
        if not circuit.has_net(o):
            raise ParseError(f"undefined output {o!r}", filename, 0)
        circuit.set_output(o, o)
    return circuit


def _emit_block(circuit: Circuit, b: _NamesBlock, filename: str) -> None:
    """Convert one .names cover into gates whose final net is b.output."""
    if not b.rows:
        # Empty cover is constant 0 by BLIF convention.
        circuit.add_gate(b.output, GateType.CONST0, [])
        return
    out_values = {v for _, v in b.rows}
    if len(out_values) != 1:
        raise ParseError(
            f"mixed on/off rows in cover of {b.output!r}", filename, b.lineno)
    onset = out_values == {"1"}
    if not b.inputs:
        const_one = (b.rows[0][1] == "1")
        circuit.add_gate(
            b.output, GateType.CONST1 if const_one else GateType.CONST0, [])
        return

    inverters: dict = {}

    def inverted(sig: str) -> str:
        """NOT of a block input, shared across the block's rows."""
        if sig not in inverters:
            name = f"{b.output}__inv{len(inverters)}"
            while circuit.has_net(name):
                name += "_"
            inverters[sig] = circuit.not_(sig, name=name)
        return inverters[sig]

    def term_net(pattern: str, idx: int) -> str:
        """AND of the literals of one row; returns net name."""
        lits: List[str] = []
        for ch, sig in zip(pattern, b.inputs):
            if ch == "-":
                continue
            lits.append(sig if ch == "1" else inverted(sig))
        name = f"{b.output}__t{idx}"
        while circuit.has_net(name):
            name += "_"
        if not lits:
            return circuit.const1(name)
        if len(lits) == 1:
            return lits[0]
        return circuit.and_(*lits, name=name)

    terms = [term_net(p, i) for i, (p, _) in enumerate(b.rows)]
    if onset:
        if len(terms) == 1:
            circuit.add_gate(b.output, GateType.BUF, [terms[0]])
        else:
            circuit.add_gate(b.output, GateType.OR, terms)
    else:
        # off-set cover: output = NOT(OR of terms)
        if len(terms) == 1:
            circuit.add_gate(b.output, GateType.NOT, [terms[0]])
        else:
            circuit.add_gate(b.output, GateType.NOR, terms)


def read_blif(path: str) -> Circuit:
    """Read a BLIF file from disk."""
    with open(path, "r", encoding="utf-8") as fh:
        return loads_blif(fh.read(), filename=path)


_COVER_WRITERS = {
    GateType.CONST0: lambda n: "0\n",
    GateType.CONST1: lambda n: "1\n",
}


def _gate_cover(gtype: GateType, n: int) -> str:
    """BLIF cover rows for one gate type with n fanins."""
    if gtype is GateType.CONST0:
        return ""  # empty cover == constant 0
    if gtype is GateType.CONST1:
        return "1\n"
    if gtype is GateType.BUF:
        return "1 1\n"
    if gtype is GateType.NOT:
        return "0 1\n"
    if gtype is GateType.AND:
        return "1" * n + " 1\n"
    if gtype is GateType.NAND:
        return "1" * n + " 0\n"
    if gtype is GateType.OR:
        return "".join("-" * i + "1" + "-" * (n - i - 1) + " 1\n" for i in range(n))
    if gtype is GateType.NOR:
        return "0" * n + " 1\n"
    if gtype in (GateType.XOR, GateType.XNOR):
        rows = []
        for bits in range(1 << n):
            ones = bin(bits).count("1")
            parity = ones % 2 == 1
            if (parity and gtype is GateType.XOR) or (not parity and gtype is GateType.XNOR):
                pattern = "".join("1" if (bits >> i) & 1 else "0" for i in range(n))
                rows.append(pattern + " 1\n")
        return "".join(rows)
    if gtype is GateType.MUX:
        # fanins: (s, d0, d1); output 1 when (!s & d0) | (s & d1)
        return "01- 1\n1-1 1\n"
    raise ValueError(f"cannot write gate type {gtype!r}")


def dumps_blif(circuit: Circuit) -> str:
    """Serialize a circuit to BLIF text.

    Output ports observe nets; BLIF outputs are nets themselves, so a
    port whose name differs from its net needs an alias buffer.  An
    internal net that shares its name with such a port (lint code
    ``NL004``, common after an output-port rewire) would then be
    defined twice, so it is written under a mangled name instead.
    """
    rename: dict = {}
    taken = set(circuit.inputs) | set(circuit.gates) | set(circuit.outputs)
    for port, net in circuit.outputs.items():
        if port != net and circuit.has_net(port):
            fresh = f"{port}__shadow"
            while fresh in taken:
                fresh += "_"
            taken.add(fresh)
            rename[port] = fresh

    def nm(net: str) -> str:
        return rename.get(net, net)

    parts: List[str] = [f".model {circuit.name}\n"]
    if circuit.inputs:
        parts.append(".inputs " + " ".join(nm(n) for n in circuit.inputs)
                     + "\n")
    out_ports = list(circuit.outputs)
    if out_ports:
        parts.append(".outputs " + " ".join(out_ports) + "\n")
    for name in topological_order(circuit):
        gate = circuit.gates[name]
        parts.append(".names " + " ".join(
            [nm(f) for f in gate.fanins] + [nm(name)]) + "\n")
        parts.append(_gate_cover(gate.gtype, len(gate.fanins)))
    for port, net in circuit.outputs.items():
        if port != net:
            parts.append(f".names {nm(net)} {port}\n1 1\n")
    parts.append(".end\n")
    return "".join(parts)


def write_blif(circuit: Circuit, path: str) -> None:
    """Write a circuit to a BLIF file."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dumps_blif(circuit))
