"""Traversal utilities: topological order, cones, supports, levels."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.errors import NetlistError
from repro.netlist.circuit import Circuit


#: key of the cached whole-circuit order in ``Circuit.derived_cache()``
_TOPO_KEY = "topo_order"


def topological_order(circuit: Circuit,
                      roots: Optional[Iterable[str]] = None) -> List[str]:
    """Gate names in topological (fanin-before-fanout) order.

    When ``roots`` is given, only gates in the transitive fanin of those
    nets are returned.  Raises :class:`NetlistError` on a combinational
    cycle.

    The whole-circuit order (``roots=None``) is cached on the circuit
    and invalidated by any mutating edit; callers must treat the
    returned list as read-only.
    """
    cache = None
    if roots is None:
        cache = circuit.derived_cache()
        cached = cache.get(_TOPO_KEY)
        if cached is not None:
            return cached
        targets: List[str] = list(circuit.gates)
    else:
        targets = [r for r in roots if r in circuit.gates]

    order: List[str] = []
    state: Dict[str, int] = {}  # 0 = visiting, 1 = done
    for root in targets:
        if state.get(root) == 1:
            continue
        stack: List[tuple] = [(root, 0)]
        while stack:
            net, phase = stack.pop()
            if phase == 0:
                if net not in circuit.gates:
                    continue  # primary input
                st = state.get(net)
                if st == 1:
                    continue
                if st == 0:
                    raise NetlistError(f"combinational cycle through {net!r}")
                state[net] = 0
                stack.append((net, 1))
                for f in circuit.gates[net].fanins:
                    if state.get(f) != 1:
                        stack.append((f, 0))
            else:
                if state.get(net) != 1:
                    state[net] = 1
                    order.append(net)
    if cache is not None:
        cache[_TOPO_KEY] = order
    return order


def transitive_fanin(circuit: Circuit, nets: Iterable[str],
                     include_inputs: bool = True) -> Set[str]:
    """All nets in the transitive fanin of ``nets`` (inclusive)."""
    seen: Set[str] = set()
    stack = [n for n in nets]
    while stack:
        net = stack.pop()
        if net in seen:
            continue
        seen.add(net)
        if net in circuit.gates:
            stack.extend(circuit.gates[net].fanins)
    if not include_inputs:
        seen -= set(circuit.inputs)
    return seen


def transitive_fanout(circuit: Circuit, nets: Iterable[str]) -> Set[str]:
    """All nets in the transitive fanout of ``nets`` (inclusive)."""
    fanout: Dict[str, List[str]] = {}
    for g in circuit.gates.values():
        for f in g.fanins:
            fanout.setdefault(f, []).append(g.name)
    seen: Set[str] = set()
    stack = [n for n in nets]
    while stack:
        net = stack.pop()
        if net in seen:
            continue
        seen.add(net)
        stack.extend(fanout.get(net, ()))
    return seen


def support_masks(circuit: Circuit,
                  input_index: Optional[Dict[str, int]] = None
                  ) -> Dict[str, int]:
    """Structural input support of every net, as bitmasks.

    Bit ``k`` of a net's mask is set when the net depends on the input
    at position ``k`` (``input_index`` allows sharing one numbering
    across circuits with the same inputs, e.g. C and C').  One linear
    pass; much faster than per-net :func:`input_support` calls.
    """
    if input_index is None:
        input_index = {n: i for i, n in enumerate(circuit.inputs)}
    masks: Dict[str, int] = {}
    for n in circuit.inputs:
        masks[n] = 1 << input_index[n]
    for name in topological_order(circuit):
        acc = 0
        for f in circuit.gates[name].fanins:
            acc |= masks[f]
        masks[name] = acc
    return masks


def input_support(circuit: Circuit, net: str) -> Set[str]:
    """Primary inputs that the function of ``net`` structurally depends on."""
    return {n for n in transitive_fanin(circuit, [net]) if circuit.is_input(n)}


def output_support(circuit: Circuit, port: str) -> Set[str]:
    """Structural input support of an output port."""
    return input_support(circuit, circuit.outputs[port])


def dependent_outputs(circuit: Circuit, nets: Iterable[str]) -> List[str]:
    """Output ports whose cones contain any of ``nets``."""
    tfo = transitive_fanout(circuit, nets)
    return [p for p, n in circuit.outputs.items() if n in tfo]


def levelize(circuit: Circuit) -> Dict[str, int]:
    """Logic level of every net: inputs at 0, gate = 1 + max(fanins).

    Constants sit at level 0.  This is the unit-delay backbone of the
    timing substrate and of the paper's level-driven rewire selection.
    """
    levels: Dict[str, int] = {n: 0 for n in circuit.inputs}
    for name in topological_order(circuit):
        gate = circuit.gates[name]
        if not gate.fanins:
            levels[name] = 0
        else:
            levels[name] = 1 + max(levels[f] for f in gate.fanins)
    return levels


def cone_of(circuit: Circuit, ports: Sequence[str],
            name: Optional[str] = None) -> Circuit:
    """Extract the input cone of output ports as a standalone circuit.

    The new circuit keeps original net names; its inputs are the primary
    inputs feeding the cone, its outputs are ``ports``.
    """
    for p in ports:
        if p not in circuit.outputs:
            raise NetlistError(f"no output port {p!r}")
    roots = [circuit.outputs[p] for p in ports]
    keep = transitive_fanin(circuit, roots)
    cone = Circuit(name or f"{circuit.name}_cone")
    for i in circuit.inputs:
        if i in keep:
            cone.add_input(i)
    for g in topological_order(circuit, roots):
        if g in keep:
            gate = circuit.gates[g]
            cone.add_gate(gate.name, gate.gtype, gate.fanins)
    for p in ports:
        cone.set_output(p, circuit.outputs[p])
    return cone
