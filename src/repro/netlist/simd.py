"""NumPy vector backend for the simulation hot loops.

This module is the only place in the codebase allowed to import
``numpy`` (enforced by the ``RI007`` repo-invariant lint rule): every
other layer stays dependency-free and talks to the vector backend
through :class:`~repro.netlist.simulate.CompiledPlan`, which delegates
here when the backend is active.

The kernel is *level-batched*: a :class:`VectorPlan` regroups a
compiled plan's steps into topological levels and, within each level,
into segments of identical ``(opcode, arity)``.  Net values live in a
``(num_nets, W)`` ``uint64`` ndarray (lane ``w`` holds patterns
``64*w .. 64*w+63``, matching the little-endian word layout of the
multi-word Python batch integers).  One level costs a single merged
``np.take`` gather plus a couple of whole-segment bitwise ufunc calls,
so thousands of patterns move per interpreter dispatch instead of one
gate per bytecode loop iteration.

Backend selection is process-global (``set_backend``): ``python``
forces the pure-Python paths, ``numpy`` forces the vector kernels
(raising when numpy is missing), and ``auto`` — the default — uses the
vector kernels only where they empirically win (wide batches on
non-trivial circuits) and silently falls back when numpy is absent.
Every vector kernel is pinned bit-for-bit to its pure-Python oracle by
``tests/netlist/test_simd.py``.
"""

from __future__ import annotations

import os
from typing import Dict, List, Mapping, Sequence

from repro.errors import NetlistError

try:  # pragma: no cover - exercised via the numpy-absent fixture
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None  # type: ignore[assignment]

HAVE_NUMPY = _np is not None

BACKENDS = ("auto", "python", "numpy")

#: auto mode ignores the vector path below this many 64-bit words per
#: batch — narrow batches are dominated by per-call dispatch overhead
AUTO_MIN_WORDS = 4
#: ... and below this many compiled steps — tiny circuits fit in the
#: pure-Python interpreter loop faster than in ufunc dispatch
AUTO_MIN_STEPS = 192
#: auto mode batches candidate screens only at/above this batch size
AUTO_MIN_CANDIDATES = 2

_selected = "auto"


def set_backend(name: str) -> str:
    """Select the process-global simulation backend.

    Returns the previous selection.  Selecting ``numpy`` without numpy
    installed raises :class:`~repro.errors.NetlistError`; ``auto``
    (the default) uses the vector kernels when numpy is present and
    the batch is wide enough to win.  ``auto`` also honors the
    ``REPRO_SIM_BACKEND`` environment variable (``python``/``numpy``)
    so CI legs can force a backend without threading a flag through
    every entry point.
    """
    global _selected
    if name == "auto":
        env = os.environ.get("REPRO_SIM_BACKEND", "").strip().lower()
        if env in ("python", "numpy"):
            name = env
    if name not in BACKENDS:
        raise NetlistError(
            f"unknown simulation backend {name!r} "
            f"(choose from {', '.join(BACKENDS)})")
    if name == "numpy" and not HAVE_NUMPY:
        raise NetlistError(
            "simulation backend 'numpy' requested but numpy is not "
            "installed (pip install repro[perf], or use --sim-backend "
            "auto for silent fallback)")
    previous = _selected
    _selected = name
    return previous


def get_backend() -> str:
    """The currently selected backend name (``auto``/``python``/``numpy``)."""
    return _selected


def backend_info() -> Dict[str, object]:
    """Selection + availability snapshot (CLI/diagnostics)."""
    return {
        "selected": _selected,
        "numpy_available": HAVE_NUMPY,
        "numpy_version": getattr(_np, "__version__", None),
    }


def use_vector_run(width_words: int, num_steps: int) -> bool:
    """Should a plan evaluation of this shape go through the kernels?"""
    if _selected == "python" or not HAVE_NUMPY:
        return False
    if _selected == "numpy":
        return True
    return width_words >= AUTO_MIN_WORDS and num_steps >= AUTO_MIN_STEPS


def use_vector_screen(num_candidates: int) -> bool:
    """Should a candidate screen of this batch size be vectorized?"""
    if _selected == "python" or not HAVE_NUMPY:
        return False
    if _selected == "numpy":
        return True
    return num_candidates >= AUTO_MIN_CANDIDATES


# ----------------------------------------------------------------------
# Python-int batch <-> uint64 lane array conversion
# ----------------------------------------------------------------------
def int_to_lanes(value: int, width_words: int):
    """Pack a multi-word batch integer into a ``(W,)`` uint64 array."""
    mask = (1 << (64 * width_words)) - 1
    raw = (value & mask).to_bytes(8 * width_words, "little")
    return _np.frombuffer(raw, dtype="<u8").astype(_np.uint64,
                                                   copy=False)


def lanes_to_int(row) -> int:
    """Inverse of :func:`int_to_lanes` for one net's lane row."""
    return int.from_bytes(
        _np.ascontiguousarray(row, dtype="<u8").tobytes(), "little")


# ----------------------------------------------------------------------
# compiled vector plan
# ----------------------------------------------------------------------
class _Segment:
    """One same-``(opcode, arity)`` run of gates inside a level."""

    __slots__ = ("opcode", "arity", "out_start", "out_stop", "buf_off",
                 "size")

    def __init__(self, opcode: int, arity: int, out_start: int,
                 out_stop: int, buf_off: int):
        self.opcode = opcode
        self.arity = arity
        self.out_start = out_start
        self.out_stop = out_stop
        self.buf_off = buf_off
        self.size = out_stop - out_start


#: sentinel results for constant segments — callers broadcast-fill
CONST0_FILL = 0
CONST1_FILL = 0xFFFFFFFFFFFFFFFF


def _apply_segment(np, opcode, arity, gathered, off, n, out=None):
    """Evaluate one segment from its position-major operand blocks.

    With ``out`` (a contiguous destination slice) the result is
    written straight through ufunc ``out=`` arguments — no
    intermediate copy — and ``None`` is returned.  Without it the
    result block (a view into ``gathered``, mutated in place) is
    returned for the caller to scatter; constant segments return an
    int fill value either way.
    """
    if 4 <= opcode <= 9:  # AND/NAND/OR/NOR/XOR/XNOR
        ufunc = (np.bitwise_and if opcode < 6 else
                 np.bitwise_or if opcode < 8 else
                 np.bitwise_xor)
        first = gathered[off:off + n]
        if out is None or arity == 1:
            acc = first if out is None else out
            if out is not None:
                acc[...] = first
            for p in range(1, arity):
                ufunc(acc, gathered[off + p * n:off + (p + 1) * n],
                      out=acc)
            if opcode in (5, 7, 9):
                np.bitwise_not(acc, out=acc)
            return acc if out is None else None
        ufunc(first, gathered[off + n:off + 2 * n], out=out)
        for p in range(2, arity):
            ufunc(out, gathered[off + p * n:off + (p + 1) * n],
                  out=out)
        if opcode in (5, 7, 9):
            np.bitwise_not(out, out=out)
        return None
    if opcode == 3:  # NOT
        blk = gathered[off:off + n]
        np.bitwise_not(blk, out=blk if out is None else out)
        return blk if out is None else None
    if opcode == 2:  # BUF
        if out is None:
            return gathered[off:off + n]
        out[...] = gathered[off:off + n]
        return None
    if opcode == 10:  # MUX(s, d0, d1) = d0 ^ (s & (d0 ^ d1))
        s = gathered[off:off + n]
        d0 = gathered[off + n:off + 2 * n]
        d1 = gathered[off + 2 * n:off + 3 * n]
        np.bitwise_xor(d0, d1, out=d1)
        np.bitwise_and(d1, s, out=d1)
        np.bitwise_xor(d1, d0, out=d1 if out is None else out)
        return d1 if out is None else None
    return CONST1_FILL if opcode == 1 else CONST0_FILL


class VectorPlan:
    """Level-batched ndarray twin of a :class:`CompiledPlan`.

    The vector plan renumbers nets so each level's gates occupy one
    contiguous index range (inputs keep their plan slots); ``perm``
    maps plan indices to vector indices and ``inv_np`` back.  The
    plan's own step order is left untouched — the pure-Python paths
    never see this numbering.
    """

    __slots__ = ("num_nets", "num_inputs", "perm", "perm_np", "inv_np",
                 "levels", "net_level")

    def __init__(self, steps: Sequence[tuple], num_nets: int,
                 num_inputs: int):
        if _np is None:  # pragma: no cover - guarded by callers
            raise NetlistError("numpy is not installed")
        self.num_nets = num_nets
        self.num_inputs = num_inputs
        level = [0] * num_nets
        for out, _opcode, fanins in steps:
            level[out] = 1 + max((level[j] for j in fanins), default=0)
        self.net_level = level
        # gates sorted by (level, opcode, arity, fanin0) — fanin0 as a
        # locality tiebreak so the merged gather walks mostly forward
        order = sorted(
            range(len(steps)),
            key=lambda si: (level[steps[si][0]], steps[si][1],
                            len(steps[si][2]),
                            steps[si][2][0] if steps[si][2] else 0))
        perm = [0] * num_nets  # plan index -> vector index
        for i in range(num_inputs):
            perm[i] = i
        for pos, si in enumerate(order):
            perm[steps[si][0]] = num_inputs + pos
        self.perm = perm
        self.perm_np = _np.fromiter(perm, dtype=_np.intp,
                                    count=num_nets)
        inv = [0] * num_nets
        for old, new in enumerate(perm):
            inv[new] = old
        self.inv_np = _np.fromiter(inv, dtype=_np.intp, count=num_nets)

        # levels: (gather_idx, [segments]); segment operand blocks are
        # position-major (all fanin-0 rows, then fanin-1, ...) so each
        # operand of a segment is one contiguous buffer slice
        self.levels: List[tuple] = []
        pos = 0
        while pos < len(order):
            lvl = level[steps[order[pos]][0]]
            gather: List[int] = []
            segments: List[_Segment] = []
            while pos < len(order):
                si = order[pos]
                out, opcode, fanins = steps[si]
                if level[out] != lvl:
                    break
                arity = len(fanins)
                run_start = pos
                entries = []
                while pos < len(order):
                    o2, op2, f2 = steps[order[pos]]
                    if level[o2] != lvl or op2 != opcode \
                            or len(f2) != arity:
                        break
                    entries.append(f2)
                    pos += 1
                segments.append(
                    _Segment(opcode, arity, num_inputs + run_start,
                             num_inputs + pos, len(gather)))
                for p in range(arity):
                    gather.extend(perm[f[p]] for f in entries)
            idx = _np.fromiter(gather, dtype=_np.intp,
                               count=len(gather))
            self.levels.append((idx, segments))

    # ------------------------------------------------------------------
    def _eval_levels(self, values) -> None:
        """Evaluate every level in place over ``values`` (vector
        numbering, inputs pre-filled; trailing axes are free — the
        screen path adds a candidate axis)."""
        np = _np
        for idx, segments in self.levels:
            gathered = np.take(values, idx, axis=0) if len(idx) \
                else None
            for seg in segments:
                res = _apply_segment(np, seg.opcode, seg.arity,
                                     gathered, seg.buf_off, seg.size,
                                     out=values[seg.out_start:
                                                seg.out_stop])
                if isinstance(res, int):
                    values[seg.out_start:seg.out_stop] = np.uint64(res)

    # ------------------------------------------------------------------
    def run_lanes(self, names: Sequence[str],
                  input_words: Mapping[str, int], width: int):
        """Evaluate one batch; returns a ``(num_nets, W)`` uint64 array
        indexed like the *plan* (not the vector numbering)."""
        np = _np
        values = np.empty((self.num_nets, width), dtype=np.uint64)
        for i in range(self.num_inputs):
            name = names[i]
            try:
                word = input_words[name]
            except KeyError:
                raise NetlistError(f"missing value for input {name!r}")
            values[i] = int_to_lanes(word, width)
        self._eval_levels(values)
        return np.take(values, self.perm_np, axis=0)

    def run_ints(self, names: Sequence[str],
                 input_words: Mapping[str, int],
                 width: int) -> List[int]:
        """Like :meth:`run_lanes`, converted to plan-indexed batch ints."""
        lanes = self.run_lanes(names, input_words, width)
        raw = _np.ascontiguousarray(lanes, dtype="<u8").tobytes()
        stride = 8 * width
        return [int.from_bytes(raw[i * stride:(i + 1) * stride],
                               "little")
                for i in range(self.num_nets)]


def compile_vector(plan) -> VectorPlan:
    """Build the vector twin of a compiled plan."""
    return VectorPlan(plan.steps, len(plan.names), plan.num_inputs)


# ----------------------------------------------------------------------
# batched candidate screening
# ----------------------------------------------------------------------
class OverlayKernel:
    """Affected-cone overlay evaluator for one set of rewired pins.

    The candidate screen repeatedly re-evaluates the nets downstream of
    the same rectification-point pins while only the rewiring *sources*
    vary.  This kernel precomputes that downstream slice of the vector
    plan once per pin set — segments filtered to affected entries —
    and then scores a whole batch of candidates as ``(net, candidate,
    word)`` array ops: one gather plus a few whole-segment ufuncs per
    level, every candidate riding the second axis.
    """

    __slots__ = ("vplan", "affected_plan", "sub_levels", "pin_rows")

    def __init__(self, vplan: VectorPlan, steps: Sequence[tuple],
                 pin_owner_indices: Sequence[int]):
        np = _np
        self.vplan = vplan
        perm = vplan.perm
        owners = {perm[i] for i in pin_owner_indices}
        affected = set(owners)
        # one pass in step order marks everything downstream
        for out, _opcode, fanins in steps:
            v = perm[out]
            if v in affected:
                continue
            for j in fanins:
                if perm[j] in affected:
                    affected.add(v)
                    break
        inv = vplan.inv_np
        self.affected_plan = {int(inv[v]) for v in affected}
        # filter each level's segments down to affected entries; also
        # record, per (owner gate, pin position), the row its operand
        # occupies in the level's gathered buffer so candidate
        # overrides can be patched in before evaluation
        self.sub_levels: List[tuple] = []
        self.pin_rows: Dict[tuple, tuple] = {}
        for idx, segments in vplan.levels:
            gather: List[int] = []
            subs = []
            for seg in segments:
                rows = [e for e in range(seg.size)
                        if seg.out_start + e in affected]
                if not rows:
                    continue
                n = len(rows)
                outs = np.fromiter((seg.out_start + e for e in rows),
                                   dtype=np.intp, count=n)
                off = len(gather)
                for p in range(seg.arity):
                    base = seg.buf_off + p * seg.size
                    gather.extend(int(idx[base + e]) for e in rows)
                for e_new, e in enumerate(rows):
                    vout = seg.out_start + e
                    if vout in owners:
                        for p in range(seg.arity):
                            self.pin_rows[(int(inv[vout]), p)] = (
                                len(self.sub_levels),
                                off + p * n + e_new)
                subs.append((seg.opcode, seg.arity, outs, off, n))
            if subs:
                sub_idx = np.fromiter(gather, dtype=np.intp,
                                      count=len(gather))
                self.sub_levels.append((sub_idx, subs))

    # ------------------------------------------------------------------
    def evaluate(self, base_vec, num_candidates: int, overrides):
        """Re-evaluate the affected cone for a batch of candidates.

        ``base_vec`` is the filter's base simulation as a
        ``(num_nets, W)`` array in *vector* numbering.  ``overrides``
        maps ``(plan_gate_index, pin_position)`` to a ``(C, W)``
        uint64 array of per-candidate operand values.  Returns the
        ``(num_nets, C, W)`` value array in vector numbering.
        """
        np = _np
        C = num_candidates
        values = np.empty((self.vplan.num_nets, C,
                           base_vec.shape[1]), dtype=np.uint64)
        values[:] = base_vec[:, None, :]
        patches: Dict[int, list] = {}
        for key, rows in overrides.items():
            li, row = self.pin_rows[key]
            patches.setdefault(li, []).append((row, rows))
        for li, (sub_idx, subs) in enumerate(self.sub_levels):
            gathered = np.take(values, sub_idx, axis=0)
            for row, rows in patches.get(li, ()):
                gathered[row] = rows
            for opcode, arity, outs, off, n in subs:
                res = _apply_segment(np, opcode, arity, gathered, off,
                                     n)
                if isinstance(res, int):
                    values[outs] = np.uint64(res)
                else:
                    values[outs] = res
        return values

    def value_rows(self, values, plan_index: int):
        """The ``(C, W)`` rows of one plan-indexed net."""
        return values[self.vplan.perm[plan_index]]


def base_vec_from_ints(base: Sequence[int], perm: Sequence[int],
                       width: int):
    """Stack per-net batch ints into a vector-numbered lane array."""
    np = _np
    out = np.empty((len(base), width), dtype=np.uint64)
    for i, value in enumerate(base):
        out[perm[i]] = int_to_lanes(value, width)
    return out


def lanes_from_ints(values: Sequence[int], width: int):
    """Stack per-net batch ints into a same-order ``(N, W)`` array."""
    np = _np
    out = np.empty((len(values), width), dtype=np.uint64)
    for i, value in enumerate(values):
        out[i] = int_to_lanes(value, width)
    return out
