"""Structural Verilog reader and writer.

The writer emits a flat gate-level module using Verilog primitive
instantiations (``and``, ``or``, ``not``, ...) plus ``assign`` for
buffers, constants and muxes.  Identifiers are escaped when they are
not plain Verilog names.

The reader accepts the same structural subset (one flat module,
primitive instantiations, ``assign`` with constants / identifiers /
``~a`` / 2-operand ``& | ^`` / ternary muxes), which covers everything
the writer produces plus hand-written gate-level files of that shape.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.errors import ParseError
from repro.netlist.circuit import Circuit
from repro.netlist.gate import GateType
from repro.netlist.traverse import topological_order

_PLAIN = re.compile(r"^[A-Za-z_][A-Za-z0-9_$]*$")

_PRIMITIVES = {
    GateType.AND: "and",
    GateType.OR: "or",
    GateType.NAND: "nand",
    GateType.NOR: "nor",
    GateType.XOR: "xor",
    GateType.XNOR: "xnor",
    GateType.NOT: "not",
    GateType.BUF: "buf",
}


def _vname(name: str) -> str:
    """Escape an identifier when it is not a plain Verilog name."""
    if _PLAIN.match(name):
        return name
    return "\\" + name + " "


def dumps_verilog(circuit: Circuit) -> str:
    """Serialize a circuit to structural Verilog text."""
    ports = [_vname(n) for n in circuit.inputs] + [
        _vname(p) for p in circuit.outputs
    ]
    lines: List[str] = [f"module {_vname(circuit.name)} ({', '.join(ports)});"]
    for n in circuit.inputs:
        lines.append(f"  input {_vname(n)};")
    for p in circuit.outputs:
        lines.append(f"  output {_vname(p)};")
    for g in circuit.gates:
        lines.append(f"  wire {_vname(g)};")
    for idx, name in enumerate(topological_order(circuit)):
        gate = circuit.gates[name]
        out = _vname(name)
        ins = [_vname(f) for f in gate.fanins]
        if gate.gtype is GateType.CONST0:
            lines.append(f"  assign {out} = 1'b0;")
        elif gate.gtype is GateType.CONST1:
            lines.append(f"  assign {out} = 1'b1;")
        elif gate.gtype is GateType.MUX:
            s, d0, d1 = ins
            lines.append(f"  assign {out} = {s} ? {d1} : {d0};")
        else:
            prim = _PRIMITIVES[gate.gtype]
            lines.append(f"  {prim} g{idx} ({out}, {', '.join(ins)});")
    for port, net in circuit.outputs.items():
        if port != net:
            lines.append(f"  assign {_vname(port)} = {_vname(net)};")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def write_verilog(circuit: Circuit, path: str) -> None:
    """Write a circuit to a Verilog file."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dumps_verilog(circuit))


# ----------------------------------------------------------------------
# reader
# ----------------------------------------------------------------------

_PRIMITIVE_TYPES = {v: k for k, v in _PRIMITIVES.items()}

_TOKEN = re.compile(
    r"\\[^ \t\n]+[ \t\n]"      # escaped identifier (incl. trailing space)
    r"|[A-Za-z_][A-Za-z0-9_$]*"
    r"|1'b[01]"
    r"|[(),;?:~&|^=]"
)


def _tokenize_verilog(text: str, filename: str) -> List[str]:
    # strip comments
    text = re.sub(r"//[^\n]*", "", text)
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)
    tokens = []
    pos = 0
    for match in _TOKEN.finditer(text):
        between = text[pos:match.start()]
        if between.strip():
            raise ParseError(f"unexpected text {between.strip()[:20]!r}",
                             filename)
        tok = match.group(0)
        if tok.startswith("\\"):
            tok = tok[1:].rstrip()
        tokens.append(tok)
        pos = match.end()
    if text[pos:].strip():
        raise ParseError(f"unexpected trailing text "
                         f"{text[pos:].strip()[:20]!r}", filename)
    return tokens


class _VerilogParser:
    """Recursive-descent parser for the structural subset."""

    def __init__(self, tokens: List[str], filename: str):
        self.tokens = tokens
        self.pos = 0
        self.filename = filename

    def error(self, message: str) -> ParseError:
        near = " ".join(self.tokens[self.pos:self.pos + 4])
        return ParseError(f"{message} (near {near!r})", self.filename)

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self, expected: Optional[str] = None) -> str:
        tok = self.peek()
        if tok is None:
            raise self.error("unexpected end of file")
        if expected is not None and tok != expected:
            raise self.error(f"expected {expected!r}, got {tok!r}")
        self.pos += 1
        return tok

    def take_until(self, stop: str) -> List[str]:
        out = []
        while self.peek() != stop:
            if self.peek() is None:
                raise self.error(f"missing {stop!r}")
            out.append(self.take())
        self.take(stop)
        return out

    # ------------------------------------------------------------------
    def parse(self) -> Circuit:
        self.take("module")
        name = self.take()
        circuit = Circuit(name)
        if self.peek() == "(":
            self.take("(")
            self.take_until(")")
        self.take(";")

        inputs: List[str] = []
        outputs: List[str] = []
        # statement -> (output net, gate type, operand names) deferred
        # until all declarations and statements are read so the file
        # does not need to be topologically ordered
        pending: List[Tuple[str, GateType, List[str]]] = []
        assigns: List[Tuple[str, List[str]]] = []

        while self.peek() != "endmodule":
            tok = self.take()
            if tok in ("input", "output", "wire"):
                names = self._name_list()
                if tok == "input":
                    inputs.extend(names)
                elif tok == "output":
                    outputs.extend(names)
            elif tok in _PRIMITIVE_TYPES:
                gtype = _PRIMITIVE_TYPES[tok]
                self.take()  # instance name
                self.take("(")
                operands = [t for t in self.take_until(")") if t != ","]
                self.take(";")
                if len(operands) < 2:
                    raise self.error("primitive needs output and input")
                pending.append((operands[0], gtype, operands[1:]))
            elif tok == "assign":
                target = self.take()
                self.take("=")
                expr = self.take_until(";")
                assigns.append((target, expr))
            else:
                raise self.error(f"unsupported construct {tok!r}")
        self.take("endmodule")

        for n in inputs:
            circuit.add_input(n)

        # convert assigns into gate records
        for target, expr in assigns:
            pending.append(self._assign_to_gate(target, expr))

        self._emit(circuit, pending, outputs)
        return circuit

    def _name_list(self) -> List[str]:
        names = [t for t in self.take_until(";") if t != ","]
        if not names:
            raise self.error("empty declaration")
        return names

    def _assign_to_gate(self, target: str,
                        expr: List[str]) -> Tuple[str, GateType, List[str]]:
        if len(expr) == 1:
            tok = expr[0]
            if tok == "1'b0":
                return (target, GateType.CONST0, [])
            if tok == "1'b1":
                return (target, GateType.CONST1, [])
            return (target, GateType.BUF, [tok])
        if len(expr) == 2 and expr[0] == "~":
            return (target, GateType.NOT, [expr[1]])
        if len(expr) == 3 and expr[1] in ("&", "|", "^"):
            op = {"&": GateType.AND, "|": GateType.OR,
                  "^": GateType.XOR}[expr[1]]
            return (target, op, [expr[0], expr[2]])
        if len(expr) == 5 and expr[1] == "?" and expr[3] == ":":
            # s ? d1 : d0  -> MUX(s, d0, d1)
            return (target, GateType.MUX, [expr[0], expr[4], expr[2]])
        raise self.error(f"unsupported assign expression {expr!r}")

    def _emit(self, circuit: Circuit,
              pending: List[Tuple[str, GateType, List[str]]],
              outputs: List[str]) -> None:
        by_output: Dict[str, Tuple[str, GateType, List[str]]] = {}
        for rec in pending:
            if rec[0] in by_output:
                raise self.error(f"net {rec[0]!r} driven twice")
            by_output[rec[0]] = rec
        emitted = set(circuit.inputs)

        def emit(name: str, chain: Tuple[str, ...]) -> None:
            if name in emitted:
                return
            if name in chain:
                raise self.error(f"combinational cycle through {name!r}")
            rec = by_output.get(name)
            if rec is None:
                raise self.error(f"undriven net {name!r}")
            for f in rec[2]:
                emit(f, chain + (name,))
            circuit.add_gate(rec[0], rec[1], rec[2])
            emitted.add(name)

        for rec in pending:
            emit(rec[0], ())
        for port in outputs:
            if not circuit.has_net(port):
                raise self.error(f"undriven output {port!r}")
            circuit.set_output(port, port)


def loads_verilog(text: str, filename: str = "<string>") -> Circuit:
    """Parse structural Verilog text into a :class:`Circuit`."""
    return _VerilogParser(_tokenize_verilog(text, filename),
                          filename).parse()


def read_verilog(path: str) -> Circuit:
    """Read a structural Verilog file from disk."""
    with open(path, "r", encoding="utf-8") as fh:
        return loads_verilog(fh.read(), filename=path)
