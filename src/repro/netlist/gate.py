"""Gate types and their Boolean semantics.

Gates model the logic operations of a circuit (Section 3.1).  Every gate
produces a single binary output from its binary inputs.  All types
except ``MUX`` accept an arbitrary positive arity; ``NOT`` and ``BUF``
are unary, constants are nullary, and ``MUX`` is exactly ternary with
operand order ``(select, data0, data1)``.
"""

from __future__ import annotations

import enum
from typing import Sequence

from repro.errors import NetlistError

# All simulation words are this many patterns wide.
WORD_BITS = 64
WORD_MASK = (1 << WORD_BITS) - 1


class GateType(enum.Enum):
    """The logic operation computed by a gate."""

    CONST0 = "const0"
    CONST1 = "const1"
    BUF = "buf"
    NOT = "not"
    AND = "and"
    OR = "or"
    NAND = "nand"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"
    MUX = "mux"

    @property
    def is_constant(self) -> bool:
        return self in (GateType.CONST0, GateType.CONST1)

    def arity_ok(self, n: int) -> bool:
        """Whether the type accepts ``n`` operands."""
        if self.is_constant:
            return n == 0
        if self in (GateType.BUF, GateType.NOT):
            return n == 1
        if self is GateType.MUX:
            return n == 3
        return n >= 1


class Gate:
    """A named logic gate.

    Attributes:
        name: unique identifier; also the name of the net the gate drives.
        gtype: the :class:`GateType`.
        fanins: names of the nets feeding the gate's input pins, in pin
            order.  For ``MUX`` the order is ``(select, data0, data1)``.
    """

    __slots__ = ("name", "gtype", "fanins")

    def __init__(self, name: str, gtype: GateType, fanins: Sequence[str]):
        fanins = list(fanins)
        if not gtype.arity_ok(len(fanins)):
            raise NetlistError(
                f"gate {name!r}: type {gtype.value} does not accept "
                f"{len(fanins)} operand(s)"
            )
        self.name = name
        self.gtype = gtype
        self.fanins = fanins

    def copy(self) -> "Gate":
        return Gate(self.name, self.gtype, list(self.fanins))

    def __repr__(self) -> str:
        return f"Gate({self.name!r}, {self.gtype.value}, {self.fanins!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Gate)
            and self.name == other.name
            and self.gtype == other.gtype
            and self.fanins == other.fanins
        )

    def __hash__(self) -> int:
        return hash((self.name, self.gtype, tuple(self.fanins)))


def eval_gate(gtype: GateType, operands: Sequence[int]) -> int:
    """Evaluate a gate on 64-bit simulation words.

    Each operand packs :data:`WORD_BITS` input patterns; the result packs
    the gate output for each pattern.  Complement-style operators mask
    the result back to 64 bits.
    """
    if gtype is GateType.CONST0:
        return 0
    if gtype is GateType.CONST1:
        return WORD_MASK
    if gtype is GateType.BUF:
        return operands[0]
    if gtype is GateType.NOT:
        return ~operands[0] & WORD_MASK
    if gtype is GateType.MUX:
        s, d0, d1 = operands
        return ((~s & d0) | (s & d1)) & WORD_MASK
    acc = operands[0]
    if gtype in (GateType.AND, GateType.NAND):
        for w in operands[1:]:
            acc &= w
        return acc if gtype is GateType.AND else ~acc & WORD_MASK
    if gtype in (GateType.OR, GateType.NOR):
        for w in operands[1:]:
            acc |= w
        return acc if gtype is GateType.OR else ~acc & WORD_MASK
    if gtype in (GateType.XOR, GateType.XNOR):
        for w in operands[1:]:
            acc ^= w
        return acc if gtype is GateType.XOR else ~acc & WORD_MASK
    raise NetlistError(f"unknown gate type {gtype!r}")


def eval_gate_bool(gtype: GateType, operands: Sequence[bool]) -> bool:
    """Evaluate a gate on single Boolean values."""
    words = [WORD_MASK if v else 0 for v in operands]
    return bool(eval_gate(gtype, words) & 1)


# Sorting fanins of these types never changes the function; used by
# structural hashing to canonicalize.
SYMMETRIC_TYPES = frozenset(
    {GateType.AND, GateType.OR, GateType.NAND, GateType.NOR,
     GateType.XOR, GateType.XNOR}
)
