"""Circuit statistics mirroring the columns of Table 1."""

from __future__ import annotations

from dataclasses import dataclass

from repro.netlist.circuit import Circuit


@dataclass(frozen=True)
class CircuitStats:
    """Counts reported per test case in Table 1 of the paper."""

    inputs: int
    outputs: int
    gates: int
    nets: int
    sinks: int

    def row(self) -> str:
        return (
            f"{self.inputs:>7} {self.outputs:>7} {self.gates:>7} "
            f"{self.nets:>7} {self.sinks:>7}"
        )


def circuit_stats(circuit: Circuit) -> CircuitStats:
    """Compute input/output/gate/net/sink counts for a circuit."""
    return CircuitStats(
        inputs=len(circuit.inputs),
        outputs=len(circuit.outputs),
        gates=circuit.num_gates,
        nets=circuit.num_nets,
        sinks=circuit.num_sinks,
    )
