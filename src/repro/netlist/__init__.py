"""Combinational netlist data model.

This package provides the design representation of Section 3.1 of the
paper: circuits made of multi-input single-output gates, connected by
named nets that carry a value from one source pin to many sink pins.

The central class is :class:`~repro.netlist.circuit.Circuit`.  Supporting
modules add traversal (topological order, transitive fanin/fanout),
64-way parallel simulation, structural hashing, well-formedness
validation, BLIF / structural-Verilog I/O and statistics that mirror the
columns of Table 1 in the paper.
"""

from repro.netlist.gate import Gate, GateType
from repro.netlist.circuit import Circuit, Pin
from repro.netlist.traverse import (
    topological_order,
    transitive_fanin,
    transitive_fanout,
    input_support,
    levelize,
    cone_of,
)
from repro.netlist.simulate import simulate, simulate_words, random_patterns
from repro.netlist.hashing import structural_hash, strash
from repro.netlist.validate import validate, is_well_formed
from repro.netlist.stats import CircuitStats, circuit_stats
from repro.netlist.io_blif import read_blif, write_blif, loads_blif, dumps_blif
from repro.netlist.io_verilog import (
    write_verilog,
    dumps_verilog,
    read_verilog,
    loads_verilog,
)
from repro.netlist.io_aiger import (
    read_aiger,
    write_aiger,
    loads_aiger,
    dumps_aiger,
)

__all__ = [
    "Gate",
    "GateType",
    "Circuit",
    "Pin",
    "topological_order",
    "transitive_fanin",
    "transitive_fanout",
    "input_support",
    "levelize",
    "cone_of",
    "simulate",
    "simulate_words",
    "random_patterns",
    "structural_hash",
    "strash",
    "validate",
    "is_well_formed",
    "CircuitStats",
    "circuit_stats",
    "read_blif",
    "write_blif",
    "loads_blif",
    "dumps_blif",
    "write_verilog",
    "dumps_verilog",
    "read_verilog",
    "loads_verilog",
    "read_aiger",
    "write_aiger",
    "loads_aiger",
    "dumps_aiger",
]
