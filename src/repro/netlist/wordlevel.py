"""Word-level construction helpers.

A thin layer over :class:`Circuit` for building datapath logic the way
RTL describes it: named multi-bit words with vectorized operators,
ripple adders, equality and muxing.  The generators use plain gates for
historical reasons; downstream users building their own specs get this
friendlier API (see ``examples/wordlevel_spec.py``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.errors import NetlistError
from repro.netlist.circuit import Circuit

#: operands may be words or single nets (broadcast)
Operand = Union["Word", str]


class Word:
    """An ordered list of nets, LSB first, bound to a circuit."""

    __slots__ = ("circuit", "bits")

    def __init__(self, circuit: Circuit, bits: Sequence[str]):
        for b in bits:
            if not circuit.has_net(b):
                raise NetlistError(f"word bit {b!r} does not exist")
        self.circuit = circuit
        self.bits = list(bits)

    def __len__(self) -> int:
        return len(self.bits)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Word(self.circuit, self.bits[index])
        return self.bits[index]

    # ------------------------------------------------------------------
    def _pair(self, other: Operand) -> List[str]:
        if isinstance(other, Word):
            if len(other) != len(self):
                raise NetlistError(
                    f"width mismatch: {len(self)} vs {len(other)}")
            return list(other.bits)
        return [other] * len(self)  # broadcast a single net

    def _map2(self, other: Operand, op) -> "Word":
        rhs = self._pair(other)
        return Word(self.circuit,
                    [op(a, b) for a, b in zip(self.bits, rhs)])

    def __and__(self, other: Operand) -> "Word":
        return self._map2(other, self.circuit.and_)

    def __or__(self, other: Operand) -> "Word":
        return self._map2(other, self.circuit.or_)

    def __xor__(self, other: Operand) -> "Word":
        return self._map2(other, self.circuit.xor)

    def __invert__(self) -> "Word":
        return Word(self.circuit, [self.circuit.not_(b) for b in self.bits])

    # ------------------------------------------------------------------
    def add(self, other: Operand, carry_in: Optional[str] = None):
        """Ripple-carry addition; returns ``(sum_word, carry_out)``."""
        rhs = self._pair(other)
        c = self.circuit
        carry = carry_in or c.const0()
        sums: List[str] = []
        for a, b in zip(self.bits, rhs):
            axb = c.xor(a, b)
            sums.append(c.xor(axb, carry))
            gen = c.and_(a, b)
            prop = c.and_(axb, carry)
            carry = c.or_(gen, prop)
        return Word(c, sums), carry

    def equals(self, other: Operand) -> str:
        """Single net: true when the words are bitwise equal."""
        rhs = self._pair(other)
        c = self.circuit
        eqs = [c.xnor(a, b) for a, b in zip(self.bits, rhs)]
        return eqs[0] if len(eqs) == 1 else c.and_(*eqs)

    def mux(self, select: str, other: Operand) -> "Word":
        """Per-bit ``select ? other : self``."""
        rhs = self._pair(other)
        c = self.circuit
        return Word(c, [c.mux(select, a, b)
                        for a, b in zip(self.bits, rhs)])

    def any(self) -> str:
        """OR-reduction to one net."""
        if len(self.bits) == 1:
            return self.bits[0]
        return self.circuit.or_(*self.bits)

    def parity(self) -> str:
        """XOR-reduction to one net."""
        if len(self.bits) == 1:
            return self.bits[0]
        return self.circuit.xor(*self.bits)

    def outputs(self, prefix: str) -> None:
        """Expose every bit as output ``{prefix}{k}``."""
        for k, bit in enumerate(self.bits):
            self.circuit.set_output(f"{prefix}{k}", bit)


def input_word(circuit: Circuit, prefix: str, width: int) -> Word:
    """Declare ``width`` primary inputs ``{prefix}0 ..`` as a word."""
    return Word(circuit,
                circuit.add_inputs([f"{prefix}{k}" for k in range(width)]))


def constant_word(circuit: Circuit, value: int, width: int) -> Word:
    """A word tied to the binary encoding of ``value`` (LSB first)."""
    bits = []
    for k in range(width):
        bits.append(circuit.const1() if value >> k & 1 else
                    circuit.const0())
    return Word(circuit, bits)
