"""The :class:`Circuit` class: a well-formed combinational netlist.

A circuit owns a set of *nets*, each driven by exactly one source — a
primary input or a gate output — and consumed at *sink pins*: gate input
pins and primary-output ports.  Net names equal the name of their source
(the input name or the gate name), which keeps the model compact and
makes rewiring a pure name substitution.

The rewiring edit of the paper (Section 3.3) maps onto two methods:
:meth:`Circuit.rewire_pin` redirects one sink pin to another net, and
:meth:`Circuit.pin_driver` reads the net currently driving a pin.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import NetlistError
from repro.netlist.gate import Gate, GateType


class Pin:
    """A sink pin: one consumer of a net.

    Two kinds exist:

    * gate input pins — ``Pin.gate(gate_name, index)``;
    * primary-output ports — ``Pin.output(port_name)``.

    Pins are immutable and hashable so they can key dictionaries of
    rectification candidates.
    """

    __slots__ = ("kind", "owner", "index")

    GATE = "gate"
    OUTPUT = "output"

    def __init__(self, kind: str, owner: str, index: int = 0):
        if kind not in (Pin.GATE, Pin.OUTPUT):
            raise NetlistError(f"bad pin kind {kind!r}")
        self.kind = kind
        self.owner = owner
        self.index = index

    @staticmethod
    def gate(gate_name: str, index: int) -> "Pin":
        return Pin(Pin.GATE, gate_name, index)

    @staticmethod
    def output(port_name: str) -> "Pin":
        return Pin(Pin.OUTPUT, port_name, 0)

    @property
    def is_output_port(self) -> bool:
        return self.kind == Pin.OUTPUT

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Pin)
            and self.kind == other.kind
            and self.owner == other.owner
            and self.index == other.index
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.owner, self.index))

    def __repr__(self) -> str:
        if self.kind == Pin.OUTPUT:
            return f"Pin.output({self.owner!r})"
        return f"Pin.gate({self.owner!r}, {self.index})"

    def __lt__(self, other: "Pin") -> bool:
        return (self.kind, self.owner, self.index) < (
            other.kind,
            other.owner,
            other.index,
        )


class Circuit:
    """A combinational netlist.

    Attributes:
        name: circuit name (used by the writers).
        inputs: primary-input names in declaration order.
        outputs: mapping from output-port name to the net it observes.
        gates: mapping from gate name to :class:`Gate`.
    """

    def __init__(self, name: str = "top"):
        self.name = name
        self.inputs: List[str] = []
        self.outputs: Dict[str, str] = {}
        self.gates: Dict[str, Gate] = {}
        self._input_set: set = set()
        #: derived-data cache (topological orders, compiled simulation
        #: plans, structural digests); dropped on any mutation.  Helpers
        #: in repro.netlist own their keys; see :meth:`derived_cache`.
        self._derived: dict = {}

    # ------------------------------------------------------------------
    # derived-data cache
    # ------------------------------------------------------------------
    def derived_cache(self) -> dict:
        """Cache for data derived from the current topology.

        Entries are owned by the computing helpers
        (:func:`repro.netlist.traverse.topological_order`,
        :func:`repro.netlist.simulate.compiled_plan`, ...) and must be
        pure functions of the circuit structure: any mutating edit
        clears the whole cache.
        """
        return self._derived

    def _invalidate_derived(self) -> None:
        if self._derived:
            self._derived = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> str:
        """Declare a primary input; returns its net name."""
        if name in self._input_set or name in self.gates:
            raise NetlistError(f"duplicate net name {name!r}")
        self.inputs.append(name)
        self._input_set.add(name)
        self._invalidate_derived()
        return name

    def add_inputs(self, names: Iterable[str]) -> List[str]:
        return [self.add_input(n) for n in names]

    def add_gate(self, name: str, gtype: GateType, fanins: Sequence[str]) -> str:
        """Add a gate driving a net of the same name; returns the name."""
        if name in self._input_set or name in self.gates:
            raise NetlistError(f"duplicate net name {name!r}")
        for f in fanins:
            if not self.has_net(f):
                raise NetlistError(
                    f"gate {name!r}: fanin net {f!r} does not exist"
                )
        self.gates[name] = Gate(name, gtype, fanins)
        self._invalidate_derived()
        return name

    def set_output(self, port: str, net: str) -> None:
        """Connect (or reconnect) an output port to a net."""
        if not self.has_net(net):
            raise NetlistError(f"output {port!r}: net {net!r} does not exist")
        self.outputs[port] = net
        self._invalidate_derived()

    # Convenience constructors used heavily by the workload generators
    # and tests.  Each adds a gate with a fresh or given name.
    def _fresh(self, prefix: str) -> str:
        i = len(self.gates)
        name = f"{prefix}{i}"
        while name in self.gates or name in self._input_set:
            i += 1
            name = f"{prefix}{i}"
        return name

    def add(self, gtype: GateType, fanins: Sequence[str],
            name: Optional[str] = None) -> str:
        return self.add_gate(name or self._fresh("n"), gtype, fanins)

    def const0(self, name: Optional[str] = None) -> str:
        return self.add(GateType.CONST0, [], name)

    def const1(self, name: Optional[str] = None) -> str:
        return self.add(GateType.CONST1, [], name)

    def buf(self, a: str, name: Optional[str] = None) -> str:
        return self.add(GateType.BUF, [a], name)

    def not_(self, a: str, name: Optional[str] = None) -> str:
        return self.add(GateType.NOT, [a], name)

    def and_(self, *fanins: str, name: Optional[str] = None) -> str:
        return self.add(GateType.AND, list(fanins), name)

    def or_(self, *fanins: str, name: Optional[str] = None) -> str:
        return self.add(GateType.OR, list(fanins), name)

    def nand(self, *fanins: str, name: Optional[str] = None) -> str:
        return self.add(GateType.NAND, list(fanins), name)

    def nor(self, *fanins: str, name: Optional[str] = None) -> str:
        return self.add(GateType.NOR, list(fanins), name)

    def xor(self, *fanins: str, name: Optional[str] = None) -> str:
        return self.add(GateType.XOR, list(fanins), name)

    def xnor(self, *fanins: str, name: Optional[str] = None) -> str:
        return self.add(GateType.XNOR, list(fanins), name)

    def mux(self, sel: str, d0: str, d1: str,
            name: Optional[str] = None) -> str:
        return self.add(GateType.MUX, [sel, d0, d1], name)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def has_net(self, name: str) -> bool:
        return name in self._input_set or name in self.gates

    def is_input(self, name: str) -> bool:
        return name in self._input_set

    def nets(self) -> Iterator[str]:
        """All net names: inputs first, then gate outputs."""
        yield from self.inputs
        yield from self.gates

    @property
    def num_gates(self) -> int:
        return len(self.gates)

    @property
    def num_nets(self) -> int:
        return len(self.inputs) + len(self.gates)

    def sinks(self, net: str) -> List[Pin]:
        """All sink pins currently connected to ``net``."""
        out = []
        for g in self.gates.values():
            for i, f in enumerate(g.fanins):
                if f == net:
                    out.append(Pin.gate(g.name, i))
        for port, n in self.outputs.items():
            if n == net:
                out.append(Pin.output(port))
        return out

    def sink_map(self) -> Dict[str, List[Pin]]:
        """Mapping net -> sink pins, computed in one pass."""
        out: Dict[str, List[Pin]] = {n: [] for n in self.nets()}
        for g in self.gates.values():
            for i, f in enumerate(g.fanins):
                out[f].append(Pin.gate(g.name, i))
        for port, n in self.outputs.items():
            out[n].append(Pin.output(port))
        return out

    @property
    def num_sinks(self) -> int:
        """Total sink-pin count (the 'sinks' column of Table 1)."""
        return sum(len(g.fanins) for g in self.gates.values()) + len(self.outputs)

    def all_pins(self) -> Iterator[Pin]:
        """Every sink pin in the circuit."""
        for g in self.gates.values():
            for i in range(len(g.fanins)):
                yield Pin.gate(g.name, i)
        for port in self.outputs:
            yield Pin.output(port)

    def pin_driver(self, pin: Pin) -> str:
        """The net currently driving ``pin``."""
        if pin.is_output_port:
            try:
                return self.outputs[pin.owner]
            except KeyError:
                raise NetlistError(f"no output port {pin.owner!r}")
        try:
            gate = self.gates[pin.owner]
        except KeyError:
            raise NetlistError(f"no gate {pin.owner!r}")
        if pin.index >= len(gate.fanins):
            raise NetlistError(
                f"gate {pin.owner!r} has no input pin {pin.index}"
            )
        return gate.fanins[pin.index]

    # ------------------------------------------------------------------
    # edits
    # ------------------------------------------------------------------
    def rewire_pin(self, pin: Pin, net: str) -> str:
        """Disconnect ``pin`` from its driver and connect it to ``net``.

        This is the elementary rewire operation ``p/s`` of Section 3.3.
        Returns the previous driver.  The caller is responsible for
        keeping the circuit acyclic (the ECO engine checks the paper's
        topological constraint before committing a rewire); use
        :func:`repro.netlist.validate.validate` to verify afterwards.
        """
        if not self.has_net(net):
            raise NetlistError(f"rewire target net {net!r} does not exist")
        old = self.pin_driver(pin)
        if pin.is_output_port:
            self.outputs[pin.owner] = net
        else:
            self.gates[pin.owner].fanins[pin.index] = net
        self._invalidate_derived()
        return old

    def replace_net(self, old: str, new: str) -> int:
        """Redirect every sink of ``old`` to ``new``; returns sink count."""
        count = 0
        for pin in self.sinks(old):
            self.rewire_pin(pin, new)
            count += 1
        return count

    def remove_gate(self, name: str) -> None:
        """Remove a gate whose net has no sinks."""
        if name not in self.gates:
            raise NetlistError(f"no gate {name!r}")
        if self.sinks(name):
            raise NetlistError(f"gate {name!r} still has sinks")
        del self.gates[name]
        self._invalidate_derived()

    def copy(self, name: Optional[str] = None) -> "Circuit":
        """Deep copy of the circuit."""
        c = Circuit(name or self.name)
        c.inputs = list(self.inputs)
        c._input_set = set(self._input_set)
        c.outputs = dict(self.outputs)
        c.gates = {k: g.copy() for k, g in self.gates.items()}
        return c

    def __getstate__(self) -> dict:
        # the derived cache can be large (compiled plans) and is cheap
        # to recompute; don't ship it across process boundaries
        state = dict(self.__dict__)
        state["_derived"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # circuits pickled by older versions predate the cache
        if "_derived" not in self.__dict__:
            self._derived = {}

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"Circuit({self.name!r}: {len(self.inputs)} inputs, "
            f"{len(self.outputs)} outputs, {len(self.gates)} gates)"
        )

    def output_nets(self) -> List[str]:
        return [self.outputs[p] for p in self.outputs]

    def output_ports(self) -> List[str]:
        return list(self.outputs)
