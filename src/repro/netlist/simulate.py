"""Bit-parallel circuit simulation.

Simulation words pack 64 input patterns into a Python integer (bit ``k``
of every word belongs to pattern ``k``).  One topological pass evaluates
all 64 patterns at once, which is the workhorse behind the error-domain
sampling of Section 5.1, the rectification-utility heuristic of Section
4.3 and simulation-guided equivalence sweeping.

Hot callers go through a :class:`CompiledPlan`: the per-gate dictionary
walk is compiled once per circuit into flat integer-indexed opcode and
fanin arrays, and evaluation packs ``W`` 64-bit words into one big
integer per net (Python's bignum bitwise ops run in C regardless of
width), so a whole multi-word batch costs a single topological pass.
Plans are cached on the circuit's derived-data cache and recompiled
transparently after any mutation.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import NetlistError
from repro.netlist import simd
from repro.netlist.circuit import Circuit
from repro.netlist.gate import WORD_BITS, WORD_MASK, GateType, eval_gate
from repro.netlist.traverse import topological_order

# CompiledPlan opcodes: small ints dispatchable without enum hashing.
OP_CONST0 = 0
OP_CONST1 = 1
OP_BUF = 2
OP_NOT = 3
OP_AND = 4
OP_NAND = 5
OP_OR = 6
OP_NOR = 7
OP_XOR = 8
OP_XNOR = 9
OP_MUX = 10

_OPCODE = {
    GateType.CONST0: OP_CONST0,
    GateType.CONST1: OP_CONST1,
    GateType.BUF: OP_BUF,
    GateType.NOT: OP_NOT,
    GateType.AND: OP_AND,
    GateType.NAND: OP_NAND,
    GateType.OR: OP_OR,
    GateType.NOR: OP_NOR,
    GateType.XOR: OP_XOR,
    GateType.XNOR: OP_XNOR,
    GateType.MUX: OP_MUX,
}


def batch_mask(width_words: int) -> int:
    """All-ones mask of a ``width_words`` x 64-pattern batch."""
    return (1 << (WORD_BITS * width_words)) - 1


def eval_opcode(opcode: int, operands: Sequence[int], mask: int) -> int:
    """Evaluate one plan opcode on batch integers under ``mask``.

    Bit-identical to :func:`repro.netlist.gate.eval_gate` on each
    64-bit lane of the batch (lanes are independent under bitwise ops).
    """
    if opcode == OP_AND or opcode == OP_NAND:
        acc = operands[0]
        for w in operands[1:]:
            acc &= w
        return acc if opcode == OP_AND else ~acc & mask
    if opcode == OP_OR or opcode == OP_NOR:
        acc = operands[0]
        for w in operands[1:]:
            acc |= w
        return acc if opcode == OP_OR else ~acc & mask
    if opcode == OP_XOR or opcode == OP_XNOR:
        acc = operands[0]
        for w in operands[1:]:
            acc ^= w
        return acc if opcode == OP_XOR else ~acc & mask
    if opcode == OP_NOT:
        return ~operands[0] & mask
    if opcode == OP_BUF:
        return operands[0]
    if opcode == OP_MUX:
        s, d0, d1 = operands
        return ((~s & d0) | (s & d1)) & mask
    if opcode == OP_CONST1:
        return mask
    if opcode == OP_CONST0:
        return 0
    raise NetlistError(f"unknown plan opcode {opcode}")


class CompiledPlan:
    """Flat evaluation plan of a circuit (or of an output cone).

    ``names`` lists the plan's nets — inputs first, then gates in
    topological order — and ``steps`` holds one
    ``(out_index, opcode, fanin_indices)`` tuple per gate.  Evaluation
    walks the steps over a plain list of batch integers: no dictionary
    lookups, no enum dispatch, no per-call topological sort.

    A plan is immutable and pure data (tuples of ints and strings), so
    it pickles cleanly and can be shared across process-pool workers.
    When the numpy backend is active (:mod:`repro.netlist.simd`),
    whole-word batches are dispatched to a lazily compiled
    :class:`~repro.netlist.simd.VectorPlan` twin; the ``_vec`` cache is
    dropped on pickling so plans still cross process boundaries into
    numpy-free interpreters.
    """

    __slots__ = ("names", "index", "num_inputs", "steps", "evals",
                 "_vec")

    def __init__(self, circuit: Circuit,
                 roots: Optional[Sequence[str]] = None):
        if roots is None:
            order = topological_order(circuit)
            inputs: List[str] = list(circuit.inputs)
        else:
            order = topological_order(circuit, roots=roots)
            from repro.netlist.traverse import transitive_fanin
            cone = transitive_fanin(circuit, roots)
            inputs = [n for n in circuit.inputs if n in cone]
        self.names: Tuple[str, ...] = tuple(inputs) + tuple(order)
        self.index: Dict[str, int] = {
            n: i for i, n in enumerate(self.names)
        }
        self.num_inputs = len(inputs)
        index = self.index
        gates = circuit.gates
        steps = []
        for name in order:
            gate = gates[name]
            steps.append((
                index[name],
                _OPCODE[gate.gtype],
                tuple(index[f] for f in gate.fanins),
            ))
        self.steps: Tuple[tuple, ...] = tuple(steps)
        #: batch evaluations performed through this plan (telemetry;
        #: the engine folds it into ``RunCounters.plan_evals``)
        self.evals = 0
        self._vec = None

    # ------------------------------------------------------------------
    # the vector twin must not pickle: plans ship to process-pool
    # workers that may run in numpy-free interpreters
    def __getstate__(self):
        return (self.names, self.index, self.num_inputs, self.steps,
                self.evals)

    def __setstate__(self, state):
        (self.names, self.index, self.num_inputs, self.steps,
         self.evals) = state
        self._vec = None

    # ------------------------------------------------------------------
    def vector_plan(self):
        """The lazily compiled :class:`~repro.netlist.simd.VectorPlan`
        twin (numpy backend only)."""
        if self._vec is None:
            self._vec = simd.compile_vector(self)
        return self._vec

    @staticmethod
    def _mask_words(mask: int) -> int:
        """Word count of a whole-word batch mask, else 0."""
        bits = mask.bit_length()
        if bits % WORD_BITS == 0 and mask == (1 << bits) - 1:
            return bits // WORD_BITS
        return 0

    # ------------------------------------------------------------------
    def run(self, input_words: Mapping[str, int],
            mask: int = WORD_MASK) -> List[int]:
        """Evaluate one batch; returns values indexed like ``names``.

        ``mask`` widens the batch: pass :func:`batch_mask` of the word
        count to evaluate ``W`` x 64 patterns in one pass.  Whole-word
        batches ride the numpy level-batched kernel when the vector
        backend is active (bit-identical; see
        :mod:`repro.netlist.simd`).
        """
        width = self._mask_words(mask)
        if width and simd.use_vector_run(width, len(self.steps)):
            self.evals += 1
            return self.vector_plan().run_ints(self.names, input_words,
                                               width)
        values = [0] * len(self.names)
        names = self.names
        for i in range(self.num_inputs):
            name = names[i]
            try:
                values[i] = input_words[name] & mask
            except KeyError:
                raise NetlistError(f"missing value for input {name!r}")
        self.evals += 1
        for out, opcode, fanins in self.steps:
            if opcode == OP_AND or opcode == OP_NAND:
                acc = values[fanins[0]]
                for j in fanins[1:]:
                    acc &= values[j]
                values[out] = acc if opcode == OP_AND else ~acc & mask
            elif opcode == OP_OR or opcode == OP_NOR:
                acc = values[fanins[0]]
                for j in fanins[1:]:
                    acc |= values[j]
                values[out] = acc if opcode == OP_OR else ~acc & mask
            elif opcode == OP_XOR or opcode == OP_XNOR:
                acc = values[fanins[0]]
                for j in fanins[1:]:
                    acc ^= values[j]
                values[out] = acc if opcode == OP_XOR else ~acc & mask
            elif opcode == OP_NOT:
                values[out] = ~values[fanins[0]] & mask
            elif opcode == OP_BUF:
                values[out] = values[fanins[0]]
            elif opcode == OP_MUX:
                s = values[fanins[0]]
                values[out] = ((~s & values[fanins[1]])
                               | (s & values[fanins[2]])) & mask
            elif opcode == OP_CONST1:
                values[out] = mask
            else:  # OP_CONST0
                values[out] = 0
        return values

    def run_dict(self, input_words: Mapping[str, int],
                 mask: int = WORD_MASK) -> Dict[str, int]:
        """Like :meth:`run`, as a name -> value mapping."""
        values = self.run(input_words, mask)
        return dict(zip(self.names, values))

    def run_lanes(self, input_words: Mapping[str, int], width: int):
        """Array-native evaluation: a ``(num_nets, width)`` uint64
        ndarray indexed like ``names`` (lane ``w`` = patterns
        ``64*w..64*w+63``).  Requires the numpy backend; array
        consumers (benchmarks, the batched candidate screen) use this
        to skip the ndarray -> bignum conversion that :meth:`run`
        pays on the vector path.
        """
        if not simd.HAVE_NUMPY:
            raise NetlistError(
                "CompiledPlan.run_lanes requires numpy "
                "(pip install repro[perf])")
        self.evals += 1
        return self.vector_plan().run_lanes(self.names, input_words,
                                            width)


_PLAN_KEY = "sim_plan"


def compiled_plan(circuit: Circuit,
                  roots: Optional[Sequence[str]] = None) -> CompiledPlan:
    """The circuit's cached :class:`CompiledPlan`.

    Whole-circuit plans and cone plans (``roots``) are cached separately
    in the circuit's derived-data cache; any mutating edit drops them.
    """
    cache = circuit.derived_cache()
    key = _PLAN_KEY if roots is None else (_PLAN_KEY, tuple(roots))
    plan = cache.get(key)
    if plan is None:
        plan = CompiledPlan(circuit, roots=roots)
        cache[key] = plan
    return plan


def simulate_words(circuit: Circuit,
                   input_words: Mapping[str, int],
                   order: Optional[Sequence[str]] = None) -> Dict[str, int]:
    """Evaluate every net on 64 packed input patterns.

    Args:
        circuit: the netlist to simulate.
        input_words: 64-bit word per primary input.
        order: optional explicit topological order.  Without one the
            circuit's cached :class:`CompiledPlan` evaluates the batch;
            passing an order (e.g. a cone's) forces the reference
            per-gate dictionary walk over exactly those gates.

    Returns:
        Mapping from every net name to its 64-bit output word.
    """
    if order is None:
        return compiled_plan(circuit).run_dict(input_words)
    values: Dict[str, int] = {}
    for name in circuit.inputs:
        try:
            values[name] = input_words[name] & WORD_MASK
        except KeyError:
            raise NetlistError(f"missing value for input {name!r}")
    gates = circuit.gates
    for name in order:
        gate = gates[name]
        values[name] = eval_gate(gate.gtype, [values[f] for f in gate.fanins])
    return values


def simulate(circuit: Circuit,
             assignment: Mapping[str, bool]) -> Dict[str, bool]:
    """Evaluate every net on a single input assignment."""
    words = {
        n: WORD_MASK if assignment[n] else 0
        for n in circuit.inputs if n in assignment
    }
    # missing inputs surface as NetlistError inside simulate_words
    values = simulate_words(circuit, words)
    return {n: bool(v & 1) for n, v in values.items()}


def evaluate_outputs(circuit: Circuit,
                     assignment: Mapping[str, bool]) -> Dict[str, bool]:
    """Output-port values for a single input assignment."""
    values = simulate(circuit, assignment)
    return {p: values[n] for p, n in circuit.outputs.items()}


def random_patterns(inputs: Sequence[str],
                    rng: random.Random) -> Dict[str, int]:
    """One 64-pattern random word per input."""
    return {name: rng.getrandbits(WORD_BITS) for name in inputs}


def patterns_to_words(inputs: Sequence[str],
                      patterns: Sequence[Mapping[str, bool]]) -> Dict[str, int]:
    """Pack up to 64 explicit assignments into simulation words.

    Pattern ``k`` occupies bit ``k``.  Fewer than 64 patterns leave the
    upper bits zero; callers must mask results accordingly.
    """
    if len(patterns) > WORD_BITS:
        raise NetlistError(f"at most {WORD_BITS} patterns per word")
    words: Dict[str, int] = {}
    for name in inputs:
        word = 0
        bit = 1
        for pat in patterns:
            if pat[name]:
                word |= bit
            bit <<= 1
        words[name] = word
    return words


def words_to_patterns(inputs: Sequence[str], words: Mapping[str, int],
                      count: int) -> List[Dict[str, bool]]:
    """Unpack the first ``count`` patterns of simulation words."""
    out = []
    for k in range(count):
        out.append({n: bool((words[n] >> k) & 1) for n in inputs})
    return out


def signature(circuit: Circuit, rounds: int, seed: int = 2019,
              order: Optional[Sequence[str]] = None) -> Dict[str, int]:
    """Multi-round random simulation signature of every net.

    Concatenates ``rounds`` 64-bit words into one integer per net; equal
    signatures are candidates for functional equivalence (confirmed by
    SAT in :mod:`repro.cec.sweep`).

    All rounds are evaluated as one multi-word batch through the
    circuit's compiled plan (round ``r`` occupies the batch's lane
    ``rounds - 1 - r``, reproducing the shift-and-or concatenation of
    the per-round reference loop bit for bit).
    """
    rng = random.Random(seed)
    if order is not None:
        # reference path: per-round dictionary walk over a given order
        sigs: Dict[str, int] = {n: 0 for n in circuit.nets()}
        for _ in range(rounds):
            words = random_patterns(circuit.inputs, rng)
            values = simulate_words(circuit, words, order)
            for net in sigs:
                sigs[net] = (sigs[net] << WORD_BITS) | values[net]
        return sigs
    batched: Dict[str, int] = {n: 0 for n in circuit.inputs}
    for r in range(rounds):
        shift = WORD_BITS * (rounds - 1 - r)
        for name, word in random_patterns(circuit.inputs, rng).items():
            batched[name] |= word << shift
    plan = compiled_plan(circuit)
    values = plan.run(batched, mask=batch_mask(rounds))
    return dict(zip(plan.names, values))
