"""Bit-parallel circuit simulation.

Simulation words pack 64 input patterns into a Python integer (bit ``k``
of every word belongs to pattern ``k``).  One topological pass evaluates
all 64 patterns at once, which is the workhorse behind the error-domain
sampling of Section 5.1, the rectification-utility heuristic of Section
4.3 and simulation-guided equivalence sweeping.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional, Sequence

from repro.errors import NetlistError
from repro.netlist.circuit import Circuit
from repro.netlist.gate import WORD_BITS, WORD_MASK, eval_gate
from repro.netlist.traverse import topological_order


def simulate_words(circuit: Circuit,
                   input_words: Mapping[str, int],
                   order: Optional[Sequence[str]] = None) -> Dict[str, int]:
    """Evaluate every net on 64 packed input patterns.

    Args:
        circuit: the netlist to simulate.
        input_words: 64-bit word per primary input.
        order: optional precomputed topological order (reused across
            many simulation rounds for speed).

    Returns:
        Mapping from every net name to its 64-bit output word.
    """
    values: Dict[str, int] = {}
    for name in circuit.inputs:
        try:
            values[name] = input_words[name] & WORD_MASK
        except KeyError:
            raise NetlistError(f"missing value for input {name!r}")
    if order is None:
        order = topological_order(circuit)
    gates = circuit.gates
    for name in order:
        gate = gates[name]
        values[name] = eval_gate(gate.gtype, [values[f] for f in gate.fanins])
    return values


def simulate(circuit: Circuit,
             assignment: Mapping[str, bool]) -> Dict[str, bool]:
    """Evaluate every net on a single input assignment."""
    missing = [n for n in circuit.inputs if n not in assignment]
    if missing:
        raise NetlistError(f"missing value for inputs {missing}")
    words = {n: WORD_MASK if assignment[n] else 0 for n in circuit.inputs}
    values = simulate_words(circuit, words)
    return {n: bool(v & 1) for n, v in values.items()}


def evaluate_outputs(circuit: Circuit,
                     assignment: Mapping[str, bool]) -> Dict[str, bool]:
    """Output-port values for a single input assignment."""
    values = simulate(circuit, assignment)
    return {p: values[n] for p, n in circuit.outputs.items()}


def random_patterns(inputs: Sequence[str],
                    rng: random.Random) -> Dict[str, int]:
    """One 64-pattern random word per input."""
    return {name: rng.getrandbits(WORD_BITS) for name in inputs}


def patterns_to_words(inputs: Sequence[str],
                      patterns: Sequence[Mapping[str, bool]]) -> Dict[str, int]:
    """Pack up to 64 explicit assignments into simulation words.

    Pattern ``k`` occupies bit ``k``.  Fewer than 64 patterns leave the
    upper bits zero; callers must mask results accordingly.
    """
    if len(patterns) > WORD_BITS:
        raise NetlistError(f"at most {WORD_BITS} patterns per word")
    words = {name: 0 for name in inputs}
    for k, pat in enumerate(patterns):
        for name in inputs:
            if pat[name]:
                words[name] |= 1 << k
    return words


def words_to_patterns(inputs: Sequence[str], words: Mapping[str, int],
                      count: int) -> List[Dict[str, bool]]:
    """Unpack the first ``count`` patterns of simulation words."""
    out = []
    for k in range(count):
        out.append({n: bool((words[n] >> k) & 1) for n in inputs})
    return out


def signature(circuit: Circuit, rounds: int, seed: int = 2019,
              order: Optional[Sequence[str]] = None) -> Dict[str, int]:
    """Multi-round random simulation signature of every net.

    Concatenates ``rounds`` 64-bit words into one integer per net; equal
    signatures are candidates for functional equivalence (confirmed by
    SAT in :mod:`repro.cec.sweep`).
    """
    rng = random.Random(seed)
    if order is None:
        order = topological_order(circuit)
    sigs: Dict[str, int] = {n: 0 for n in circuit.nets()}
    for _ in range(rounds):
        words = random_patterns(circuit.inputs, rng)
        values = simulate_words(circuit, words, order)
        for net in sigs:
            sigs[net] = (sigs[net] << WORD_BITS) | values[net]
    return sigs
