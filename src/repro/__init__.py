"""Reproduction of "Comprehensive Search for ECO Rectification Using
Symbolic Sampling" (Kravets, Lee, Jiang — DAC 2019).

The package implements the paper's syseco engine — rewire-based ECO
rectification searched in a symbolic sampling domain — together with
every substrate it relies on: a netlist data model, an ROBDD package, a
CDCL SAT solver, combinational equivalence checking, synthesis scripts,
static timing analysis, the DeltaSyn and cone-replacement baselines,
and the synthetic workload suite used to regenerate the paper's tables.

Quickstart::

    from repro import Circuit, SysEco, EcoConfig

    impl, spec = ...            # same input/output port names
    result = SysEco(EcoConfig()).rectify(impl, spec)
    print(result.stats())       # patch inputs/outputs/gates/nets
"""

from repro.netlist import Circuit, Pin, GateType
from repro.eco import SysEco, EcoConfig, rectify, RectificationResult
from repro.cec import check_equivalence
from repro.runtime import FaultInjector, RunCounters

__version__ = "0.1.0"

__all__ = [
    "Circuit",
    "Pin",
    "GateType",
    "SysEco",
    "EcoConfig",
    "rectify",
    "RectificationResult",
    "check_equivalence",
    "FaultInjector",
    "RunCounters",
    "__version__",
]
