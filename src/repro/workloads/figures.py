"""The worked circuits of Figures 1-3 / Examples 1-2 of the paper.

These are the exact shapes the paper reasons about: the motivating
sink-rewiring scenario of Figure 1 and the ``GATE``-style word circuit
of Examples 1 and 2 (whose closed forms for ``H_k`` and ``Xi_k`` the
figure benchmarks verify symbolically).
"""

from __future__ import annotations

from typing import Tuple

from repro.netlist.circuit import Circuit


def figure1_circuits(width: int = 4) -> Tuple[Circuit, Circuit]:
    """The Figure 1 scenario as (implementation, revised spec).

    Implementation: ``v(0) = b`` drives sinks ``q_0..``, ``v(1) = ~b``
    drives sinks ``q_n..``; a bystander signal ``d`` also depends on
    ``b`` and is *not* revised.  Revised spec: a new signal
    ``c = a & b`` redefines ``v(0) = c`` and ``v(1) = ~c`` while ``d``
    keeps reading ``b``.  The documented solution reconnects all-but-one
    sink of nets ``b`` and ``~b`` to ``c`` and ``~c``.
    """

    def build(v0_of, v1_of) -> Circuit:
        c = Circuit("figure1")
        c.add_inputs(["a", "b", "u"])
        c.add_inputs([f"win1_{k}" for k in range(width)])
        c.add_inputs([f"win2_{k}" for k in range(width)])
        v0 = v0_of(c)
        v1 = v1_of(c)
        for k in range(width):
            t1 = c.and_(f"win1_{k}", v0, name=f"q{k}")
            t2 = c.and_(f"win2_{k}", v1, name=f"q{width + k}")
            c.set_output(f"w_{k}", c.or_(t1, t2, name=f"wout{k}"))
        # the protected bystander: d depends on b in both versions
        c.set_output("d", c.and_("b", "u", name="dnet"))
        return c

    impl = build(lambda c: "b",
                 lambda c: c.not_("b", name="v1"))
    spec = build(lambda c: c.and_("a", "b", name="c_new"),
                 lambda c: c.not_(c.and_("a", "b", name="c_new2"),
                                  name="v1"))
    spec.name = "figure1_revised"
    return impl, spec


def example1_circuits(width: int = 2) -> Tuple[Circuit, Circuit]:
    """Examples 1-2: ``V_out = GATE(win1, v(0)) | GATE(win2, v(1))``.

    Implementation selects with ``v(0) = s`` / ``v(1) = ~s``; the
    revision replaces the select with ``c = a & b``.  For output
    ``w_k`` the paper derives ``H_k(t1, t2) = t1^k t2^{n+k} | t1^{n+k}
    t2^k`` over pins ``q_0..q_{2n-1}`` and ``Xi_k(c1, c2) = c1^1 |
    c2^2`` for candidate lists ``S_1 = (v(0), c, ~c)``, ``S_2 = (v(1),
    c, ~c)`` — both verified by ``benchmarks/bench_figure3.py``.
    """

    def build(select_of) -> Circuit:
        c = Circuit("example1")
        c.add_inputs(["a", "b"])
        c.add_inputs([f"win1_{k}" for k in range(width)])
        c.add_inputs([f"win2_{k}" for k in range(width)])
        v0, v1 = select_of(c)
        for k in range(width):
            g1 = c.and_(f"win1_{k}", v0, name=f"q{k}")
            g2 = c.and_(f"win2_{k}", v1, name=f"q{width + k}")
            c.set_output(f"w_{k}", c.or_(g1, g2, name=f"vout{k}"))
        return c

    def impl_select(c: Circuit):
        s = c.add_input("s")
        return s, c.not_(s, name="v1")

    def spec_select(c: Circuit):
        c.add_input("s")  # kept so the interfaces match
        cn = c.and_("a", "b", name="c_new")
        return cn, c.not_(cn, name="v1")

    impl = build(impl_select)
    spec = build(spec_select)
    spec.name = "example1_revised"
    return impl, spec
