"""Deterministic specification-netlist generators.

Each generator returns a well-formed :class:`Circuit` representing a
*specification* — the lightly structured netlist an RTL elaboration
would produce.  The suite derives the implementation side by running
:func:`repro.synth.optimize_heavy` on these.  Families cover the logic
styles of microprocessor control and datapath blocks: word gating and
multiplexing, small ALUs, two-level control, priority logic,
comparators and parity trees.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.netlist.circuit import Circuit
from repro.netlist.gate import GateType


def word_mux_design(n_words: int = 2, width: int = 8,
                    name: str = "wordmux") -> Circuit:
    """Word gating in the style of Figure 1 / Example 1.

    ``out_k = OR_i (w{i}_{k} & sel_i)`` with one select per word; the
    selects are single-bit multi-sink signals — exactly the net shape
    whose sinks become rectification points in the paper's motivating
    example.
    """
    c = Circuit(name)
    sels = c.add_inputs([f"sel{i}" for i in range(n_words)])
    for i in range(n_words):
        c.add_inputs([f"w{i}_{k}" for k in range(width)])
    for k in range(width):
        terms = [c.and_(f"w{i}_{k}", f"sel{i}") for i in range(n_words)]
        c.set_output(f"out_{k}", c.or_(*terms) if len(terms) > 1 else terms[0])
    return c


def alu_design(width: int = 4, name: str = "alu") -> Circuit:
    """A small ALU: op selects among add, and, or, xor.

    Two ``op`` bits select the function; addition is a ripple-carry
    chain, making the high result bits deep — the timing-critical shape
    used by the Table 3 designs.
    """
    c = Circuit(name)
    c.add_inputs([f"a{k}" for k in range(width)])
    c.add_inputs([f"b{k}" for k in range(width)])
    op0, op1 = c.add_inputs(["op0", "op1"])

    carry = c.const0("c_in")
    sums: List[str] = []
    for k in range(width):
        axb = c.xor(f"a{k}", f"b{k}", name=f"axb{k}")
        sums.append(c.xor(axb, carry, name=f"sum{k}"))
        gen = c.and_(f"a{k}", f"b{k}", name=f"gen{k}")
        prop = c.and_(axb, carry, name=f"prp{k}")
        carry = c.or_(gen, prop, name=f"cry{k}")

    for k in range(width):
        f_and = c.and_(f"a{k}", f"b{k}")
        f_or = c.or_(f"a{k}", f"b{k}")
        f_xor = c.xor(f"a{k}", f"b{k}")
        lo = c.mux(op0, sums[k], f_and)     # op1=0: add / and
        hi = c.mux(op0, f_or, f_xor)        # op1=1: or / xor
        c.set_output(f"r{k}", c.mux(op1, lo, hi))
    c.set_output("cout", carry)
    return c


def control_design(n_inputs: int = 10, n_outputs: int = 6,
                   n_terms: int = 12, seed: int = 0,
                   name: str = "control") -> Circuit:
    """Random two-level control logic: shared product terms, OR planes.

    Product terms are shared among outputs, creating the multi-sink
    nets and path entanglement that make rectification-point selection
    matter.
    """
    rng = random.Random(seed)
    c = Circuit(name)
    ins = c.add_inputs([f"x{i}" for i in range(n_inputs)])
    literals: List[str] = list(ins)
    for i in ins:
        literals.append(c.not_(i, name=f"n_{i}"))
    terms: List[str] = []
    for t in range(n_terms):
        k = rng.randint(2, min(4, n_inputs))
        lits = rng.sample(literals, k)
        terms.append(c.and_(*lits, name=f"term{t}"))
    for o in range(n_outputs):
        k = rng.randint(2, min(5, n_terms))
        chosen = rng.sample(terms, k)
        c.set_output(f"y{o}", c.or_(*chosen, name=f"plane{o}"))
    return c


def priority_encoder(width: int = 6, name: str = "prio") -> Circuit:
    """Priority grant logic: ``grant_k = req_k & ~req_{k-1} & ...``."""
    c = Circuit(name)
    reqs = c.add_inputs([f"req{k}" for k in range(width)])
    blocked: Optional[str] = None
    for k, req in enumerate(reqs):
        if blocked is None:
            c.set_output(f"gnt{k}", c.buf(req, name=f"g{k}"))
            blocked = req
        else:
            nb = c.not_(blocked, name=f"nb{k}")
            c.set_output(f"gnt{k}", c.and_(req, nb, name=f"g{k}"))
            blocked = c.or_(blocked, req, name=f"blk{k}")
    c.set_output("any", blocked)
    return c


def comparator_design(width: int = 5, name: str = "cmp") -> Circuit:
    """Equality and magnitude comparison of two words."""
    c = Circuit(name)
    c.add_inputs([f"a{k}" for k in range(width)])
    c.add_inputs([f"b{k}" for k in range(width)])
    eq_bits = [c.xnor(f"a{k}", f"b{k}", name=f"eq{k}") for k in range(width)]
    c.set_output("eq", c.and_(*eq_bits, name="all_eq"))
    # a > b: scan from MSB
    gt: Optional[str] = None
    prefix_eq: Optional[str] = None
    for k in reversed(range(width)):
        nb = c.not_(f"b{k}", name=f"nb{k}")
        here = c.and_(f"a{k}", nb, name=f"gtb{k}")
        if gt is None:
            gt = here
            prefix_eq = eq_bits[k]
        else:
            qualified = c.and_(prefix_eq, here, name=f"q{k}")
            gt = c.or_(gt, qualified, name=f"gtacc{k}")
            prefix_eq = c.and_(prefix_eq, eq_bits[k], name=f"pe{k}")
    c.set_output("gt", gt)
    return c


def parity_design(width: int = 8, groups: int = 2,
                  name: str = "parity") -> Circuit:
    """Per-group and overall parity trees."""
    c = Circuit(name)
    ins = c.add_inputs([f"d{k}" for k in range(width)])
    per_group = max(1, width // groups)
    group_nets = []
    for g in range(groups):
        chunk = ins[g * per_group:(g + 1) * per_group] or ins[-1:]
        net = c.xor(*chunk, name=f"par{g}") if len(chunk) > 1 \
            else c.buf(chunk[0], name=f"par{g}")
        group_nets.append(net)
        c.set_output(f"p{g}", net)
    total = c.xor(*group_nets, name="par_all") if len(group_nets) > 1 \
        else group_nets[0]
    c.set_output("p_all", total)
    return c


def random_dag(n_inputs: int = 8, n_gates: int = 60, n_outputs: int = 5,
               seed: int = 0, name: str = "dag") -> Circuit:
    """Unstructured random logic DAG (stress / property tests)."""
    rng = random.Random(seed)
    c = Circuit(name)
    nets = list(c.add_inputs([f"x{i}" for i in range(n_inputs)]))
    choices = [GateType.AND, GateType.OR, GateType.XOR, GateType.NAND,
               GateType.NOR, GateType.NOT, GateType.MUX, GateType.XNOR]
    for _ in range(n_gates):
        gtype = rng.choice(choices)
        if gtype is GateType.NOT:
            fanins = [rng.choice(nets)]
        elif gtype is GateType.MUX:
            fanins = [rng.choice(nets) for _ in range(3)]
        else:
            fanins = [rng.choice(nets)
                      for _ in range(rng.randint(2, 3))]
        nets.append(c.add(gtype, fanins))
    pool = nets[n_inputs:] or nets
    for o in range(n_outputs):
        c.set_output(f"y{o}", rng.choice(pool))
    return c


def decoder_design(select_bits: int = 3, enable: bool = True,
                   name: str = "decoder") -> Circuit:
    """A one-hot decoder: ``d_k`` high when the select equals ``k``.

    Every output AND shares the select literals — maximal literal
    sharing, the classic shape where one wrong literal polarity (a
    ``polarity`` revision) ripples across many outputs.
    """
    c = Circuit(name)
    sels = c.add_inputs([f"s{i}" for i in range(select_bits)])
    en = c.add_input("en") if enable else None
    inv = {s: c.not_(s, name=f"ns{i}") for i, s in enumerate(sels)}
    for k in range(1 << select_bits):
        lits = [sels[i] if (k >> i) & 1 else inv[sels[i]]
                for i in range(select_bits)]
        if en is not None:
            lits.append(en)
        c.set_output(f"d{k}", c.and_(*lits, name=f"dec{k}"))
    return c


def multiplier_design(width: int = 3, name: str = "mult") -> Circuit:
    """An array multiplier: partial products + ripple adder rows.

    The deepest generator in the suite; its high result bits have long
    reconvergent carry chains — the structure where rectification-point
    selection matters most and structural matching decays fastest.
    """
    c = Circuit(name)
    c.add_inputs([f"a{k}" for k in range(width)])
    c.add_inputs([f"b{k}" for k in range(width)])

    # partial products pp[i][j] = a_j & b_i
    pp = [[c.and_(f"a{j}", f"b{i}", name=f"pp{i}_{j}")
           for j in range(width)] for i in range(width)]

    def full_add(x: str, y: str, z: str, tag: str):
        s1 = c.xor(x, y, name=f"{tag}_x")
        total = c.xor(s1, z, name=f"{tag}_s")
        c1 = c.and_(x, y, name=f"{tag}_c1")
        c2 = c.and_(s1, z, name=f"{tag}_c2")
        carry = c.or_(c1, c2, name=f"{tag}_c")
        return total, carry

    # row-by-row accumulation: after row i, acc holds bits i.. of the
    # running product and bit i is final
    acc = list(pp[0])
    c.set_output("p0", acc[0])
    for i in range(1, width):
        new_acc = []
        carry = c.const0(f"c0_{i}")
        for j in range(width):
            upper = acc[j + 1] if j + 1 < len(acc) else \
                c.const0(f"pad{i}_{j}")
            total, carry = full_add(pp[i][j], upper, carry,
                                    f"fa{i}_{j}")
            new_acc.append(total)
        new_acc.append(carry)
        c.set_output(f"p{i}", new_acc[0])
        acc = new_acc
    for j, bit in enumerate(acc[1:], start=width):
        c.set_output(f"p{j}", bit)
    return c


def _merge_into(dst: Circuit, src: Circuit, tag: str) -> None:
    """Instantiate ``src`` inside ``dst`` with prefixed internal names.

    Inputs and outputs keep their own names prefixed with the tag so
    merged blocks stay independent.
    """
    mapping = {}
    for i in src.inputs:
        name = f"{tag}_{i}"
        dst.add_input(name)
        mapping[i] = name
    from repro.netlist.traverse import topological_order
    for g in topological_order(src):
        gate = src.gates[g]
        new = f"{tag}_{g}"
        dst.add_gate(new, gate.gtype, [mapping[f] for f in gate.fanins])
        mapping[g] = new
    for port, net in src.outputs.items():
        dst.set_output(f"{tag}_{port}", mapping[net])


def mixed_design(blocks: Sequence[Tuple[str, Circuit]],
                 glue_seed: Optional[int] = None,
                 name: str = "mixed") -> Circuit:
    """Compose independent blocks, optionally adding shared glue logic.

    With ``glue_seed`` set, extra outputs combining nets across blocks
    are added, entangling their cones the way flattened units entangle
    in a real hierarchy.
    """
    c = Circuit(name)
    for tag, block in blocks:
        _merge_into(c, block, tag)
    if glue_seed is not None:
        rng = random.Random(glue_seed)
        gate_nets = list(c.gates)
        if len(gate_nets) >= 4:
            for j in range(max(1, len(c.outputs) // 6)):
                picks = rng.sample(gate_nets, min(3, len(gate_nets)))
                net = c.and_(*picks, name=f"glue{j}")
                c.set_output(f"glue_out{j}", net)
    return c
