"""Ground-truth specification revisions.

A :class:`Revision` edits a specification circuit and records exactly
what changed — the number of added/modified gates is the paper's
"designer's estimate" column: the size an ideal patch would have,
known here by construction.  Revisions never touch the implementation;
the ECO engines must discover the change functionally.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.netlist.circuit import Circuit
from repro.netlist.gate import GateType
from repro.netlist.traverse import dependent_outputs, transitive_fanout


@dataclass
class Revision:
    """Record of one applied specification edit."""

    kind: str
    description: str
    #: ideal patch size in gates (the designer's-estimate column)
    estimate_gates: int
    #: output ports whose function the edit changes (superset: ports
    #: structurally downstream of the edit)
    affected_outputs: Tuple[str, ...] = ()


def _pick_gate(circuit: Circuit, rng: random.Random,
               want: Optional[Callable[[str], bool]] = None,
               bias: str = "any") -> str:
    """Choose an edit site.

    ``bias='deep'`` prefers gates with the most downstream logic (the
    regime where structural ECO approaches must clone large regions);
    ``'shallow'`` prefers gates close to the outputs; ``'any'`` is
    uniform.
    """
    names = [g for g in circuit.gates
             if not circuit.gates[g].gtype.is_constant]
    if want is not None:
        filtered = [g for g in names if want(g)]
        if filtered:
            names = filtered
    if not names:
        raise ReproError("no editable gate in circuit")
    names.sort()
    if bias == "any" or len(names) == 1:
        return rng.choice(names)
    sample = rng.sample(names, min(12, len(names)))
    sizes = {g: len(transitive_fanout(circuit, [g])) for g in sample}
    if bias == "deep":
        return max(sample, key=lambda g: (sizes[g], g))
    if bias == "shallow":
        return min(sample, key=lambda g: (sizes[g], g))
    raise ReproError(f"unknown bias {bias!r}")


def _affected(circuit: Circuit, nets: Sequence[str]) -> Tuple[str, ...]:
    return tuple(sorted(dependent_outputs(circuit, nets)))


def gate_type_change(spec: Circuit, rng: random.Random,
                     bias: str = "any") -> Revision:
    """Swap a gate's operation (the classic single-gate bug fix)."""
    swaps = {
        GateType.AND: GateType.OR, GateType.OR: GateType.AND,
        GateType.NAND: GateType.NOR, GateType.NOR: GateType.NAND,
        GateType.XOR: GateType.XNOR, GateType.XNOR: GateType.XOR,
    }
    name = _pick_gate(spec, rng, bias=bias,
                      want=lambda g: spec.gates[g].gtype in swaps)
    gate = spec.gates[name]
    if gate.gtype not in swaps:
        raise ReproError("no swappable gate found")
    new_type = swaps[gate.gtype]
    spec.gates[name] = type(gate)(name, new_type, gate.fanins)
    return Revision(
        kind="gate-type",
        description=f"{name}: {gate.gtype.value} -> {new_type.value}",
        estimate_gates=1,
        affected_outputs=_affected(spec, [name]),
    )


def wrong_input(spec: Circuit, rng: random.Random,
                bias: str = "any") -> Revision:
    """Reconnect one gate input pin to a different (acyclic) net."""
    for _ in range(16):
        name = _pick_gate(spec, rng, bias=bias,
                          want=lambda g: bool(spec.gates[g].fanins))
        gate = spec.gates[name]
        if not gate.fanins:
            continue
        downstream = transitive_fanout(spec, [name])
        options = [n for n in spec.nets()
                   if n not in downstream and n not in gate.fanins]
        if not options:
            continue
        idx = rng.randrange(len(gate.fanins))
        new_net = rng.choice(sorted(options))
        old = gate.fanins[idx]
        gate.fanins[idx] = new_net
        return Revision(
            kind="wrong-input",
            description=f"{name}[{idx}]: {old} -> {new_net}",
            estimate_gates=1,
            affected_outputs=_affected(spec, [name]),
        )
    raise ReproError("no rewirable pin found")


def add_condition(spec: Circuit, rng: random.Random,
                  condition_inputs: int = 2,
                  bias: str = "any") -> Revision:
    """Qualify a signal with a new condition (Figure 1's revision).

    Builds ``cond = AND(inputs...)`` and replaces every sink of a chosen
    net with ``net & cond`` (or ``net | ~cond``), redefining a multi-sink
    signal the way the revised specification of Figure 1 redefines
    ``v(0)``/``v(1)``.
    """
    target = _pick_gate(spec, rng, bias=bias)
    picks = sorted(rng.sample(sorted(spec.inputs),
                              min(condition_inputs, len(spec.inputs))))
    cond = spec.and_(*picks, name=f"rev_cond_{target}") if len(picks) > 1 \
        else picks[0]
    gated = spec.and_(target, cond, name=f"rev_gate_{target}")
    sinks = [p for p in spec.sinks(target)
             if not (p.kind == "gate" and p.owner in (cond, gated))]
    for pin in sinks:
        spec.rewire_pin(pin, gated)
    estimate = 2 if len(picks) > 1 else 1
    return Revision(
        kind="add-condition",
        description=f"{target} := {target} & AND({', '.join(picks)})",
        estimate_gates=estimate,
        affected_outputs=_affected(spec, [gated]),
    )


def polarity_flip(spec: Circuit, rng: random.Random,
                  bias: str = "any") -> Revision:
    """Invert one gate input pin (missing/extra bubble)."""
    name = _pick_gate(spec, rng, bias=bias,
                      want=lambda g: bool(spec.gates[g].fanins))
    gate = spec.gates[name]
    if not gate.fanins:
        raise ReproError("no invertible pin found")
    idx = rng.randrange(len(gate.fanins))
    old = gate.fanins[idx]
    inv = spec.not_(old, name=f"rev_inv_{name}_{idx}")
    gate.fanins[idx] = inv
    return Revision(
        kind="polarity",
        description=f"{name}[{idx}]: {old} -> ~{old}",
        estimate_gates=1,
        affected_outputs=_affected(spec, [name]),
    )


def word_redefine(spec: Circuit, rng: random.Random,
                  out_prefix: str = "", max_bits: int = 8) -> Revision:
    """Redefine a group of related outputs (multi-output revision).

    Picks up to ``max_bits`` output ports (sharing a name prefix when
    one is given) and XORs each with a freshly built condition — an
    evolved-functionality change touching a word's worth of outputs.
    """
    ports = sorted(p for p in spec.outputs if p.startswith(out_prefix))
    if not ports:
        ports = sorted(spec.outputs)
    chosen = ports[:max_bits] if len(ports) <= max_bits else \
        sorted(rng.sample(ports, max_bits))
    picks = sorted(rng.sample(sorted(spec.inputs),
                              min(2, len(spec.inputs))))
    cond = spec.and_(*picks, name="rev_word_cond") if len(picks) > 1 \
        else picks[0]
    for port in chosen:
        old_net = spec.outputs[port]
        new_net = spec.xor(old_net, cond, name=f"rev_word_{port}")
        spec.set_output(port, new_net)
    return Revision(
        kind="word-redefine",
        description=f"outputs {', '.join(chosen)} ^= AND({', '.join(picks)})",
        estimate_gates=len(chosen) + (1 if len(picks) > 1 else 0),
        affected_outputs=tuple(chosen),
    )


def drop_term(spec: Circuit, rng: random.Random,
              bias: str = "any") -> Revision:
    """Remove one operand from a wide OR/AND gate (a missing term).

    The classic spec-bug shape in two-level control logic: a condition
    that should not (or should) have been part of a sum of products.
    """
    wide = lambda g: (len(spec.gates[g].fanins) >= 3 and
                      spec.gates[g].gtype in (GateType.OR, GateType.AND,
                                              GateType.NOR,
                                              GateType.NAND))
    name = _pick_gate(spec, rng, want=wide, bias=bias)
    gate = spec.gates[name]
    if len(gate.fanins) < 3:
        raise ReproError("no wide gate to drop a term from")
    idx = rng.randrange(len(gate.fanins))
    removed = gate.fanins.pop(idx)
    return Revision(
        kind="drop-term",
        description=f"{name}: removed operand {removed}",
        estimate_gates=1,
        affected_outputs=_affected(spec, [name]),
    )


def extra_term(spec: Circuit, rng: random.Random,
               bias: str = "any") -> Revision:
    """Add a fresh product term to an OR gate (a forgotten condition)."""
    want = lambda g: spec.gates[g].gtype in (GateType.OR, GateType.NOR)
    name = _pick_gate(spec, rng, want=want, bias=bias)
    gate = spec.gates[name]
    if gate.gtype not in (GateType.OR, GateType.NOR):
        raise ReproError("no OR-family gate to extend")
    picks = sorted(rng.sample(sorted(spec.inputs),
                              min(2, len(spec.inputs))))
    term = spec.and_(*picks, name=f"rev_term_{name}") \
        if len(picks) > 1 else picks[0]
    gate.fanins.append(term)
    return Revision(
        kind="extra-term",
        description=f"{name}: added term AND({', '.join(picks)})",
        estimate_gates=2 if len(picks) > 1 else 1,
        affected_outputs=_affected(spec, [name]),
    )


_KINDS = {
    "gate-type": gate_type_change,
    "wrong-input": wrong_input,
    "add-condition": add_condition,
    "polarity": polarity_flip,
    "word-redefine": word_redefine,
    "drop-term": drop_term,
    "extra-term": extra_term,
}


def apply_revision(spec: Circuit, kind: str, seed: int = 0,
                   **kwargs) -> Revision:
    """Apply one named revision in place; returns its record."""
    try:
        fn = _KINDS[kind]
    except KeyError:
        raise ReproError(
            f"unknown revision kind {kind!r}; have {sorted(_KINDS)}")
    return fn(spec, random.Random(seed), **kwargs)


def compose_revisions(spec: Circuit, kinds: Sequence,
                      seed: int = 0) -> Revision:
    """Apply several revisions (a multi-error ECO); merged record.

    ``kinds`` entries are either a kind name or ``(kind, kwargs)``.
    """
    rng = random.Random(seed)
    parts: List[Revision] = []
    for kind in kinds:
        if isinstance(kind, str):
            name, kwargs = kind, {}
        else:
            name, kwargs = kind
        parts.append(_KINDS[name](spec, random.Random(rng.getrandbits(32)),
                                  **kwargs))
    return Revision(
        kind="+".join(r.kind for r in parts),
        description="; ".join(r.description for r in parts),
        estimate_gates=sum(r.estimate_gates for r in parts),
        affected_outputs=tuple(sorted(
            {p for r in parts for p in r.affected_outputs})),
    )
