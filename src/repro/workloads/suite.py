"""The scaled test-case suites behind Tables 1-3.

Eleven ECO cases mirror the *relative* characteristics of the paper's
Table 1 — size spread across two orders of magnitude, revised-output
fractions from under 1% to ~2/3 — at roughly 1/150 scale (pure-Python
symbolic engines; see DESIGN.md).  Each case is produced exactly like
the industrial flow the paper describes:

* spec ``S``  --heavy synthesis-->  implementation ``C``;
* ``S`` + ground-truth revision  --light synthesis-->  spec ``C'``.

The revision size is recorded as the designer's estimate.  Four further
timing-critical cases (ids 12-15) feed Table 3.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.netlist.circuit import Circuit
from repro.netlist.simulate import random_patterns, simulate_words
from repro.synth import optimize_heavy, optimize_light
from repro.workloads.generators import (
    alu_design,
    comparator_design,
    control_design,
    decoder_design,
    mixed_design,
    multiplier_design,
    parity_design,
    priority_encoder,
    word_mux_design,
)
from repro.workloads.revisions import (
    Revision,
    apply_revision,
    compose_revisions,
)


@dataclass
class EcoCase:
    """One ECO test case: implementation, revised spec, ground truth."""

    case_id: int
    name: str
    impl: Circuit
    spec: Circuit
    revision: Revision

    @property
    def designer_estimate(self) -> int:
        return self.revision.estimate_gates


def _differs_somewhere(impl: Circuit, spec: Circuit, rounds: int = 8,
                       seed: int = 11) -> bool:
    """Cheap necessary check that the revision is observable."""
    rng = random.Random(seed)
    for _ in range(rounds):
        words = random_patterns(impl.inputs, rng)
        iv = simulate_words(impl, words)
        sv = simulate_words(spec, {n: words[n] for n in spec.inputs})
        for port in impl.outputs:
            if iv[impl.outputs[port]] != sv[spec.outputs[port]]:
                return True
    return False


def _make_case(case_id: int, name: str, spec_builder: Callable[[], Circuit],
               revise: Callable[[Circuit, int], Revision],
               heavy_seed: int) -> EcoCase:
    """Generate spec, derive C and C', retrying masked revisions."""
    for attempt in range(8):
        source = spec_builder()
        impl = optimize_heavy(source, seed=heavy_seed + attempt)
        revised = source.copy()
        revision = revise(revised, 100 * case_id + attempt)
        spec = optimize_light(revised)
        if _differs_somewhere(impl, spec):
            return EcoCase(case_id=case_id, name=name, impl=impl,
                           spec=spec, revision=revision)
    raise ReproError(f"case {case_id}: revision kept getting masked")


def _rev(kind: str, **kwargs) -> Callable[[Circuit, int], Revision]:
    def apply(spec: Circuit, seed: int) -> Revision:
        return apply_revision(spec, kind, seed=seed, **kwargs)
    return apply


def _multi(kinds: Sequence) -> Callable[[Circuit, int], Revision]:
    def apply(spec: Circuit, seed: int) -> Revision:
        return compose_revisions(spec, kinds, seed=seed)
    return apply


# ----------------------------------------------------------------------
# the 11 Table-1/2 cases
# ----------------------------------------------------------------------

def _case1_spec() -> Circuit:
    blocks = [
        ("wm", word_mux_design(n_words=4, width=24)),
        ("alu", alu_design(width=10)),
        ("ctl", control_design(n_inputs=16, n_outputs=16, n_terms=28,
                               seed=101)),
        ("cmp", comparator_design(width=10)),
        ("pri", priority_encoder(width=10)),
    ]
    return mixed_design(blocks, glue_seed=1, name="case1")


def _case2_spec() -> Circuit:
    return word_mux_design(n_words=2, width=5, name="case2")


def _case3_spec() -> Circuit:
    blocks = [
        ("wm1", word_mux_design(n_words=4, width=28)),
        ("wm2", word_mux_design(n_words=3, width=16)),
        ("alu", alu_design(width=12)),
        ("ctl", control_design(n_inputs=18, n_outputs=18, n_terms=32,
                               seed=303)),
        ("pri", priority_encoder(width=12)),
        ("cmp", comparator_design(width=9)),
        ("dec", decoder_design(select_bits=4)),
    ]
    return mixed_design(blocks, glue_seed=3, name="case3")


def _case4_spec() -> Circuit:
    blocks = [
        ("alu", alu_design(width=5)),
        ("ctl", control_design(n_inputs=10, n_outputs=6, n_terms=12,
                               seed=404)),
    ]
    return mixed_design(blocks, name="case4")


def _case5_spec() -> Circuit:
    return word_mux_design(n_words=2, width=6, name="case5")


def _case6_spec() -> Circuit:
    blocks = [
        ("alu", alu_design(width=9)),
        ("ctl", control_design(n_inputs=14, n_outputs=14, n_terms=24,
                               seed=606)),
        ("par", parity_design(width=16, groups=4)),
        ("cmp", comparator_design(width=8)),
        ("mul", multiplier_design(width=4)),
    ]
    return mixed_design(blocks, name="case6")


def _case7_spec() -> Circuit:
    blocks = [
        ("wm", word_mux_design(n_words=3, width=12)),
        ("cmp", comparator_design(width=8)),
        ("ctl", control_design(n_inputs=12, n_outputs=10, n_terms=18,
                               seed=707)),
    ]
    return mixed_design(blocks, glue_seed=7, name="case7")


def _case8_spec() -> Circuit:
    blocks = [
        ("ctl", control_design(n_inputs=12, n_outputs=10, n_terms=16,
                               seed=808)),
        ("pri", priority_encoder(width=6)),
    ]
    return mixed_design(blocks, name="case8")


def _case9_spec() -> Circuit:
    blocks = [
        ("cmp", comparator_design(width=4)),
        ("par", parity_design(width=8, groups=2)),
    ]
    return mixed_design(blocks, name="case9")


def _case10_spec() -> Circuit:
    return control_design(n_inputs=14, n_outputs=12, n_terms=20,
                          seed=1010, name="case10")


def _case11_spec() -> Circuit:
    blocks = [
        ("alu", alu_design(width=5)),
        ("pri", priority_encoder(width=7)),
        ("ctl", control_design(n_inputs=10, n_outputs=8, n_terms=12,
                               seed=1111)),
    ]
    return mixed_design(blocks, name="case11")


_CASES: List[Tuple[int, str, Callable[[], Circuit],
                   Callable[[Circuit, int], Revision], int]] = [
    (1, "case1", _case1_spec,
     _multi([("word-redefine", {"out_prefix": "wm_out_", "max_bits": 6}),
             ("gate-type", {"bias": "deep"})]), 41),
    (2, "case2", _case2_spec, _rev("add-condition", bias="deep"), 42),
    (3, "case3", _case3_spec,
     _multi([("word-redefine", {"out_prefix": "wm1_out_", "max_bits": 7}),
             ("polarity", {"bias": "deep"})]), 43),
    (4, "case4", _case4_spec, _rev("gate-type", bias="deep"), 44),
    (5, "case5", _case5_spec, _rev("add-condition", bias="deep"), 45),
    (6, "case6", _case6_spec, _rev("polarity", bias="shallow"), 46),
    (7, "case7", _case7_spec,
     _multi([("gate-type", {"bias": "deep"}),
             ("polarity", {"bias": "deep"})]), 47),
    (8, "case8", _case8_spec, _rev("wrong-input", bias="deep"), 48),
    (9, "case9", _case9_spec, _rev("gate-type", bias="deep"), 49),
    (10, "case10", _case10_spec, _rev("polarity", bias="shallow"), 50),
    (11, "case11", _case11_spec, _rev("gate-type", bias="deep"), 51),
]


def build_case(case_id: int) -> EcoCase:
    """Build one of the 11 Table-1/2 cases by id (1-based)."""
    for cid, name, spec_builder, revise, seed in _CASES:
        if cid == case_id:
            return _make_case(cid, name, spec_builder, revise, seed)
    raise ReproError(f"no case with id {case_id}")


def build_suite(ids: Optional[Sequence[int]] = None) -> List[EcoCase]:
    """Build the full 11-case suite (or a subset by id)."""
    wanted = set(ids) if ids is not None else {c[0] for c in _CASES}
    return [build_case(cid) for cid, *_ in _CASES if cid in wanted]


# ----------------------------------------------------------------------
# the 4 Table-3 timing cases (ids 12-15)
# ----------------------------------------------------------------------

def _timing_spec(case_id: int) -> Circuit:
    if case_id == 12:
        blocks = [("alu", alu_design(width=6)),
                  ("cmp", comparator_design(width=5))]
        return mixed_design(blocks, name="case12")
    if case_id == 13:
        blocks = [("alu", alu_design(width=7)),
                  ("ctl", control_design(n_inputs=10, n_outputs=6,
                                         n_terms=12, seed=1313))]
        return mixed_design(blocks, name="case13")
    if case_id == 14:
        blocks = [("alu1", alu_design(width=6)),
                  ("mul", multiplier_design(width=3)),
                  ("pri", priority_encoder(width=6))]
        return mixed_design(blocks, name="case14")
    if case_id == 15:
        blocks = [("cmp", comparator_design(width=7)),
                  ("par", parity_design(width=10, groups=2))]
        return mixed_design(blocks, name="case15")
    raise ReproError(f"no timing case with id {case_id}")


_TIMING_REVS: Dict[int, Callable[[Circuit, int], Revision]] = {
    12: _rev("gate-type", bias="deep"),
    13: _rev("word-redefine", out_prefix="alu_r", max_bits=4),
    14: _rev("polarity", bias="deep"),
    15: _rev("wrong-input", bias="deep"),
}


def build_timing_case(case_id: int) -> EcoCase:
    """Build one of the Table-3 cases (ids 12-15)."""
    if case_id not in _TIMING_REVS:
        raise ReproError(f"no timing case with id {case_id}")
    return _make_case(case_id, f"case{case_id}",
                      lambda: _timing_spec(case_id),
                      _TIMING_REVS[case_id], 60 + case_id)


def build_timing_suite() -> List[EcoCase]:
    """All four Table-3 cases."""
    return [build_timing_case(cid) for cid in (12, 13, 14, 15)]
