"""Synthetic ECO workloads.

The paper evaluates on 11 proprietary microprocessor ECOs; this package
builds their open substitute (see DESIGN.md): deterministic generator
families for specification netlists, ground-truth functional revisions
(whose size is the 'designer's estimate'), and the scaled test-case
suites behind Tables 1-3 plus the circuits of Figures 1-3.
"""

from repro.workloads.generators import (
    word_mux_design,
    alu_design,
    control_design,
    priority_encoder,
    comparator_design,
    parity_design,
    mixed_design,
    random_dag,
    decoder_design,
    multiplier_design,
)
from repro.workloads.revisions import (
    Revision,
    apply_revision,
    gate_type_change,
    wrong_input,
    add_condition,
    polarity_flip,
    word_redefine,
    drop_term,
    extra_term,
    compose_revisions,
)
from repro.workloads.suite import EcoCase, build_suite, build_timing_suite
from repro.workloads.figures import figure1_circuits, example1_circuits

__all__ = [
    "word_mux_design",
    "alu_design",
    "control_design",
    "priority_encoder",
    "comparator_design",
    "parity_design",
    "mixed_design",
    "random_dag",
    "decoder_design",
    "multiplier_design",
    "Revision",
    "apply_revision",
    "gate_type_change",
    "wrong_input",
    "add_condition",
    "polarity_flip",
    "word_redefine",
    "drop_term",
    "extra_term",
    "compose_revisions",
    "EcoCase",
    "build_suite",
    "build_timing_suite",
    "figure1_circuits",
    "example1_circuits",
]
