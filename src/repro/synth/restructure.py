"""Structural re-expression passes.

These passes keep the function of every output while moving the
implementation away from the source structure — the behaviour of
aggressive logic synthesis that the paper identifies as the reason
structural ECO matching breaks down.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.netlist.circuit import Circuit
from repro.netlist.gate import GateType
from repro.netlist.traverse import topological_order


def _reduce_tree(circuit: Circuit, op: GateType, operands: List[str],
                 rng: Optional[random.Random]) -> str:
    """Combine operands with 2-input gates in a (random) tree shape."""
    work = list(operands)
    if rng is not None:
        rng.shuffle(work)
    while len(work) > 1:
        if rng is not None and len(work) > 2:
            i = rng.randrange(len(work) - 1)
        else:
            i = 0
        a = work.pop(i)
        b = work.pop(i)
        work.insert(i, circuit.add(op, [a, b]))
    return work[0]


def decompose_two_input(circuit: Circuit, seed: Optional[int] = None,
                        name: Optional[str] = None) -> Circuit:
    """Decompose every n-ary gate into 2-input gates.

    With a seed, tree shapes and operand orders are randomized, which is
    the main source of structural divergence between two synthesis runs
    of the same function.  Inverted-output types (NAND/NOR/XNOR) become
    a 2-input tree followed by an inverter.
    """
    rng = random.Random(seed) if seed is not None else None
    out = Circuit(name or circuit.name)
    out.add_inputs(circuit.inputs)
    rep: Dict[str, str] = {n: n for n in circuit.inputs}

    for gname in topological_order(circuit):
        gate = circuit.gates[gname]
        fanins = [rep[f] for f in gate.fanins]
        gtype = gate.gtype
        if gtype in (GateType.CONST0, GateType.CONST1, GateType.BUF,
                     GateType.NOT, GateType.MUX):
            rep[gname] = out.add(gtype, fanins)
            continue
        base = {
            GateType.AND: GateType.AND, GateType.NAND: GateType.AND,
            GateType.OR: GateType.OR, GateType.NOR: GateType.OR,
            GateType.XOR: GateType.XOR, GateType.XNOR: GateType.XOR,
        }[gtype]
        inverted = gtype in (GateType.NAND, GateType.NOR, GateType.XNOR)
        if len(fanins) == 1:
            top = fanins[0]
        else:
            top = _reduce_tree(out, base, fanins, rng)
        rep[gname] = out.not_(top) if inverted else top

    for port, net in circuit.outputs.items():
        out.set_output(port, rep[net])
    return out


def demorgan_restructure(circuit: Circuit, seed: int = 0,
                         probability: float = 0.4,
                         name: Optional[str] = None) -> Circuit:
    """Re-express a fraction of AND/OR gates through De Morgan's laws.

    ``AND(a,b)`` becomes ``NOT(OR(NOT a, NOT b))`` (and dually), chosen
    independently per gate with the given probability.  Pure notation
    change on each gate, so the output functions are untouched, but the
    gate vocabulary and connectivity shift substantially.
    """
    rng = random.Random(seed)
    out = Circuit(name or circuit.name)
    out.add_inputs(circuit.inputs)
    rep: Dict[str, str] = {n: n for n in circuit.inputs}

    dual = {GateType.AND: GateType.NOR, GateType.OR: GateType.NAND,
            GateType.NAND: GateType.OR, GateType.NOR: GateType.AND}

    for gname in topological_order(circuit):
        gate = circuit.gates[gname]
        fanins = [rep[f] for f in gate.fanins]
        gtype = gate.gtype
        if gtype in dual and rng.random() < probability:
            inverted = [out.not_(f) for f in fanins]
            rep[gname] = out.add(dual[gtype], inverted)
        else:
            rep[gname] = out.add(gtype, fanins)

    for port, net in circuit.outputs.items():
        out.set_output(port, rep[net])
    return out


def balance(circuit: Circuit, name: Optional[str] = None) -> Circuit:
    """Rebuild n-ary trees of identical associative gates, balanced.

    Collapses chains of same-type 2-input AND/OR/XOR gates into one
    n-ary gate (when the intermediate net has a single sink), then the
    standard writer decomposition yields a depth-optimal tree.  Used by
    the timing-driven experiments to give baselines a fair depth.
    """
    sink_counts: Dict[str, int] = {}
    for g in circuit.gates.values():
        for f in g.fanins:
            sink_counts[f] = sink_counts.get(f, 0) + 1
    for net in circuit.outputs.values():
        sink_counts[net] = sink_counts.get(net, 0) + 1

    out = Circuit(name or circuit.name)
    out.add_inputs(circuit.inputs)
    rep: Dict[str, str] = {n: n for n in circuit.inputs}
    collapsible = (GateType.AND, GateType.OR, GateType.XOR)
    # leaves of the collapsed tree per original net
    leaves: Dict[str, List[str]] = {}

    def gather(gname: str, op: GateType) -> List[str]:
        gate = circuit.gates.get(gname)
        if (gate is None or gate.gtype is not op
                or sink_counts.get(gname, 0) > 1):
            return [gname]
        result: List[str] = []
        for f in gate.fanins:
            result.extend(gather(f, op))
        return result

    for gname in topological_order(circuit):
        gate = circuit.gates[gname]
        if gate.gtype in collapsible:
            collected: List[str] = []
            for f in gate.fanins:
                collected.extend(gather(f, gate.gtype))
            fanins = [rep[f] for f in collected]
            rep[gname] = _balanced_tree(out, gate.gtype, fanins)
        else:
            rep[gname] = out.add(gate.gtype, [rep[f] for f in gate.fanins])

    for port, net in circuit.outputs.items():
        out.set_output(port, rep[net])
    return out


def _balanced_tree(circuit: Circuit, op: GateType,
                   operands: Sequence[str]) -> str:
    work = list(operands)
    if len(work) == 1:
        return circuit.buf(work[0])
    while len(work) > 1:
        nxt = []
        for i in range(0, len(work) - 1, 2):
            nxt.append(circuit.add(op, [work[i], work[i + 1]]))
        if len(work) % 2:
            nxt.append(work[-1])
        work = nxt
    return work[0]
