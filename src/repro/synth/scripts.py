"""Canned optimization scripts: heavy (implementation) and light (spec)."""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from repro.netlist.circuit import Circuit
from repro.netlist.hashing import strash
from repro.cec.sweep import sweep_equivalent_nets, prune_dangling
from repro.synth.simplify import simplify_constants
from repro.synth.restructure import decompose_two_input, demorgan_restructure


def run_script(circuit: Circuit,
               passes: Sequence[Callable[[Circuit], Circuit]]) -> Circuit:
    """Apply passes left to right; each must be function-preserving."""
    current = circuit
    for p in passes:
        current = p(current)
    return current


def optimize_light(circuit: Circuit) -> Circuit:
    """Lightweight synthesis: what the revised spec ``C'`` receives.

    Structural hashing plus constant propagation — enough to remove
    obvious redundancy without disturbing the source structure, mirroring
    the 'technology-independent representation' the paper synthesizes
    from the revised VHDL.
    """
    return run_script(circuit, [strash, simplify_constants, strash])


def optimize_heavy(circuit: Circuit, seed: int = 1,
                   sweep: bool = True) -> Circuit:
    """Aggressive synthesis: what the implementation ``C`` went through.

    Randomized 2-input decomposition, De Morgan re-expression, constant
    propagation, structural hashing and (optionally) SAT sweeping.  The
    output is functionally equivalent to the input but structurally
    remote from it — the regime in which structural ECO approaches
    degrade and the paper's functional search shines.
    """
    passes: List[Callable[[Circuit], Circuit]] = [
        strash,
        simplify_constants,
        lambda c: decompose_two_input(c, seed=seed),
        lambda c: demorgan_restructure(c, seed=seed + 1, probability=0.45),
        strash,
        simplify_constants,
    ]
    result = run_script(circuit, passes)
    if sweep:
        result, _ = sweep_equivalent_nets(result)
        result = strash(result)
    prune_dangling(result)
    return result
