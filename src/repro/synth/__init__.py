"""Technology-independent synthesis passes.

The paper's premise is a *structural gap*: the current implementation
``C`` has been aggressively restructured (logic sharing, duplication,
decomposition) while the revised specification ``C'`` is synthesized
with lightweight optimization only.  This package provides both
scripts:

* :func:`optimize_heavy` — strash, 2-input decomposition with randomized
  tree shapes and De Morgan re-expression, constant propagation, SAT
  sweeping; functionally equivalent, structurally remote.
* :func:`optimize_light` — strash plus constant propagation; close to
  the source structure, like a quick elaboration of new RTL.

Every pass is pure (returns a new circuit) and function-preserving;
property tests in ``tests/synth`` verify preservation on random
circuits.
"""

from repro.synth.simplify import simplify_constants
from repro.synth.restructure import decompose_two_input, demorgan_restructure, balance
from repro.synth.scripts import optimize_heavy, optimize_light, run_script

__all__ = [
    "simplify_constants",
    "decompose_two_input",
    "demorgan_restructure",
    "balance",
    "optimize_heavy",
    "optimize_light",
    "run_script",
]
