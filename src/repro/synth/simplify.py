"""Constant propagation and local algebraic simplification."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.netlist.circuit import Circuit
from repro.netlist.gate import GateType
from repro.netlist.traverse import topological_order
from repro.cec.sweep import prune_dangling

# Net descriptors during propagation: either a constant or a (possibly
# negated) reference to a live net.
_CONST0 = ("const", False)
_CONST1 = ("const", True)


def simplify_constants(circuit: Circuit,
                       name: Optional[str] = None) -> Circuit:
    """Propagate constants and apply local identities.

    Handles: constant operands of AND/OR/XOR families, duplicate and
    complementary operands of symmetric gates, double negation, buffer
    collapsing, and MUX with constant/equal data or select.  The result
    is functionally equivalent with dead logic removed.
    """
    out = Circuit(name or circuit.name)
    out.add_inputs(circuit.inputs)

    # value per original net: ("const", bool) or ("net", name, negated)
    val: Dict[str, Tuple] = {n: ("net", n, False) for n in circuit.inputs}

    def materialize(desc: Tuple) -> str:
        """Ensure a net exists in `out` carrying this descriptor."""
        if desc[0] == "const":
            want = GateType.CONST1 if desc[1] else GateType.CONST0
            nname = "__const1" if desc[1] else "__const0"
            if not out.has_net(nname):
                out.add_gate(nname, want, [])
            return nname
        _, net, negated = desc
        if not negated:
            return net
        nname = f"{net}__n"
        if not out.has_net(nname):
            out.add_gate(nname, GateType.NOT, [net])
        return nname

    for gname in topological_order(circuit):
        gate = circuit.gates[gname]
        descs = [val[f] for f in gate.fanins]
        desc = _fold(gate.gtype, descs)
        if desc is not None:
            val[gname] = desc
            continue
        # emit the gate with simplified operands
        operands = [materialize(d) for d in descs]
        gtype = gate.gtype
        if gtype in (GateType.AND, GateType.OR, GateType.NAND,
                     GateType.NOR, GateType.XOR, GateType.XNOR):
            operands, gtype, folded = _fold_symmetric(gtype, descs, operands)
            if folded is not None:
                val[gname] = folded
                continue
            operands = [materialize(d) if isinstance(d, tuple) else d
                        for d in operands]
        out.add_gate(gname, gtype, operands)
        val[gname] = ("net", gname, False)

    for port, net in circuit.outputs.items():
        out.set_output(port, materialize(val[net]))
    prune_dangling(out)
    return out


def _fold(gtype: GateType, descs: List[Tuple]) -> Optional[Tuple]:
    """Whole-gate folds that need no new gate; None means 'emit gate'."""
    if gtype is GateType.CONST0:
        return _CONST0
    if gtype is GateType.CONST1:
        return _CONST1
    if gtype is GateType.BUF:
        return descs[0]
    if gtype is GateType.NOT:
        d = descs[0]
        if d[0] == "const":
            return ("const", not d[1])
        return ("net", d[1], not d[2])
    if gtype is GateType.MUX:
        s, d0, d1 = descs
        if s[0] == "const":
            return d1 if s[1] else d0
        if d0 == d1:
            return d0
        if d0[0] == "const" and d1[0] == "const":
            # d0=0,d1=1 -> s ; d0=1,d1=0 -> ~s
            if not d0[1] and d1[1]:
                return s
            return ("net", s[1], not s[2]) if s[0] == "net" else None
    return None


def _fold_symmetric(gtype: GateType, descs: List[Tuple],
                    operands: List[str]):
    """Simplify symmetric gates; returns (operands, gtype, folded).

    ``folded`` non-None short-circuits the gate to a descriptor.
    Operand entries may remain descriptors (tuples) when untouched.
    """
    invert_out = gtype in (GateType.NAND, GateType.NOR, GateType.XNOR)
    if gtype in (GateType.AND, GateType.NAND):
        base = GateType.AND
    elif gtype in (GateType.OR, GateType.NOR):
        base = GateType.OR
    else:
        base = GateType.XOR

    def negate(desc: Tuple) -> Tuple:
        if desc[0] == "const":
            return ("const", not desc[1])
        return ("net", desc[1], not desc[2])

    if base is GateType.XOR:
        # constants toggle output polarity; duplicate pairs cancel
        parity = invert_out
        seen: Dict[Tuple, int] = {}
        for d in descs:
            if d[0] == "const":
                parity ^= d[1]
            else:
                key = ("net", d[1], d[2])
                seen[key] = seen.get(key, 0) + 1
        live = []
        for key, count in seen.items():
            if count % 2 == 1:
                live.append(key)
        # complementary pairs: x ^ ~x = 1
        i = 0
        names = {}
        for key in list(live):
            names.setdefault(key[1], []).append(key)
        for net, keys in names.items():
            if len(keys) == 2:  # x and ~x both live
                live.remove(keys[0])
                live.remove(keys[1])
                parity ^= True
        if not live:
            return operands, gtype, ("const", parity)
        if len(live) == 1:
            d = live[0]
            return operands, gtype, negate(d) if parity else d
        out_type = GateType.XNOR if parity else GateType.XOR
        return list(live), out_type, None

    # AND/OR family
    absorbing = ("const", base is GateType.OR)   # 1 absorbs OR, 0 absorbs AND
    identity = ("const", base is GateType.AND)   # 1 is AND identity
    live = []
    seen_keys = set()
    for d in descs:
        if d[0] == "const":
            if d == absorbing:
                result = ("const", absorbing[1] != invert_out)
                return operands, gtype, result
            continue  # identity constant drops out
        key = ("net", d[1], d[2])
        if key in seen_keys:
            continue
        if ("net", d[1], not d[2]) in seen_keys:
            # x & ~x = 0 ; x | ~x = 1
            value = base is GateType.OR
            return operands, gtype, ("const", value != invert_out)
        seen_keys.add(key)
        live.append(key)
    if not live:
        return operands, gtype, ("const", identity[1] != invert_out)
    if len(live) == 1:
        d = live[0]
        return operands, gtype, negate(d) if invert_out else d
    out_type = gtype if len(live) == len(descs) else (
        {GateType.AND: GateType.AND, GateType.NAND: GateType.NAND,
         GateType.OR: GateType.OR, GateType.NOR: GateType.NOR}[gtype]
    )
    return list(live), out_type, None
