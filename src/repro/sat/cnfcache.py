"""Structural-hash-keyed CNF template cache.

Tseitin-encoding a circuit costs a topological walk with per-gate
dispatch.  The clause *structure* of that encoding depends only on the
circuit, so :class:`CnfCache` records it once as a template — clauses
over abstract variable slots — and replays it into any solver by
allocating fresh variables per slot and translating literals.  Replay
skips the walk and the dispatch entirely.

Templates are keyed by a digest built from
:func:`repro.netlist.hashing.structural_hash` keys bound to net names.
The key is canonical up to symmetric-fanin reordering, which preserves
every net's function, so a hit across reordered variants yields a
logically equivalent encoding: any query phrased over net variables
(equivalence miters, validation diffs) gets the same verdicts and
valid counterexamples.

The big win in the ECO engine: the specification never changes across
a run, and the work-in-progress implementation changes only when a
patch commits, so nearly every validation-time encode after the first
is a template replay (counted in ``RunCounters.encode_cache_hits``).
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Mapping, Optional, Tuple

from repro.netlist.circuit import Circuit
from repro.netlist.hashing import structural_hash
from repro.netlist.traverse import topological_order
from repro.sat.tseitin import CircuitEncoder


class _RecordingSolver:
    """Records the solver surface :class:`CircuitEncoder` drives.

    Variables become consecutive abstract slots starting at 1; clauses
    are stored as literal tuples over those slots.
    """

    __slots__ = ("slots", "clauses")

    def __init__(self):
        self.slots = 0
        self.clauses: List[Tuple[int, ...]] = []

    def new_var(self) -> int:
        self.slots += 1
        return self.slots

    def add_clause(self, lits) -> None:
        self.clauses.append(tuple(lits))


class CnfTemplate:
    """One recorded circuit encoding: clauses over abstract slots."""

    __slots__ = ("input_names", "num_slots", "clauses", "net_slot")

    def __init__(self, circuit: Circuit):
        rec = _RecordingSolver()
        self.input_names: Tuple[str, ...] = tuple(circuit.inputs)
        # reserve the input slots first so replay can map them onto
        # existing solver variables
        input_slots = {n: rec.new_var() for n in self.input_names}
        encoder = CircuitEncoder(rec)
        self.net_slot: Dict[str, int] = dict(
            encoder.encode(circuit, input_vars=input_slots))
        self.num_slots = rec.slots
        self.clauses = rec.clauses

    def instantiate(self, solver,
                    input_vars: Optional[Mapping[str, int]] = None
                    ) -> Dict[str, int]:
        """Replay into ``solver``; returns net name -> solver variable.

        ``input_vars`` maps input names onto existing solver variables
        (fresh ones are allocated for unlisted inputs), matching the
        contract of :meth:`CircuitEncoder.encode`.
        """
        varof = [0] * (self.num_slots + 1)
        for name in self.input_names:
            slot = self.net_slot[name]
            var = input_vars.get(name) if input_vars else None
            varof[slot] = var if var is not None else solver.new_var()
        for slot in range(1, self.num_slots + 1):
            if varof[slot] == 0:
                varof[slot] = solver.new_var()
        add_clause = solver.add_clause
        for clause in self.clauses:
            add_clause([varof[lit] if lit > 0 else -varof[-lit]
                        for lit in clause])
        return {net: varof[slot] for net, slot in self.net_slot.items()}


def circuit_digest(circuit: Circuit) -> str:
    """Cache key of a circuit's encoding: structural keys bound to names.

    Cached in the circuit's derived-data cache (mutations drop it).
    """
    cache = circuit.derived_cache()
    digest = cache.get("cnf_digest")
    if digest is None:
        keys = structural_hash(circuit)
        h = hashlib.blake2b(digest_size=16)
        for name in circuit.inputs:
            h.update(f"i{name}\0".encode())
        for name in topological_order(circuit):
            h.update(f"g{name}={keys[name]}\0".encode())
        digest = h.hexdigest()
        cache["cnf_digest"] = digest
    return digest


class CnfCache:
    """Digest-keyed store of :class:`CnfTemplate` objects.

    One cache serves a whole run (it hangs off the
    :class:`~repro.runtime.supervisor.RunSupervisor`), so the cone CNF
    of the spec — and of the implementation between patch commits — is
    encoded once and replayed everywhere: the incremental validator,
    the legacy validation oracle and the pairwise equivalence checks
    all share it.
    """

    def __init__(self, counters=None):
        self._templates: Dict[str, CnfTemplate] = {}
        #: optional RunCounters receiving ``encode_cache_hits``
        self.counters = counters
        self.hits = 0
        self.misses = 0

    def template(self, circuit: Circuit) -> CnfTemplate:
        key = circuit_digest(circuit)
        template = self._templates.get(key)
        if template is None:
            template = CnfTemplate(circuit)
            self._templates[key] = template
            self.misses += 1
        else:
            self.hits += 1
            if self.counters is not None:
                self.counters.encode_cache_hits += 1
        return template

    def encode(self, solver, circuit: Circuit,
               input_vars: Optional[Mapping[str, int]] = None
               ) -> Dict[str, int]:
        """Drop-in for :meth:`CircuitEncoder.encode` through the cache."""
        return self.template(circuit).instantiate(solver, input_vars)
