"""A CDCL SAT solver.

Implements the conflict-driven clause-learning architecture of MiniSAT:

* two-watched-literal unit propagation;
* VSIDS variable activity with exponential decay and phase saving;
* first-UIP conflict analysis with recursive clause minimization;
* geometric restarts;
* activity-driven learned-clause database reduction;
* incremental solving under assumptions;
* conflict budgets (returns :data:`UNKNOWN` when exhausted).

Literals use the DIMACS convention at the API boundary: variables are
positive integers from :meth:`Solver.new_var`, a negative integer is
the negated literal.  Internally literals are ``2*var + sign``.

Clause storage is a *flat arena* (``_ca``): one growable int list
holding every clause as ``[header, lit, lit, ...]``, where the header
packs ``size << 2 | learnt << 1 | deleted``.  A clause reference is
its arena offset — watcher lists, reasons and the clause databases are
plain int lists — so propagation walks contiguous integers instead of
chasing per-clause Python objects.  Learned-clause reduction *marks*
clauses deleted in one pass (watchers drop them lazily on the next
visit) and the arena is compacted when more than half of it is dead.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import SatError

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"

_UNDEF = -1
#: clause-reference sentinel: "no clause" (reasons, conflict results)
_NO_CLAUSE = -1

# header bit layout of an arena clause
_DELETED_BIT = 1
_LEARNT_BIT = 2
_SIZE_SHIFT = 2


def _mklit(var: int, negative: bool) -> int:
    return (var << 1) | int(negative)


def _lit_var(lit: int) -> int:
    return lit >> 1


def _lit_neg(lit: int) -> int:
    return lit ^ 1

def _lit_sign(lit: int) -> bool:
    """True when the literal is negative."""
    return bool(lit & 1)


class Solver:
    """Incremental CDCL solver.

    Typical use::

        s = Solver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a, b])
        s.add_clause([-a, b])
        assert s.solve() == SAT
        assert s.model_value(b) is True
    """

    def __init__(self):
        self._num_vars = 0
        #: flat clause arena: [header, lit, lit, ...] per clause
        self._ca: List[int] = []
        #: arena ints occupied by deleted clauses (compaction trigger)
        self._wasted = 0
        self._clauses: List[int] = []  # problem-clause offsets
        self._learnts: List[int] = []  # learnt-clause offsets
        self._watches: List[List[int]] = []  # per internal literal
        self._assign: List[int] = []  # per var: 1 true, 0 false, -1 undef
        self._level: List[int] = []
        self._reason: List[int] = []  # per var: clause offset or -1
        self._trail: List[int] = []  # internal literals in assignment order
        self._trail_lim: List[int] = []
        self._qhead = 0
        self._activity: List[float] = []
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._cla_inc = 1.0
        self._cla_decay = 0.999
        self._cla_act: Dict[int, float] = {}  # learnt offset -> activity
        self._saved_phase: List[bool] = []
        # indexed binary max-heap over variable activity (the MiniSAT
        # order heap): _heap holds vars, _heap_pos maps var -> slot
        # (-1 when absent).  Stale assigned vars are skipped lazily in
        # _pick_branch and re-inserted on backtrack.
        self._heap: List[int] = []
        self._heap_pos: List[int] = []
        self._ok = True
        self._model: List[int] = []
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self._assumption_levels: List[int] = []
        self._core: Optional[List[int]] = None

    # ------------------------------------------------------------------
    # clause arena
    # ------------------------------------------------------------------
    def _alloc(self, lits: Sequence[int], learnt: bool) -> int:
        """Append a clause to the arena; returns its offset."""
        ca = self._ca
        offset = len(ca)
        ca.append((len(lits) << _SIZE_SHIFT)
                  | (_LEARNT_BIT if learnt else 0))
        ca.extend(lits)
        return offset

    def _clause_lits(self, offset: int) -> List[int]:
        ca = self._ca
        return ca[offset + 1:offset + 1 + (ca[offset] >> _SIZE_SHIFT)]

    def _compact(self) -> None:
        """Rebuild the arena without deleted clauses, remapping every
        stored offset (databases, watchers, reasons, activities)."""
        ca = self._ca
        new_ca: List[int] = []
        remap: Dict[int, int] = {}
        for group in (self._clauses, self._learnts):
            for c in group:
                header = ca[c]
                remap[c] = len(new_ca)
                new_ca.append(header)
                new_ca.extend(ca[c + 1:c + 1 + (header >> _SIZE_SHIFT)])
        self._clauses = [remap[c] for c in self._clauses]
        self._learnts = [remap[c] for c in self._learnts]
        self._cla_act = {
            remap[c]: a for c, a in self._cla_act.items() if c in remap
        }
        self._reason = [
            remap[r] if r >= 0 else _NO_CLAUSE for r in self._reason
        ]
        watches = self._watches
        for w in range(len(watches)):
            watches[w] = [
                remap[c] for c in watches[w] if not ca[c] & _DELETED_BIT
            ]
        self._ca = new_ca
        self._wasted = 0

    # ------------------------------------------------------------------
    # problem construction
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        """Allocate a variable; returns its positive DIMACS id."""
        self._num_vars += 1
        self._assign.append(_UNDEF)
        self._level.append(0)
        self._reason.append(_NO_CLAUSE)
        self._activity.append(0.0)
        self._saved_phase.append(False)
        var = self._num_vars - 1
        self._heap_pos.append(len(self._heap))
        self._heap.append(var)
        self._heap_up(len(self._heap) - 1)
        self._watches.append([])
        self._watches.append([])
        return self._num_vars

    @property
    def num_vars(self) -> int:
        return self._num_vars

    def _to_internal(self, dimacs_lit: int) -> int:
        var = abs(dimacs_lit) - 1
        if dimacs_lit == 0 or var >= self._num_vars:
            raise SatError(f"bad literal {dimacs_lit}")
        return _mklit(var, dimacs_lit < 0)

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a clause of DIMACS literals; returns False if trivially UNSAT.

        Must be called at decision level 0 (i.e. between solve calls).
        """
        if self._trail_lim:
            raise SatError("add_clause while solving")
        if not self._ok:
            return False
        internal = sorted({self._to_internal(l) for l in lits})
        # remove duplicate/complementary literals and satisfied clauses
        out: List[int] = []
        prev = None
        for lit in internal:
            if prev is not None and lit == _lit_neg(prev):
                return True  # tautology
            val = self._value(lit)
            if val == 1:
                return True  # already satisfied at level 0
            if val == _UNDEF:
                out.append(lit)
            prev = lit
        if not out:
            self._ok = False
            return False
        if len(out) == 1:
            if not self._enqueue(out[0], _NO_CLAUSE):
                self._ok = False
                return False
            conflict = self._propagate()
            if conflict != _NO_CLAUSE:
                self._ok = False
                return False
            return True
        offset = self._alloc(out, learnt=False)
        self._clauses.append(offset)
        self._attach(offset)
        return True

    def _attach(self, offset: int) -> None:
        ca = self._ca
        self._watches[_lit_neg(ca[offset + 1])].append(offset)
        self._watches[_lit_neg(ca[offset + 2])].append(offset)

    # ------------------------------------------------------------------
    # assignment primitives
    # ------------------------------------------------------------------
    def _value(self, lit: int) -> int:
        """1 true, 0 false, -1 undef for an internal literal."""
        v = self._assign[_lit_var(lit)]
        if v == _UNDEF:
            return _UNDEF
        return v ^ (lit & 1)

    def _enqueue(self, lit: int, reason: int) -> bool:
        val = self._value(lit)
        if val != _UNDEF:
            return val == 1
        var = _lit_var(lit)
        self._assign[var] = 1 - (lit & 1)
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _propagate(self) -> int:
        """Unit propagation; returns a conflicting clause offset or
        :data:`_NO_CLAUSE`.

        Literal values are computed inline from the assignment array
        (``assign[var] ^ sign``) instead of through :meth:`_value`, and
        clauses are walked directly in the flat arena: this loop
        dominates solver runtime.  Clauses marked deleted by
        :meth:`_reduce_db` are dropped from the watcher list here,
        lazily, on their first visit.
        """
        assign = self._assign
        watches = self._watches
        trail = self._trail
        ca = self._ca
        qhead = self._qhead
        props = 0
        while qhead < len(trail):
            lit = trail[qhead]
            qhead += 1
            props += 1
            watchers = watches[lit]
            watches[lit] = []
            kept: List[int] = []
            i = 0
            n = len(watchers)
            false_lit = lit ^ 1
            while i < n:
                offset = watchers[i]
                i += 1
                header = ca[offset]
                if header & 1:  # _DELETED_BIT
                    continue  # reduced away; unhook lazily
                # ensure the false literal is in slot 1
                first = ca[offset + 1]
                if first == false_lit:
                    first = ca[offset + 2]
                    ca[offset + 1] = first
                    ca[offset + 2] = false_lit
                fv = assign[first >> 1]
                if fv >= 0 and (fv ^ (first & 1)) == 1:
                    kept.append(offset)
                    continue
                # search replacement watch (any non-false literal)
                found = False
                for k in range(offset + 3, offset + 1 + (header >> 2)):
                    other = ca[k]
                    ov = assign[other >> 1]
                    if ov < 0 or (ov ^ (other & 1)) == 1:
                        ca[offset + 2] = other
                        ca[k] = false_lit
                        watches[other ^ 1].append(offset)
                        found = True
                        break
                if found:
                    continue
                # clause is unit or conflicting
                kept.append(offset)
                if not self._enqueue(first, offset):
                    # conflict: restore remaining watchers
                    kept.extend(watchers[i:])
                    watches[lit].extend(kept)
                    self._qhead = len(trail)
                    self.propagations += props
                    return offset
            watches[lit].extend(kept)
        self._qhead = qhead
        self.propagations += props
        return _NO_CLAUSE

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _new_decision_level(self) -> None:
        self._trail_lim.append(len(self._trail))

    def _cancel_until(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        limit = self._trail_lim[level]
        for lit in reversed(self._trail[limit:]):
            var = _lit_var(lit)
            self._saved_phase[var] = self._assign[var] == 1
            self._assign[var] = _UNDEF
            self._reason[var] = _NO_CLAUSE
            self._heap_insert(var)
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    # ------------------------------------------------------------------
    # order heap (vars keyed by activity)
    # ------------------------------------------------------------------
    def _heap_up(self, i: int) -> None:
        heap, pos, act = self._heap, self._heap_pos, self._activity
        var = heap[i]
        a = act[var]
        while i > 0:
            parent = (i - 1) >> 1
            pvar = heap[parent]
            if act[pvar] >= a:
                break
            heap[i] = pvar
            pos[pvar] = i
            i = parent
        heap[i] = var
        pos[var] = i

    def _heap_down(self, i: int) -> None:
        heap, pos, act = self._heap, self._heap_pos, self._activity
        n = len(heap)
        var = heap[i]
        a = act[var]
        while True:
            child = 2 * i + 1
            if child >= n:
                break
            right = child + 1
            if right < n and act[heap[right]] > act[heap[child]]:
                child = right
            cvar = heap[child]
            if act[cvar] <= a:
                break
            heap[i] = cvar
            pos[cvar] = i
            i = child
        heap[i] = var
        pos[var] = i

    def _heap_insert(self, var: int) -> None:
        if self._heap_pos[var] != -1:
            return
        self._heap_pos[var] = len(self._heap)
        self._heap.append(var)
        self._heap_up(len(self._heap) - 1)

    # ------------------------------------------------------------------
    # conflict analysis
    # ------------------------------------------------------------------
    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            # uniform rescale preserves the heap order
            for i in range(self._num_vars):
                self._activity[i] *= 1e-100
            self._var_inc *= 1e-100
        pos = self._heap_pos[var]
        if pos != -1:
            self._heap_up(pos)

    def _bump_clause(self, offset: int) -> None:
        act = self._cla_act
        value = act.get(offset, 0.0) + self._cla_inc
        act[offset] = value
        if value > 1e20:
            for c in self._learnts:
                if c in act:
                    act[c] *= 1e-20
            self._cla_inc *= 1e-20

    def _analyze(self, conflict: int) -> (List[int], int):
        """First-UIP learning; returns (learnt clause, backtrack level)."""
        ca = self._ca
        learnt: List[int] = [0]  # slot 0 for the asserting literal
        seen = [False] * self._num_vars
        counter = 0
        lit: Optional[int] = None
        index = len(self._trail) - 1
        reason = conflict

        while True:
            assert reason != _NO_CLAUSE
            header = ca[reason]
            if header & _LEARNT_BIT:
                self._bump_clause(reason)
            for qi in range(reason + 1,
                            reason + 1 + (header >> _SIZE_SHIFT)):
                q = ca[qi]
                if lit is not None and q == lit:
                    continue  # skip the literal being resolved on
                var = _lit_var(q)
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    self._bump_var(var)
                    if self._level[var] == self._decision_level():
                        counter += 1
                    else:
                        learnt.append(q)
            # pick next literal to resolve on
            while not seen[_lit_var(self._trail[index])]:
                index -= 1
            lit = self._trail[index]
            index -= 1
            var = _lit_var(lit)
            seen[var] = False
            counter -= 1
            if counter == 0:
                learnt[0] = _lit_neg(lit)
                # restore marks for the minimization step
                for q in learnt[1:]:
                    seen[_lit_var(q)] = True
                break
            reason = self._reason[var]

        # clause minimization: drop literals implied by the rest
        abstract = 0
        for q in learnt[1:]:
            abstract |= 1 << (self._level[_lit_var(q)] & 31)
        minimized = [learnt[0]]
        for q in learnt[1:]:
            if self._reason[_lit_var(q)] == _NO_CLAUSE or \
                    not self._redundant(q, seen, abstract):
                minimized.append(q)
        learnt = minimized

        # compute backtrack level
        if len(learnt) == 1:
            bt = 0
        else:
            max_i = 1
            for i in range(2, len(learnt)):
                if self._level[_lit_var(learnt[i])] > \
                        self._level[_lit_var(learnt[max_i])]:
                    max_i = i
            learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
            bt = self._level[_lit_var(learnt[1])]
        return learnt, bt

    def _to_dimacs(self, lit: int) -> int:
        var = _lit_var(lit) + 1
        return -var if lit & 1 else var

    def _analyze_final(self, seeds: List[int]) -> List[int]:
        """Assumption literals responsible for falsifying ``seeds``.

        The standard analyze-final: walk the implication trail
        backwards from the seed variables; decisions reached (which,
        under assumptions, are exactly the assumption literals) form
        the core.
        """
        ca = self._ca
        seen = set()
        for lit in seeds:
            if self._level[_lit_var(lit)] > 0:
                seen.add(_lit_var(lit))
        core: List[int] = []
        for tlit in reversed(self._trail):
            var = _lit_var(tlit)
            if var not in seen:
                continue
            reason = self._reason[var]
            if reason == _NO_CLAUSE:
                core.append(self._to_dimacs(tlit))
            else:
                for qi in range(reason + 1,
                                reason + 1
                                + (ca[reason] >> _SIZE_SHIFT)):
                    qvar = _lit_var(ca[qi])
                    if qvar != var and self._level[qvar] > 0:
                        seen.add(qvar)
        return core

    def unsat_core(self) -> Optional[List[int]]:
        """Subset of the last solve's assumptions proven contradictory.

        ``None`` when the last solve was SAT/UNKNOWN or the formula is
        unsatisfiable without any assumptions (empty core is returned
        as ``[]`` in that case).  The core is not guaranteed minimal.
        """
        return self._core

    def _redundant(self, lit: int, seen: List[bool], abstract: int) -> bool:
        """Is ``lit`` implied by other marked literals (minimization)?"""
        ca = self._ca
        stack = [lit]
        top_seen = dict()
        while stack:
            p = stack.pop()
            reason = self._reason[_lit_var(p)]
            if reason == _NO_CLAUSE:
                return False
            for qi in range(reason + 2,
                            reason + 1 + (ca[reason] >> _SIZE_SHIFT)):
                q = ca[qi]
                var = _lit_var(q)
                if seen[var] or top_seen.get(var) or self._level[var] == 0:
                    continue
                if self._reason[var] == _NO_CLAUSE or \
                        not (abstract >> (self._level[var] & 31)) & 1:
                    return False
                top_seen[var] = True
                stack.append(q)
        return True

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def _pick_branch(self) -> int:
        heap, pos = self._heap, self._heap_pos
        assign = self._assign
        while heap:
            var = heap[0]
            last = heap.pop()
            pos[var] = -1
            if heap:
                heap[0] = last
                pos[last] = 0
                self._heap_down(0)
            if assign[var] == _UNDEF:
                return _mklit(var, not self._saved_phase[var])
        return -1

    def _reduce_db(self) -> None:
        """Drop the least active half of learned clauses.

        Clauses are *marked* deleted (header bit) in one pass over the
        learnt database; watcher lists shed them lazily during
        propagation, so reduction never rescans every watcher list.
        The arena is compacted once deleted clauses occupy more than
        half of it.
        """
        ca = self._ca
        act = self._cla_act
        self._learnts.sort(key=lambda c: act.get(c, 0.0))
        keep_from = len(self._learnts) // 2
        locked = set()
        for var in range(self._num_vars):
            r = self._reason[var]
            if r != _NO_CLAUSE and ca[r] & _LEARNT_BIT:
                locked.add(r)
        kept = []
        for i, c in enumerate(self._learnts):
            header = ca[c]
            if i < keep_from and (header >> _SIZE_SHIFT) > 2 \
                    and c not in locked:
                ca[c] = header | _DELETED_BIT
                self._wasted += (header >> _SIZE_SHIFT) + 1
                act.pop(c, None)
            else:
                kept.append(c)
        self._learnts = kept
        if self._wasted * 2 > len(ca):
            self._compact()

    def solve(self, assumptions: Sequence[int] = (),
              conflict_budget: Optional[int] = None) -> str:
        """Run the CDCL search.

        Args:
            assumptions: DIMACS literals assumed true for this call.
            conflict_budget: give up (returning :data:`UNKNOWN`) after
                this many conflicts.

        Returns:
            :data:`SAT`, :data:`UNSAT` or :data:`UNKNOWN`.
        """
        if not self._ok:
            self._core = []
            return UNSAT
        self._model = []
        self._core = None
        self._cancel_until(0)
        self._assumption_levels = []
        conflict = self._propagate()
        if conflict != _NO_CLAUSE:
            self._ok = False
            self._core = []
            return UNSAT

        budget_left = conflict_budget
        restart_limit = 100
        max_learnts = max(1000, len(self._clauses) // 3)
        assumption_lits = [self._to_internal(l) for l in assumptions]

        while True:
            conflict = self._propagate()
            if conflict != _NO_CLAUSE:
                self.conflicts += 1
                if budget_left is not None:
                    budget_left -= 1
                    if budget_left <= 0:
                        self._cancel_until(0)
                        return UNKNOWN
                if self._decision_level() == 0:
                    self._ok = False
                    self._core = []
                    return UNSAT
                if self._decision_level() <= len(self._assumption_levels):
                    # conflict among assumptions: extract the core
                    self._core = self._analyze_final(
                        self._clause_lits(conflict))
                    self._cancel_until(0)
                    return UNSAT
                learnt, bt = self._analyze(conflict)
                bt = max(bt, len(self._assumption_levels))
                self._cancel_until(bt)
                if len(learnt) == 1:
                    self._enqueue(learnt[0], _NO_CLAUSE)
                else:
                    offset = self._alloc(learnt, learnt=True)
                    self._learnts.append(offset)
                    self._attach(offset)
                    self._bump_clause(offset)
                    self._enqueue(learnt[0], offset)
                self._var_inc /= self._var_decay
                self._cla_inc /= self._cla_decay
                restart_limit -= 1
                if restart_limit <= 0:
                    restart_limit = 100
                    self._cancel_until(len(self._assumption_levels))
                if len(self._learnts) > max_learnts:
                    self._reduce_db()
                    max_learnts = int(max_learnts * 1.3)
            else:
                # extend assumptions first
                if len(self._assumption_levels) < len(assumption_lits):
                    lit = assumption_lits[len(self._assumption_levels)]
                    val = self._value(lit)
                    if val == 0:
                        # the assumption is already falsified: blame it
                        # plus the assumptions that implied its negation
                        core = self._analyze_final([lit])
                        wanted = self._to_dimacs(lit)
                        if wanted not in core:
                            core.append(wanted)
                        self._core = core
                        self._cancel_until(0)
                        return UNSAT
                    self._new_decision_level()
                    self._assumption_levels.append(self._decision_level())
                    if val == _UNDEF:
                        self._enqueue(lit, _NO_CLAUSE)
                    continue
                lit = self._pick_branch()
                if lit == -1:
                    # full model found
                    self._model = list(self._assign)
                    self._cancel_until(0)
                    return SAT
                self.decisions += 1
                self._new_decision_level()
                self._enqueue(lit, _NO_CLAUSE)

    # ------------------------------------------------------------------
    # model access
    # ------------------------------------------------------------------
    def model_value(self, dimacs_lit: int) -> Optional[bool]:
        """Value of a literal in the last SAT model (None if unassigned)."""
        if not self._model:
            raise SatError("no model available (last solve was not SAT)")
        var = abs(dimacs_lit) - 1
        if var >= len(self._model):
            raise SatError(f"unknown variable in literal {dimacs_lit}")
        v = self._model[var]
        if v == _UNDEF:
            return None
        value = bool(v)
        return value if dimacs_lit > 0 else not value

    def model(self) -> Dict[int, bool]:
        """The last SAT model as ``{var: value}``."""
        if not self._model:
            raise SatError("no model available (last solve was not SAT)")
        return {
            v + 1: bool(val)
            for v, val in enumerate(self._model) if val != _UNDEF
        }
