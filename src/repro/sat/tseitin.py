"""Tseitin transformation: netlists to CNF.

:class:`CircuitEncoder` maintains a net-name -> solver-variable map and
emits the standard Tseitin clauses per gate.  Multiple circuits can be
encoded into one solver with shared or disjoint input variables, which
is how miters (:mod:`repro.cec.miter`) and the ECO validation step
build their instances.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from repro.errors import SatError
from repro.netlist.circuit import Circuit
from repro.netlist.gate import GateType
from repro.netlist.traverse import topological_order


class CircuitEncoder:
    """Encodes circuits into a shared SAT solver instance."""

    def __init__(self, solver):
        self.solver = solver
        self._const0: Optional[int] = None
        self._const1: Optional[int] = None

    def fresh_var(self) -> int:
        return self.solver.new_var()

    def const_var(self, value: bool) -> int:
        """A variable constrained to the given constant."""
        if value:
            if self._const1 is None:
                self._const1 = self.solver.new_var()
                self.solver.add_clause([self._const1])
            return self._const1
        if self._const0 is None:
            self._const0 = self.solver.new_var()
            self.solver.add_clause([-self._const0])
        return self._const0

    # ------------------------------------------------------------------
    def encode(self, circuit: Circuit,
               input_vars: Optional[Mapping[str, int]] = None,
               prefix: str = "") -> Dict[str, int]:
        """Encode every net of ``circuit``; returns net -> solver var.

        Args:
            circuit: netlist to encode.
            input_vars: existing solver variables per input name; fresh
                variables are created for inputs not listed.
            prefix: ignored for variable creation, kept for symmetry
                with debugging dumps.

        Returns:
            Mapping from every net name to its solver variable.
        """
        varmap: Dict[str, int] = {}
        for name in circuit.inputs:
            if input_vars and name in input_vars:
                varmap[name] = input_vars[name]
            else:
                varmap[name] = self.solver.new_var()
        for name in topological_order(circuit):
            gate = circuit.gates[name]
            operands = [varmap[f] for f in gate.fanins]
            varmap[name] = self.encode_gate(gate.gtype, operands)
        return varmap

    def encode_gate(self, gtype: GateType, operands: Sequence[int]) -> int:
        """Tseitin clauses for one gate; returns the output variable."""
        s = self.solver
        if gtype is GateType.CONST0:
            return self.const_var(False)
        if gtype is GateType.CONST1:
            return self.const_var(True)
        if gtype is GateType.BUF:
            return operands[0]
        if gtype is GateType.NOT:
            out = s.new_var()
            s.add_clause([out, operands[0]])
            s.add_clause([-out, -operands[0]])
            return out
        if gtype in (GateType.AND, GateType.NAND):
            out = s.new_var()
            y = out if gtype is GateType.AND else -out
            for a in operands:
                s.add_clause([-y, a])
            s.add_clause([y] + [-a for a in operands])
            return out
        if gtype in (GateType.OR, GateType.NOR):
            out = s.new_var()
            y = out if gtype is GateType.OR else -out
            for a in operands:
                s.add_clause([y, -a])
            s.add_clause([-y] + list(operands))
            return out
        if gtype in (GateType.XOR, GateType.XNOR):
            acc = operands[0]
            for a in operands[1:]:
                acc = self._encode_xor2(acc, a)
            if gtype is GateType.XNOR:
                out = s.new_var()
                s.add_clause([out, acc])
                s.add_clause([-out, -acc])
                return out
            return acc
        if gtype is GateType.MUX:
            sel, d0, d1 = operands
            out = s.new_var()
            s.add_clause([-out, sel, d0])
            s.add_clause([out, sel, -d0])
            s.add_clause([-out, -sel, d1])
            s.add_clause([out, -sel, -d1])
            return out
        raise SatError(f"unknown gate type {gtype!r}")

    def _encode_xor2(self, a: int, b: int) -> int:
        s = self.solver
        out = s.new_var()
        s.add_clause([-out, a, b])
        s.add_clause([-out, -a, -b])
        s.add_clause([out, -a, b])
        s.add_clause([out, a, -b])
        return out

    def equality(self, a: int, b: int) -> int:
        """A variable true iff ``a == b``."""
        s = self.solver
        out = s.new_var()
        s.add_clause([-out, -a, b])
        s.add_clause([-out, a, -b])
        s.add_clause([out, a, b])
        s.add_clause([out, -a, -b])
        return out


def encode_circuit(solver, circuit: Circuit,
                   input_vars: Optional[Mapping[str, int]] = None
                   ) -> Dict[str, int]:
    """Convenience wrapper: encode one circuit into a solver."""
    return CircuitEncoder(solver).encode(circuit, input_vars=input_vars)
