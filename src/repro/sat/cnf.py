"""CNF formula container and DIMACS I/O."""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.errors import ParseError, SatError


class Cnf:
    """A CNF formula: a variable count and a list of clauses.

    Clauses are tuples of non-zero DIMACS literals.  The container is
    solver-agnostic; :meth:`load_into` feeds any object with ``new_var``
    / ``add_clause`` (e.g. :class:`repro.sat.Solver`).
    """

    def __init__(self, num_vars: int = 0):
        self.num_vars = num_vars
        self.clauses: List[Tuple[int, ...]] = []

    def new_var(self) -> int:
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, lits: Iterable[int]) -> None:
        clause = tuple(lits)
        for lit in clause:
            if lit == 0 or abs(lit) > self.num_vars:
                raise SatError(f"literal {lit} out of range")
        self.clauses.append(clause)

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> None:
        for c in clauses:
            self.add_clause(c)

    def __len__(self) -> int:
        return len(self.clauses)

    def load_into(self, solver) -> List[int]:
        """Create variables in ``solver`` and add all clauses.

        Returns the solver variable id for each CNF variable (1-based:
        entry ``i`` corresponds to CNF variable ``i+1``), so formulas
        can be combined into one incremental solver.
        """
        mapping = [solver.new_var() for _ in range(self.num_vars)]

        def translate(lit: int) -> int:
            v = mapping[abs(lit) - 1]
            return v if lit > 0 else -v

        for clause in self.clauses:
            solver.add_clause([translate(l) for l in clause])
        return mapping

    def __repr__(self) -> str:
        return f"Cnf(vars={self.num_vars}, clauses={len(self.clauses)})"


def parse_dimacs(text: str, filename: str = "<string>") -> Cnf:
    """Parse a DIMACS CNF file."""
    cnf = None
    pending: List[int] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf" \
                    or not parts[2].isdigit() or not parts[3].isdigit():
                raise ParseError("malformed problem line", filename, lineno)
            cnf = Cnf(int(parts[2]))
            continue
        if cnf is None:
            raise ParseError("clause before problem line", filename, lineno)
        for tok in line.split():
            lit = int(tok)
            if lit == 0:
                cnf.add_clause(pending)
                pending = []
            else:
                pending.append(lit)
    if cnf is None:
        raise ParseError("missing problem line", filename, 0)
    if pending:
        cnf.add_clause(pending)  # tolerate missing trailing 0
    return cnf


def to_dimacs(cnf: Cnf) -> str:
    """Serialize to DIMACS text."""
    lines = [f"p cnf {cnf.num_vars} {len(cnf.clauses)}"]
    for clause in cnf.clauses:
        lines.append(" ".join(str(l) for l in clause) + " 0")
    return "\n".join(lines) + "\n"
