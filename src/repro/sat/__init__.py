"""SAT solving substrate.

A from-scratch CDCL solver in the MiniSAT lineage (the paper's engine
embeds MiniSAT v1.13): two-watched-literal propagation, VSIDS branching
with phase saving, first-UIP conflict analysis with clause minimization,
geometric restarts and learned-clause reduction.  On top sit a CNF
container with DIMACS I/O and the Tseitin transformation from netlists
to CNF used by miters and by the ECO validation step.

Budgets: :meth:`Solver.solve` accepts a conflict budget and returns
``UNKNOWN`` when exhausted — the 'resource-constrained SAT solver' used
to validate sampled rewire candidates (Section 5.1).
"""

from repro.sat.solver import Solver, SAT, UNSAT, UNKNOWN
from repro.sat.cnf import Cnf, parse_dimacs, to_dimacs
from repro.sat.tseitin import CircuitEncoder, encode_circuit
from repro.sat.cnfcache import CnfCache, CnfTemplate

__all__ = [
    "Solver",
    "SAT",
    "UNSAT",
    "UNKNOWN",
    "Cnf",
    "parse_dimacs",
    "to_dimacs",
    "CircuitEncoder",
    "encode_circuit",
    "CnfCache",
    "CnfTemplate",
]
