"""Exception hierarchy shared across the repro packages.

Every error raised by the library derives from :class:`ReproError` so
that callers can catch library failures without masking programming
errors (``TypeError``, ``KeyError``, ...) in their own code.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class NetlistError(ReproError):
    """Structural problem in a circuit: dangling pin, cycle, bad name."""


class ParseError(ReproError):
    """Malformed input file (BLIF / Verilog)."""

    def __init__(self, message: str, filename: str = "<string>", line: int = 0):
        super().__init__(f"{filename}:{line}: {message}")
        self.filename = filename
        self.line = line


class BddError(ReproError):
    """BDD manager misuse or resource exhaustion."""


class BddNodeLimitError(BddError):
    """The manager exceeded its configured node limit."""


class SatError(ReproError):
    """SAT solver misuse (bad literal, solving a released solver, ...)."""


class ResourceBudgetExceeded(ReproError):
    """A resource-constrained computation ran out of its budget.

    Used by the SAT validation step of the ECO flow (the paper's
    'resource-constrained SAT solver') and by BDD node limits during
    symbolic computation.
    """


class EcoError(ReproError):
    """The ECO engine could not produce a valid patch."""


class RectificationInfeasible(EcoError):
    """No rewire operation rectifies the requested output."""
