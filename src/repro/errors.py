"""Exception hierarchy shared across the repro packages.

Every error raised by the library derives from :class:`ReproError` so
that callers can catch library failures without masking programming
errors (``TypeError``, ``KeyError``, ...) in their own code.

Budget exhaustion forms its own sub-hierarchy so that run supervision
(:mod:`repro.runtime`) can catch *any* resource blow-up with one except
clause::

    ReproError
    ├── NetlistError
    ├── ParseError
    ├── BddError
    │   └── BddNodeLimitError      (also a ResourceBudgetExceeded)
    ├── SatError
    ├── ResourceBudgetExceeded
    │   ├── BddNodeLimitError      (via multiple inheritance)
    │   ├── SatBudgetExceeded
    │   └── DeadlineExceeded
    ├── WorkerDiedError
    ├── JournalError
    └── EcoError
        ├── RectificationInfeasible
        └── PatchStructureError

:class:`BddNodeLimitError` deliberately inherits from both
:class:`BddError` (it is a BDD-layer condition) and
:class:`ResourceBudgetExceeded` (it is a budget exhaustion): code that
cares about the BDD layer catches the former, code that cares about
graceful degradation catches the latter, and both keep working.
"""

from __future__ import annotations

from typing import Iterable, List, Optional


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class NetlistError(ReproError):
    """Structural problem in a circuit: dangling pin, cycle, bad name."""


class ParseError(ReproError):
    """Malformed input file (BLIF / Verilog)."""

    def __init__(self, message: str, filename: str = "<string>", line: int = 0):
        super().__init__(f"{filename}:{line}: {message}")
        self.filename = filename
        self.line = line


class BddError(ReproError):
    """BDD manager misuse or resource exhaustion."""


class SatError(ReproError):
    """SAT solver misuse (bad literal, solving a released solver, ...)."""


class ResourceBudgetExceeded(ReproError):
    """A resource-constrained computation ran out of its budget.

    Umbrella class for every budget exhaustion raised by the library:
    SAT conflict budgets, BDD node limits and run deadlines.  The run
    supervisor catches this class to trigger graceful degradation; the
    concrete subclasses say which resource ran out.
    """


class BddNodeLimitError(BddError, ResourceBudgetExceeded):
    """The manager exceeded its configured node limit.

    Inherits from both :class:`BddError` and
    :class:`ResourceBudgetExceeded` — see the module docstring.
    """


class SatBudgetExceeded(ResourceBudgetExceeded):
    """The run-level SAT conflict budget is spent."""


class DeadlineExceeded(ResourceBudgetExceeded):
    """The run's wall-clock deadline passed."""


class WorkerDiedError(ReproError):
    """A supervised pool worker died before returning its result.

    Raised internally by the supervised worker pool
    (:mod:`repro.eco.parallel`) to unify the three ways a worker can
    vanish — a broken process pool, a nonzero exit, a missed heartbeat
    deadline — plus the inline-mode simulation used by the chaos
    harness.  The pool catches it and retries or quarantines; it never
    escapes ``parallel_repair``.
    """


class JournalError(ReproError):
    """A checkpoint journal cannot be used for resumption.

    Raised by :mod:`repro.eco.checkpoint` when a journal's header does
    not match the run being resumed (different design or configuration
    digest) or a journaled commit fails validation on replay.
    """


class EcoError(ReproError):
    """The ECO engine could not produce a valid patch."""


class RectificationInfeasible(EcoError):
    """No rewire operation rectifies the requested output."""


class PatchStructureError(EcoError):
    """A patch would corrupt the netlist structurally.

    Raised when static analysis (:mod:`repro.lint`) proves a rewire-op
    set illegal — it would introduce a combinational cycle, reference a
    missing source net, or leave the patched circuit ill-formed.  The
    offending :class:`repro.lint.diag.Diagnostic` objects ride along in
    ``diagnostics`` so callers can render or serialize them.
    """

    def __init__(
        self,
        message: str,
        diagnostics: Optional[Iterable[object]] = None,
    ):
        super().__init__(message)
        self.diagnostics: List[object] = (
            list(diagnostics) if diagnostics is not None else []
        )
