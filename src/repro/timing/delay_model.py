"""Gate delay model: intrinsic delay plus fanout load, in picoseconds."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.netlist.gate import GateType

# Intrinsic delays loosely follow relative cell strengths of a generic
# standard-cell library: inverters fastest, XOR family slowest.
_DEFAULT_INTRINSIC = {
    GateType.CONST0: 0.0,
    GateType.CONST1: 0.0,
    GateType.BUF: 6.0,
    GateType.NOT: 5.0,
    GateType.AND: 12.0,
    GateType.NAND: 9.0,
    GateType.OR: 12.0,
    GateType.NOR: 9.0,
    GateType.XOR: 18.0,
    GateType.XNOR: 18.0,
    GateType.MUX: 16.0,
}


@dataclass(frozen=True)
class DelayModel:
    """Linear delay model: ``delay = intrinsic[type] + load_ps * sinks``.

    ``extra_input_ps`` charges wide gates for every operand beyond the
    second, approximating the decomposition cost a technology mapper
    would pay.
    """

    intrinsic: Mapping[GateType, float] = field(
        default_factory=lambda: dict(_DEFAULT_INTRINSIC))
    load_ps: float = 1.5
    extra_input_ps: float = 4.0

    def gate_delay(self, gtype: GateType, fanins: int, sinks: int) -> float:
        base = self.intrinsic.get(gtype, 12.0)
        wide = max(0, fanins - 2) * self.extra_input_ps
        return base + wide + self.load_ps * sinks


DEFAULT_DELAY_MODEL = DelayModel()
