"""Static timing analysis substrate.

The paper's Table 3 measures patch impact on design slack after place
and route.  Without physical design data we use a consistent logical
proxy: a load-aware linear delay model over the levelized netlist.  The
absolute numbers differ from silicon, but the *relative* comparison the
paper makes — whose patch degrades slack less — is preserved because
both tools' patches are measured with the same model.
"""

from repro.timing.delay_model import DelayModel, DEFAULT_DELAY_MODEL
from repro.timing.sta import (
    TimingReport,
    arrival_times,
    analyze,
    critical_path,
)

__all__ = [
    "DelayModel",
    "DEFAULT_DELAY_MODEL",
    "TimingReport",
    "arrival_times",
    "analyze",
    "critical_path",
]
