"""Levelized static timing analysis."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.netlist.circuit import Circuit
from repro.netlist.traverse import topological_order
from repro.timing.delay_model import DelayModel, DEFAULT_DELAY_MODEL


@dataclass
class TimingReport:
    """Result of one STA run."""

    arrival: Dict[str, float]
    #: per output port: arrival time at the port
    output_arrival: Dict[str, float]
    period: float
    #: per output port: period - arrival
    output_slack: Dict[str, float]

    @property
    def worst_slack(self) -> float:
        return min(self.output_slack.values())

    @property
    def worst_output(self) -> str:
        return min(self.output_slack, key=self.output_slack.get)

    @property
    def max_arrival(self) -> float:
        return max(self.output_arrival.values())


def arrival_times(circuit: Circuit,
                  model: DelayModel = DEFAULT_DELAY_MODEL,
                  eco_gates: Optional[Iterable[str]] = None,
                  eco_penalty_ps: float = 0.0) -> Dict[str, float]:
    """Arrival time of every net under the delay model.

    ``eco_gates`` marks gates inserted by an ECO patch; each is charged
    ``eco_penalty_ps`` extra delay.  This models the post-placement
    reality behind the paper's Table 3: patch cells are dropped into
    leftover space after the design is placed and routed, paying detour
    wiring that freshly synthesized logic does not.
    """
    sink_counts: Dict[str, int] = {n: 0 for n in circuit.nets()}
    for g in circuit.gates.values():
        for f in g.fanins:
            sink_counts[f] += 1
    for net in circuit.outputs.values():
        sink_counts[net] += 1

    penalized = set(eco_gates) if eco_gates else set()
    arrival: Dict[str, float] = {n: 0.0 for n in circuit.inputs}
    for name in topological_order(circuit):
        gate = circuit.gates[name]
        start = max((arrival[f] for f in gate.fanins), default=0.0)
        delay = model.gate_delay(
            gate.gtype, len(gate.fanins), sink_counts[name])
        if name in penalized:
            delay += eco_penalty_ps
        arrival[name] = start + delay
    return arrival


def analyze(circuit: Circuit, period: Optional[float] = None,
            model: DelayModel = DEFAULT_DELAY_MODEL,
            eco_gates: Optional[Iterable[str]] = None,
            eco_penalty_ps: float = 0.0) -> TimingReport:
    """Full STA: arrivals and slacks against a clock period.

    When ``period`` is omitted it is set to the worst arrival, so the
    unmodified design closes timing with exactly zero worst slack —
    matching how the Table 3 designs were in a timing-closure loop.
    ``eco_gates`` / ``eco_penalty_ps`` charge patch cells for their
    post-placement detour wiring (see :func:`arrival_times`).
    """
    arrival = arrival_times(circuit, model, eco_gates=eco_gates,
                            eco_penalty_ps=eco_penalty_ps)
    out_arr = {p: arrival[n] for p, n in circuit.outputs.items()}
    if period is None:
        period = max(out_arr.values()) if out_arr else 0.0
    slack = {p: period - a for p, a in out_arr.items()}
    return TimingReport(arrival=arrival, output_arrival=out_arr,
                        period=period, output_slack=slack)


def critical_path(circuit: Circuit,
                  model: DelayModel = DEFAULT_DELAY_MODEL) -> List[str]:
    """Nets on one maximum-arrival path, input to output."""
    arrival = arrival_times(circuit, model)
    out_arr = {p: arrival[n] for p, n in circuit.outputs.items()}
    if not out_arr:
        return []
    end = circuit.outputs[max(out_arr, key=out_arr.get)]
    path = [end]
    current = end
    while current in circuit.gates:
        gate = circuit.gates[current]
        if not gate.fanins:
            break
        current = max(gate.fanins, key=lambda f: arrival[f])
        path.append(current)
    path.reverse()
    return path
