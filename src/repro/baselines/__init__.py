"""Comparator ECO engines.

Two baselines stand in for the paper's reference points (Table 2):

* :mod:`repro.baselines.deltasyn` — a reimplementation of the DeltaSyn
  approach [Krishnaswamy et al., ICCAD'09]: structural signal
  correspondence grown from the primary inputs, patch = the unmatched
  part of the revised cones re-expressed over the matched boundary.
* :mod:`repro.baselines.conemap` — a deliberately crude cone-replacement
  ECO standing in for the closed commercial tool's default setting:
  every failing output's full revised cone is instantiated, shared only
  at the primary inputs.

Both produce the same result record as the syseco engine, so the
Table-2 harness treats all three tools uniformly.
"""

from repro.baselines.deltasyn import DeltaSyn
from repro.baselines.conemap import ConeMap

__all__ = ["DeltaSyn", "ConeMap"]
