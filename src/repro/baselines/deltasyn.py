"""DeltaSyn-style ECO: signal correspondence + logic difference.

Reimplementation of the approach of Krishnaswamy et al. (ICCAD'09), as
characterized in the paper's prior-work discussion: it 'derives a patch
boundary matching signals of C and C' from both primary inputs and
outputs, thus making the logic implementation of an update readily
available'.

Three phases:

1. **Forward matching.**  Every net of ``C'`` is paired with a
   functionally corresponding net of ``C`` found by multi-round random
   simulation signatures; pairings are confirmed by SAT lazily, only
   when the delta generation actually cuts at them.
2. **Output anchoring.**  Equivalent output pairs are matched outright
   (the 'from outputs' direction).
3. **Delta generation.**  For every failing output, the part of its
   revised cone above the matched boundary is instantiated in ``C`` and
   the port rewired to the clone; deltas of different outputs share
   clones.

The structural consequence the paper exploits is inherent to this
scheme: every net downstream of a functional change is unmatchable, so
the delta spans from the change point all the way to the outputs.  The
rewire-based engine instead repairs *inside* the implementation and
keeps that downstream logic — which is where its patch-size advantage
comes from.
"""

from __future__ import annotations

import random
from repro.runtime.clock import now
from typing import Dict, List, Optional, Set

from repro.netlist.circuit import Circuit, Pin
from repro.netlist.gate import WORD_BITS
from repro.netlist.simulate import random_patterns, simulate_words
from repro.netlist.traverse import topological_order
from repro.cec.equivalence import check_equivalence, nonequivalent_outputs
from repro.errors import EcoError
from repro.eco.patch import Patch, RectificationResult, RewireOp
from repro.sat import Solver, UNSAT
from repro.sat.tseitin import CircuitEncoder


class DeltaSyn:
    """Signal-correspondence ECO engine (DeltaSyn reimplementation).

    Args:
        sim_rounds: random-simulation rounds for candidate matching.
        sat_budget: conflict budget per boundary-match confirmation.
        verify: prove full equivalence of the result (raises on failure).
    """

    def __init__(self, sim_rounds: int = 8,
                 sat_budget: Optional[int] = 20000, verify: bool = True):
        self.sim_rounds = sim_rounds
        self.sat_budget = sat_budget
        self.verify = verify

    # ------------------------------------------------------------------
    def match_signals(self, impl: Circuit, spec: Circuit) -> Dict[str, str]:
        """Candidate correspondence: spec net -> impl net, by signature."""
        rng = random.Random(77)
        impl_order = topological_order(impl)
        spec_order = topological_order(spec)
        impl_sigs: Dict[str, int] = {n: 0 for n in impl.nets()}
        spec_sigs: Dict[str, int] = {n: 0 for n in spec.nets()}
        for _ in range(self.sim_rounds):
            words = random_patterns(impl.inputs, rng)
            iv = simulate_words(impl, words, impl_order)
            sv = simulate_words(
                spec, {n: words.get(n, 0) for n in spec.inputs}, spec_order)
            for net in impl_sigs:
                impl_sigs[net] = (impl_sigs[net] << WORD_BITS) | iv[net]
            for net in spec_sigs:
                spec_sigs[net] = (spec_sigs[net] << WORD_BITS) | sv[net]

        # earliest impl net per signature (smaller cones preferred)
        by_sig: Dict[int, str] = {}
        for net in list(impl.inputs) + impl_order:
            by_sig.setdefault(impl_sigs[net], net)

        matches: Dict[str, str] = {}
        for net in spec.nets():
            hit = by_sig.get(spec_sigs[net])
            if hit is not None:
                matches[net] = hit
        return matches

    # ------------------------------------------------------------------
    def rectify(self, impl: Circuit, spec: Circuit) -> RectificationResult:
        """Compute and apply the logic difference."""
        started = now()
        work = impl.copy()
        patch = Patch()

        failing = set(nonequivalent_outputs(work, spec))
        if failing:
            matches = self.match_signals(work, spec)
            for port in impl.outputs:  # output anchoring
                if port not in failing:
                    matches.setdefault(spec.outputs[port],
                                       impl.outputs[port])

            # lazy SAT confirmation of boundary matches
            solver = Solver()
            encoder = CircuitEncoder(solver)
            impl_map = encoder.encode(work)
            spec_map = encoder.encode(
                spec, input_vars={n: impl_map[n] for n in work.inputs
                                  if n in spec.inputs})
            confirmed: Dict[str, bool] = {}

            def match_confirmed(snet: str) -> bool:
                hit = confirmed.get(snet)
                if hit is not None:
                    return hit
                inet = matches[snet]
                if snet in spec.inputs and inet == snet:
                    confirmed[snet] = True
                    return True
                neq = encoder._encode_xor2(spec_map[snet], impl_map[inet])
                ok = solver.solve(assumptions=[neq],
                                  conflict_budget=self.sat_budget) == UNSAT
                confirmed[snet] = ok
                return ok

            clone_map: Dict[str, str] = {}
            new_gates: Set[str] = set()
            ops: List[RewireOp] = []

            def resolve(name: str) -> str:
                if name in clone_map:
                    return clone_map[name]
                if name in spec.inputs and name in matches \
                        and matches[name] == name:
                    return name
                if name in matches and match_confirmed(name):
                    clone_map[name] = matches[name]
                    return matches[name]
                if name in spec.inputs:
                    return name
                gate = spec.gates[name]
                fanins = [resolve(f) for f in gate.fanins]
                clone_name = f"delta${name}"
                while work.has_net(clone_name):
                    clone_name += "_"
                work.add_gate(clone_name, gate.gtype, fanins)
                clone_map[name] = clone_name
                new_gates.add(clone_name)
                return clone_name

            for port in sorted(failing):
                target = resolve(spec.outputs[port])
                work.rewire_pin(Pin.output(port), target)
                ops.append(RewireOp(Pin.output(port), spec.outputs[port],
                                    from_spec=True))
            patch.record(ops, clone_map, new_gates)

        per_output = {port: "delta" for port in failing}
        if self.verify:
            verification = check_equivalence(work, spec)
            if verification.equivalent is not True:
                raise EcoError("DeltaSyn result failed verification: "
                               f"{verification.counterexample}")
        return RectificationResult(
            patched=work,
            patch=patch,
            verified_outputs=tuple(sorted(work.outputs)),
            runtime_seconds=now() - started,
            per_output=per_output,
        )
