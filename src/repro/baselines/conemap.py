"""Cone-replacement ECO: the 'commercial tool' stand-in.

For every failing output the entire revised cone is cloned from ``C'``
into ``C`` (cones share logic among themselves, but reuse nothing from
the existing implementation beyond the primary inputs) and the output
port is rewired to the clone.  This is sound for any revision and
needs no search — and produces patches whose size tracks the cone
sizes rather than the change, which is precisely why the paper treats
its commercial reference as 'guidance'.
"""

from __future__ import annotations

from repro.runtime.clock import now
from typing import Optional

from repro.netlist.circuit import Circuit, Pin
from repro.cec.equivalence import check_equivalence, nonequivalent_outputs
from repro.errors import EcoError
from repro.eco.patch import Patch, RectificationResult, RewireOp
from repro.eco.validate import apply_rewires


class ConeMap:
    """Full-cone replacement ECO engine."""

    def __init__(self, verify: bool = True):
        self.verify = verify

    def rectify(self, impl: Circuit, spec: Circuit) -> RectificationResult:
        """Replace every failing output's cone with its revised clone."""
        started = now()
        work = impl.copy()
        patch = Patch()
        failing = nonequivalent_outputs(work, spec)
        ops = [
            RewireOp(Pin.output(port), spec.outputs[port], from_spec=True)
            for port in failing
        ]
        clone_map = dict(patch.clone_map)
        new_gates = apply_rewires(work, spec, ops, clone_map)
        patch.record(ops, clone_map, new_gates)

        per_output = {port: "cone-replace" for port in failing}
        if self.verify:
            verification = check_equivalence(work, spec)
            if verification.equivalent is not True:
                raise EcoError("cone replacement failed verification: "
                               f"{verification.counterexample}")
        return RectificationResult(
            patched=work,
            patch=patch,
            verified_outputs=tuple(sorted(work.outputs)),
            runtime_seconds=now() - started,
            per_output=per_output,
        )
