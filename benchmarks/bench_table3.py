"""Table 3: rectification impact on design slack.

Regenerates the paper's timing experiment: the four timing-critical
cases (ids 12-15) are rectified by DeltaSyn and by syseco (with its
level-driven rewire selection enabled), then worst slack is measured
against the pre-ECO clock with the load-aware STA substrate.

Shape assertion: syseco's patches degrade slack no more than DeltaSyn's
in aggregate, with no fewer gates saved.
"""

from repro.bench.runner import table3_row
from repro.bench.tables import format_table3


def test_table3(benchmark, timing_cases, publish):
    rows = benchmark.pedantic(
        lambda: [table3_row(timing_cases[cid])
                 for cid in (12, 13, 14, 15)],
        rounds=1, iterations=1)
    publish("table3.txt", format_table3(rows))

    # syseco's patches are never larger in aggregate
    assert sum(r.syseco_gates for r in rows) <= \
        sum(r.deltasyn_gates for r in rows)
    # and its slack impact is no worse in aggregate
    assert sum(r.syseco_slack_ps for r in rows) >= \
        sum(r.deltasyn_slack_ps for r in rows) - 1e-6
    # per case, syseco is within a small margin of DeltaSyn's slack
    for r in rows:
        assert r.syseco_slack_ps >= r.deltasyn_slack_ps - 25.0, r
