"""Table 2: patch attributes from four sources.

Regenerates the paper's headline result: for each of the 11 cases, the
patch inputs/outputs/gates/nets produced by the commercial-tool proxy,
by DeltaSyn and by syseco, next to the designer's estimate — plus the
average reduction ratios of syseco relative to DeltaSyn at the bottom.

Shape assertions (the paper's observations, not absolute numbers):

* syseco's patches have fewer gates and nets than DeltaSyn's on
  average (paper ratios: 0.17 gates / 0.21 nets; the scaled suite
  lands well below 1.0);
* syseco never produces more patch gates than DeltaSyn on any case;
* syseco's patch-output counts do not exceed DeltaSyn's on average
  (paper: roughly half);
* patch sizes track the designer's estimate within a small factor.
"""

from repro.bench.runner import table2_row
from repro.bench.tables import format_table2, reduction_ratios


def test_table2(benchmark, suite_cases, publish):
    rows = benchmark.pedantic(
        lambda: [table2_row(suite_cases[cid]) for cid in range(1, 12)],
        rounds=1, iterations=1)
    publish("table2.txt", format_table2(rows))

    ratios = reduction_ratios(rows)
    assert ratios["gates"] < 0.75, ratios
    assert ratios["nets"] < 0.75, ratios
    assert ratios["outputs"] <= 1.05, ratios

    for r in rows:
        assert r.syseco.gates <= r.deltasyn.gates, r.case_id
        # the crude cone-replacement reference is never the smallest
        assert r.syseco.gates <= r.commercial.gates, r.case_id

    # patch gates track the designer's estimate: within a small
    # multiple on every case (the paper reports the same agreement)
    for r in rows:
        assert r.syseco.gates <= max(6 * r.designer_estimate, 8), (
            r.case_id, r.syseco.gates, r.designer_estimate)

    # aggregate: syseco total patch size is a small fraction of the
    # total implementation logic it patched
    total_gates = sum(r.syseco.gates for r in rows)
    total_estimate = sum(r.designer_estimate for r in rows)
    assert total_gates <= 6 * total_estimate
