"""Figure 3 / Examples 1-2: the sampled H(t) and Xi(c) computations.

Figure 3 depicts ``Xi(c) = forall z, y F(z, y, c)`` computed in the
sampling domain with the inputs overloaded by ``g(z)``.  Examples 1 and
2 give closed forms on the ``GATE``-style word circuit:

    H_k(t1, t2)  = t1^k t2^{n+k}  |  t1^{n+k} t2^k
    Xi_k(c1, c2) = c1^1 | c2^2     for S_1 = (v(0), c, ~c),
                                       S_2 = (v(1), c, ~c)

This bench computes both characteristic functions with the library's
actual machinery (mux augmentation, candidate encoding, sampling-domain
quantification) and asserts BDD-level equality with the closed forms.
"""

import itertools
import math

from repro.bdd.manager import BddManager
from repro.eco.points import PointSelector, compute_h_function
from repro.eco.sampling import SamplingDomain
from repro.netlist.circuit import Pin
from repro.workloads.figures import example1_circuits


def full_domain(circuit):
    inputs = list(circuit.inputs)
    samples = [dict(zip(inputs, bits))
               for bits in itertools.product([False, True],
                                             repeat=len(inputs))]
    return SamplingDomain(BddManager(), samples, inputs)


def test_figure3(benchmark, publish):
    impl, spec = example1_circuits(width=2)
    n = 2

    def run():
        domain = full_domain(impl)
        m = domain.manager
        spec_z = domain.cast_circuit(spec)
        impl_z = domain.cast_circuit(impl)
        report = []

        for k in range(n):
            f_prime = spec_z[spec.outputs[f"w_{k}"]]

            # ---- Example 1: H_k over the 2n select pins -------------
            pins = [Pin.gate(f"q{j}", 1) for j in range(2 * n)]
            y_vars = [m.add_var() for _ in range(2)]
            y_nodes = [m.var(v) for v in y_vars]
            selector = PointSelector(m, 2, len(pins))
            h = compute_h_function(impl, f"w_{k}", domain, pins, y_nodes,
                                   selector=selector)
            h_t = m.and_(
                m.forall(m.exists(m.xnor(h, f_prime), y_vars),
                         domain.z_vars),
                selector.validity())
            closed_h = m.or_(
                m.and_(selector.minterm(0, k), selector.minterm(1, n + k)),
                m.and_(selector.minterm(0, n + k), selector.minterm(1, k)))
            assert h_t == closed_h, f"H_{k} mismatch"
            report.append(f"H_{k}(t1,t2) == t1^{k} t2^{n + k} | "
                          f"t1^{n + k} t2^{k}   OK")

            # ---- Example 2: Xi_k over S_i = (trivial, c, ~c) --------
            from repro.eco.choices import enumerate_rewiring_choices
            from repro.eco.rewiring import RewireCandidate

            c_fn = spec_z["c_new"]
            nc_fn = m.not_(c_fn)

            def cand(net, node, trivial=False):
                return RewireCandidate(net=net, from_spec=not trivial,
                                       utility=0.0, z_function=node,
                                       trivial=trivial)

            pair = (Pin.gate(f"q{k}", 1), Pin.gate(f"q{n + k}", 1))
            s1 = [cand("v0", impl_z["s"], trivial=True),
                  cand("c", c_fn), cand("~c", nc_fn)]
            s2 = [cand("v1", impl_z["v1"], trivial=True),
                  cand("c", c_fn), cand("~c", nc_fn)]
            choices = enumerate_rewiring_choices(
                impl, f"w_{k}", domain, pair, (s1, s2), f_prime,
                limit=16)
            nets = {(a.net, b.net) for a, b in choices}
            # Xi_k = c1^1 | c2^2: every valid choice has point 1 on c
            # or point 2 on ~c, and the paper's R = q_k/c, q_{n+k}/~c
            # is among them
            assert ("c", "~c") in nets, f"Xi_{k} misses the paper's R"
            assert all(a == "c" or b == "~c" for a, b in nets), nets
            report.append(f"Xi_{k}(c1,c2) == c1^1 | c2^2           OK")
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    publish("figure3.txt", "\n".join(
        ["Figure 3 / Examples 1-2 reproduction (symbolic equality):"]
        + [f"  {line}" for line in report]))
