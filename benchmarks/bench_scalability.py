"""Scalability of the rectification search with design size.

The paper's third Table-2 observation: syseco 'scales well on the
larger test cases, where DeltaSyn times out', because the symbolic
computation runs in the sampling domain whose size is independent of
the design.  This bench grows one design family (word gating + control)
across ~an order of magnitude of gate count while keeping the revision
fixed, and reports each engine's runtime and syseco's sampled-BDD
effort, asserting that runtime growth stays moderate (no exponential
blowup in the symbolic core).
"""

import time

from repro.eco.config import EcoConfig
from repro.eco.engine import SysEco
from repro.baselines.deltasyn import DeltaSyn
from repro.synth import optimize_heavy, optimize_light
from repro.workloads.generators import (
    control_design,
    mixed_design,
    word_mux_design,
)
from repro.workloads.revisions import apply_revision


def build_instance(scale: int):
    blocks = [
        ("wm", word_mux_design(n_words=2, width=4 * scale)),
        ("ctl", control_design(n_inputs=6 + 2 * scale,
                               n_outputs=4 * scale,
                               n_terms=6 * scale, seed=scale)),
    ]
    source = mixed_design(blocks, name=f"scale{scale}")
    impl = optimize_heavy(source, seed=scale + 100)
    revised = source.copy()
    apply_revision(revised, "gate-type", seed=3, bias="deep")
    return impl, optimize_light(revised)


def test_scalability(benchmark, publish):
    scales = (1, 2, 4, 8)

    def run():
        rows = []
        for scale in scales:
            impl, spec = build_instance(scale)
            t0 = time.time()
            syseco = SysEco(EcoConfig()).rectify(impl, spec)
            t_sys = time.time() - t0
            t0 = time.time()
            DeltaSyn().rectify(impl, spec)
            t_delta = time.time() - t0
            rows.append({
                "scale": scale,
                "gates": impl.num_gates,
                "syseco_s": t_sys,
                "deltasyn_s": t_delta,
                "patch_gates": syseco.stats().gates,
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Scalability: one family grown ~10x, fixed revision",
             f"{'scale':>6} {'gates':>7} {'syseco,s':>9} "
             f"{'DeltaSyn,s':>11} {'patch gates':>12}"]
    for r in rows:
        lines.append(f"{r['scale']:>6} {r['gates']:>7} "
                     f"{r['syseco_s']:>9.2f} {r['deltasyn_s']:>11.2f} "
                     f"{r['patch_gates']:>12}")
    publish("scalability.txt", "\n".join(lines))

    # every size completes, patches stay small, and runtime growth is
    # polynomial-moderate: a 10x bigger design costs far less than
    # 100x the time of the smallest
    growth = rows[-1]["syseco_s"] / max(rows[0]["syseco_s"], 1e-3)
    size_ratio = rows[-1]["gates"] / rows[0]["gates"]
    assert size_ratio >= 6
    assert growth < size_ratio ** 2
    for r in rows:
        assert r["patch_gates"] <= 8
