"""Ablation C: the rectification-utility heuristic (Section 4.3).

Candidate rewiring nets are ordered by how often they differ from the
pin's current driver across the sampled error domain.  This bench runs
the engine with the ordering on and off and reports patch size and
search effort; the ordered search should reach patches at least as
small without examining more candidates.
"""

from repro.eco.config import EcoConfig
from repro.eco.engine import SysEco

CASE_IDS = (2, 4, 5, 9)


def run_variant(cases, ordered):
    totals = {"gates": 0, "sat_validations": 0, "seconds": 0.0}
    for cid in CASE_IDS:
        case = cases[cid]
        config = EcoConfig(utility_ordering=ordered)
        result = SysEco(config).rectify(case.impl, case.spec)
        totals["gates"] += result.stats().gates
        totals["sat_validations"] += result.counters["sat_validations"]
        totals["seconds"] += result.runtime_seconds
    return totals


def test_ablation_utility(benchmark, suite_cases, publish):
    def run():
        return {
            "utility-ordered": run_variant(suite_cases, True),
            "unordered": run_variant(suite_cases, False),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Ablation C: utility ordering of rewiring candidates "
             "(cases 2, 4, 5, 9)",
             f"{'variant':>16} {'patch gates':>12} "
             f"{'SAT validations':>16} {'seconds':>8}"]
    for name, t in results.items():
        lines.append(f"{name:>16} {t['gates']:>12} "
                     f"{t['sat_validations']:>16} {t['seconds']:>8.2f}")
    publish("ablation_utility.txt", "\n".join(lines))

    ordered = results["utility-ordered"]
    unordered = results["unordered"]
    # the heuristic must not hurt patch quality
    assert ordered["gates"] <= unordered["gates"] + 2
