"""Ablation D: rectification-logic resynthesis (Section 7 future work).

The paper names rectification logic synthesis as the next improvement
to the flow.  This bench measures what the implemented resubstitution
post-pass buys: cloned patch logic re-expressed as single gates over
existing nets, after the standard sweep has already reused exact
duplicates.
"""

from repro.eco.config import EcoConfig
from repro.eco.engine import SysEco

CASE_IDS = (1, 7, 9, 11)


def run_variant(cases, resynthesis):
    totals = {"gates": 0, "nets": 0, "resubs": 0, "seconds": 0.0}
    for cid in CASE_IDS:
        case = cases[cid]
        result = SysEco(EcoConfig(resynthesis=resynthesis)).rectify(
            case.impl, case.spec)
        stats = result.stats()
        totals["gates"] += stats.gates
        totals["nets"] += stats.nets
        totals["resubs"] += result.counters.get("resubstitutions", 0)
        totals["seconds"] += result.runtime_seconds
    return totals


def test_ablation_resynth(benchmark, suite_cases, publish):
    def run():
        return {
            "baseline": run_variant(suite_cases, False),
            "resynthesis": run_variant(suite_cases, True),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Ablation D: rectification-logic resynthesis "
             "(cases 1, 7, 9, 11)",
             f"{'variant':>12} {'patch gates':>12} {'patch nets':>11} "
             f"{'resubs':>7} {'seconds':>8}"]
    for name, t in results.items():
        lines.append(f"{name:>12} {t['gates']:>12} {t['nets']:>11} "
                     f"{t['resubs']:>7} {t['seconds']:>8.2f}")
    publish("ablation_resynth.txt", "\n".join(lines))

    # the post-pass never grows the patch
    assert results["resynthesis"]["gates"] <= results["baseline"]["gates"]
