"""Ablation B: rewiring-net sources (C only, C' only, both).

Proposition 1 draws rectification functions from nets of *either* the
current implementation or the synthesized specification.  This bench
restricts the source set and measures the patch-size cost: using both
sources never loses to either restriction, and implementation-only
rewiring (which can clone nothing) must lean on the output-port
fallback more often.
"""

from repro.eco.config import EcoConfig
from repro.eco.engine import SysEco

CASE_IDS = (2, 5, 9, 10)


def run_sources(cases, use_impl, use_spec):
    totals = {"gates": 0, "nets": 0, "fallbacks": 0}
    for cid in CASE_IDS:
        case = cases[cid]
        config = EcoConfig(use_impl_nets=use_impl, use_spec_nets=use_spec)
        result = SysEco(config).rectify(case.impl, case.spec)
        stats = result.stats()
        totals["gates"] += stats.gates
        totals["nets"] += stats.nets
        totals["fallbacks"] += result.counters["fallbacks"]
    return totals


def test_ablation_sources(benchmark, suite_cases, publish):
    def run():
        return {
            "both": run_sources(suite_cases, True, True),
            "impl-only": run_sources(suite_cases, True, False),
            "spec-only": run_sources(suite_cases, False, True),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Ablation B: rewiring-net sources (cases 2, 5, 9, 10)",
             f"{'sources':>10} {'patch gates':>12} {'patch nets':>11} "
             f"{'fallbacks':>10}"]
    for name, t in results.items():
        lines.append(f"{name:>10} {t['gates']:>12} {t['nets']:>11} "
                     f"{t['fallbacks']:>10}")
    publish("ablation_sources.txt", "\n".join(lines))

    # both sources are at least as good as either restriction
    assert results["both"]["gates"] <= results["impl-only"]["gates"]
    assert results["both"]["gates"] <= results["spec-only"]["gates"] + 2
