"""Figure 1: the motivating sink-rewiring scenario.

The paper's Figure 1 argues that choosing all-but-one sink of nets
``b`` and ``~b`` as rectification points lets the revision ``v(0)=c``,
``v(1)=~c`` be realized while protecting the bystander signal ``d``.
This bench runs the full engine on that scenario and asserts the two
properties the figure illustrates:

* the design is rectified (all word outputs match the revision);
* the protected sink keeps its original driver — ``d`` still reads the
  original net ``b``;
* the patch is far smaller than replacing the revised cones.
"""

from repro.cec.equivalence import check_equivalence
from repro.baselines.conemap import ConeMap
from repro.eco.config import EcoConfig
from repro.eco.engine import SysEco
from repro.workloads.figures import figure1_circuits


def test_figure1(benchmark, publish):
    impl, spec = figure1_circuits(width=4)

    def run():
        return SysEco(EcoConfig(num_samples=8, max_points=2)).rectify(
            impl, spec)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert check_equivalence(result.patched, spec).equivalent is True

    # the bystander keeps reading the original net
    d_cone_driver = result.patched.outputs["d"]
    assert d_cone_driver == impl.outputs["d"]
    assert result.patched.gates["dnet"].fanins == ["b", "u"]

    # rewiring beats cone replacement by a wide margin
    cone = ConeMap().rectify(impl, spec)
    stats = result.stats()
    cone_stats = cone.stats()
    assert stats.gates < cone_stats.gates / 2

    lines = [
        "Figure 1 reproduction: rewiring the sinks of b / ~b",
        f"  rewires committed : {len(result.patch.ops)}",
        f"  patch (in/out/g/n): {stats.inputs}/{stats.outputs}/"
        f"{stats.gates}/{stats.nets}",
        f"  cone-replacement  : {cone_stats.inputs}/{cone_stats.outputs}/"
        f"{cone_stats.gates}/{cone_stats.nets}",
        "  protected signal d : driver unchanged",
        "  committed rewires:",
    ]
    lines += [f"    {op.describe()}" for op in result.patch.ops]
    publish("figure1.txt", "\n".join(lines))
