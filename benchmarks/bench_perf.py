"""Microbenchmarks of the performance machinery (docs/performance.md).

Hot paths, each timed against the reference it replaced:

* **simulation** — patterns/sec through the compiled multi-word plan
  vs the per-gate dictionary walk (forced via ``order=``);
* **vector simulation** — patterns/sec through the numpy level-batched
  kernel (``run_lanes``) vs the pure-Python plan interpreter on a
  20k-gate DAG, interleaved min-of-N timing (skipped without numpy);
* **SAT** — propagations/sec of the flat-arena solver on a pigeonhole
  instance, plus the learned-clause reduction (mark + lazy unhook)
  timed on a synthetic 20k-clause database;
* **validation** — candidates/sec through the persistent incremental
  miter vs the copy-and-re-encode ``validate_rewire`` path, with a
  verdict-parity sanity check on every candidate.

The rendered table and JSON twin land in ``benchmarks/results/`` via
the shared publisher, and a traced engine run (incremental validation
on) is pushed into the run store so the CI perf-smoke job can gate
wall time / SAT / outcome with ``repro runs regress --baseline``.
``--quick`` shrinks every workload to CI-smoke size.
"""

import random
import time

import pytest

from repro.cec.equivalence import nonequivalent_outputs
from repro.netlist import simd
from repro.netlist.circuit import Pin
from repro.netlist.simulate import (
    batch_mask,
    compiled_plan,
    random_patterns,
    simulate_words,
)
from repro.netlist.traverse import topological_order
from repro.sat.solver import Solver
from repro.workloads.generators import random_dag
from repro.eco.config import EcoConfig
from repro.eco.incremental import IncrementalValidator
from repro.eco.patch import RewireOp
from repro.eco.validate import validate_rewire
from repro.bench.runner import traced_case_run

#: mid-size suite case: large enough that per-candidate re-encoding
#: dominates, small enough for a CI smoke job
PERF_CASE = 4
SIM_ROUNDS = 32
CANDIDATES = 20


def _candidate_ops(impl, spec, port, count, seed=11):
    """Deterministic spec-sourced rewires inside the failing cone."""
    rng = random.Random(seed)
    cone = topological_order(impl, roots=[impl.outputs[port]])
    pins = [Pin.gate(g, 0) for g in cone[-8:]] + [Pin.output(port)]
    spec_nets = (topological_order(spec, roots=[spec.outputs[port]])
                 + list(spec.inputs))
    return pins, [
        [RewireOp(pin=rng.choice(pins), source_net=rng.choice(spec_nets),
                  from_spec=True)]
        for _ in range(count)
    ]


def test_perf_simulation(benchmark, suite_cases, publish):
    impl = suite_cases[PERF_CASE].impl
    rng = random.Random(7)
    word_sets = [random_patterns(impl.inputs, rng)
                 for _ in range(SIM_ROUNDS)]
    order = list(topological_order(impl))

    def measure():
        t0 = time.perf_counter()
        reference = [simulate_words(impl, words, order)
                     for words in word_sets]
        t1 = time.perf_counter()
        batched = {n: 0 for n in impl.inputs}
        for r, words in enumerate(word_sets):
            for name, word in words.items():
                batched[name] |= word << (64 * r)
        plan = compiled_plan(impl)
        values = plan.run_dict(batched, mask=batch_mask(SIM_ROUNDS))
        t2 = time.perf_counter()
        # sanity: lane 0 of the batch equals the first reference round
        for net, value in reference[0].items():
            assert values[net] & ((1 << 64) - 1) == value
        return t1 - t0, t2 - t1

    walk_s, plan_s = benchmark.pedantic(measure, rounds=1, iterations=1)
    patterns = SIM_ROUNDS * 64
    data = {
        "bench": "perf_simulation",
        "case_id": PERF_CASE,
        "gates": len(impl.gates),
        "patterns": patterns,
        "dict_walk_patterns_per_s": patterns / walk_s,
        "plan_patterns_per_s": patterns / plan_s,
        "speedup": walk_s / plan_s,
    }
    publish("perf_simulation.txt", (
        f"perf: simulation, case {PERF_CASE} "
        f"({len(impl.gates)} gates, {patterns} patterns)\n"
        f"  dict walk     : {data['dict_walk_patterns_per_s']:>12.0f} "
        f"patterns/s\n"
        f"  compiled plan : {data['plan_patterns_per_s']:>12.0f} "
        f"patterns/s\n"
        f"  speedup       : {data['speedup']:.2f}x"), data=data)
    assert data["speedup"] > 1.0


def test_perf_vector_sim(benchmark, publish, quick):
    """Level-batched numpy kernel vs the pure-Python plan interpreter.

    Both paths run interleaved and the minimum of N repeats is kept —
    single-core steal-time noise otherwise dominates the ratio.  The
    vector side is timed on the array path (``run_lanes``): that is
    what the batched candidate screen consumes; the bignum conversion
    of ``run`` is a separate, fixed cost.
    """
    if not simd.HAVE_NUMPY:
        pytest.skip("numpy not installed (repro[perf])")
    n_gates = 4000 if quick else 20000
    repeats = 3 if quick else 5
    width = 4
    circuit = random_dag(n_inputs=64, n_gates=n_gates, n_outputs=32,
                         seed=5)
    rng = random.Random(7)
    words = {n: 0 for n in circuit.inputs}
    for r in range(width):
        for name, word in random_patterns(circuit.inputs, rng).items():
            words[name] |= word << (64 * r)
    plan = compiled_plan(circuit)
    mask = batch_mask(width)

    def measure():
        previous = simd.set_backend("python")
        try:
            python_s = vector_s = float("inf")
            reference = None
            for _ in range(repeats):
                t0 = time.perf_counter()
                reference = plan.run(words, mask=mask)
                python_s = min(python_s, time.perf_counter() - t0)
                t0 = time.perf_counter()
                lanes = plan.run_lanes(words, width)
                vector_s = min(vector_s, time.perf_counter() - t0)
            # bit-identity spot check on the last repeat
            for i in (0, len(reference) // 2, len(reference) - 1):
                assert simd.lanes_to_int(lanes[i]) == reference[i]
            return python_s, vector_s
        finally:
            simd.set_backend(previous)

    python_s, vector_s = benchmark.pedantic(measure, rounds=1,
                                            iterations=1)
    patterns = width * 64
    data = {
        "bench": "perf_vector_sim",
        "gates": n_gates,
        "width_words": width,
        "patterns": patterns,
        "python_patterns_per_s": patterns / python_s,
        "vector_patterns_per_s": patterns / vector_s,
        "speedup": python_s / vector_s,
    }
    publish("perf_vector_sim.txt", (
        f"perf: vector simulation, {n_gates} gates, "
        f"{patterns} patterns (W={width})\n"
        f"  python plan  : {data['python_patterns_per_s']:>12.0f} "
        f"patterns/s\n"
        f"  numpy kernel : {data['vector_patterns_per_s']:>12.0f} "
        f"patterns/s\n"
        f"  speedup      : {data['speedup']:.2f}x"), data=data)
    assert data["speedup"] > 1.0


def _pigeonhole_solver(pigeons, holes):
    s = Solver()
    v = [[s.new_var() for _ in range(holes)] for _ in range(pigeons)]
    for p in range(pigeons):
        s.add_clause(v[p])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                s.add_clause([-v[p1][h], -v[p2][h]])
    return s


def test_perf_sat(benchmark, publish, quick):
    """Propagation throughput and learned-clause reduction cost of the
    flat-arena solver."""
    pigeons = 7 if quick else 8
    n_learnts = 5000 if quick else 20000

    def measure():
        s = _pigeonhole_solver(pigeons, pigeons - 1)
        t0 = time.perf_counter()
        verdict = s.solve()
        solve_s = time.perf_counter() - t0
        assert verdict == "unsat"

        # reduction: synthetic learnt DB, activities spread, watchers
        # attached — the mark pass plus amortized compaction
        rng = random.Random(1)
        r = Solver()
        vs = [r.new_var() for _ in range(300)]
        for _ in range(1000):
            r.add_clause([rng.choice(vs) * rng.choice((1, -1))
                          for _ in range(3)])
        for _ in range(n_learnts):
            lits = list({((rng.randrange(300)) << 1) | rng.randrange(2)
                         for _ in range(rng.randrange(3, 8))})
            if len(lits) < 3:
                continue
            offset = r._alloc(lits, learnt=True)
            r._cla_act[offset] = rng.random()
            r._learnts.append(offset)
            r._attach(offset)
        t0 = time.perf_counter()
        r._reduce_db()
        reduce_s = time.perf_counter() - t0
        return solve_s, s.propagations, reduce_s

    solve_s, propagations, reduce_s = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    data = {
        "bench": "perf_sat",
        "pigeons": pigeons,
        "propagations": propagations,
        "props_per_s": propagations / solve_s,
        "learnts": n_learnts,
        "reduce_db_ms": reduce_s * 1000,
    }
    publish("perf_sat.txt", (
        f"perf: SAT, pigeonhole({pigeons},{pigeons - 1}) + "
        f"{n_learnts}-clause reduction\n"
        f"  propagation : {data['props_per_s']:>12.0f} props/s\n"
        f"  reduce_db   : {data['reduce_db_ms']:>12.1f} ms"),
        data=data)
    assert data["props_per_s"] > 0


def test_perf_validation(benchmark, suite_cases, publish):
    case = suite_cases[PERF_CASE]
    impl, spec = case.impl, case.spec
    failing = nonequivalent_outputs(impl, spec)
    port = failing[0]
    pins, candidates = _candidate_ops(impl, spec, port, CANDIDATES)

    def measure():
        t0 = time.perf_counter()
        legacy = [validate_rewire(impl, spec, ops, failing, {})
                  for ops in candidates]
        t1 = time.perf_counter()
        validator = IncrementalValidator(impl, spec, pins)
        incremental = [validator.validate(ops, failing, {})
                       for ops in candidates]
        t2 = time.perf_counter()
        for leg, inc in zip(legacy, incremental):
            assert inc.valid == leg.valid and inc.fixed == leg.fixed
        return t1 - t0, t2 - t1

    legacy_s, incremental_s = benchmark.pedantic(measure, rounds=1,
                                                 iterations=1)
    data = {
        "bench": "perf_validation",
        "case_id": PERF_CASE,
        "candidates": CANDIDATES,
        "legacy_candidates_per_s": CANDIDATES / legacy_s,
        "incremental_candidates_per_s": CANDIDATES / incremental_s,
        "speedup": legacy_s / incremental_s,
    }
    publish("perf_validation.txt", (
        f"perf: validation, case {PERF_CASE} "
        f"({CANDIDATES} candidates on output {port!r})\n"
        f"  legacy (copy + re-encode) : "
        f"{data['legacy_candidates_per_s']:>8.1f} candidates/s\n"
        f"  incremental (assumptions) : "
        f"{data['incremental_candidates_per_s']:>8.1f} candidates/s\n"
        f"  speedup                   : {data['speedup']:.2f}x"),
        data=data)
    assert data["speedup"] > 1.0


def test_perf_engine_run(benchmark, suite_cases, publish):
    """One traced end-to-end run, published for the regress gate."""
    case = suite_cases[PERF_CASE]
    result, record = benchmark.pedantic(
        lambda: traced_case_run(case, EcoConfig(seed=3), kind="perf"),
        rounds=1, iterations=1)
    counters = result.counters.as_dict()
    data = {
        "bench": "perf_engine_run",
        "case_id": PERF_CASE,
        "wall_seconds": benchmark.stats.stats.mean,
        "incremental_solves": counters["incremental_solves"],
        "encode_cache_hits": counters["encode_cache_hits"],
        "plan_evals": counters["plan_evals"],
        "per_output": dict(result.per_output),
    }
    publish("perf_engine_run.txt", (
        f"perf: engine run, case {PERF_CASE} "
        f"({benchmark.stats.stats.mean:.2f}s)\n"
        f"  incremental_solves : {data['incremental_solves']}\n"
        f"  encode_cache_hits  : {data['encode_cache_hits']}\n"
        f"  plan_evals         : {data['plan_evals']}"),
        data=data, run_records=[record])
    assert data["incremental_solves"] > 0
    assert data["plan_evals"] > 0
