"""Microbenchmarks of the performance machinery (docs/performance.md).

Two hot paths, each timed against the legacy reference it replaced:

* **simulation** — patterns/sec through the compiled multi-word plan
  vs the per-gate dictionary walk (forced via ``order=``);
* **validation** — candidates/sec through the persistent incremental
  miter vs the copy-and-re-encode ``validate_rewire`` path, with a
  verdict-parity sanity check on every candidate.

The rendered table and JSON twin land in ``benchmarks/results/`` via
the shared publisher, and a traced engine run (incremental validation
on) is pushed into the run store so the CI perf-smoke job can gate
wall time / SAT / outcome with ``repro runs regress --baseline``.
"""

import random
import time

from repro.cec.equivalence import nonequivalent_outputs
from repro.netlist.circuit import Pin
from repro.netlist.simulate import (
    batch_mask,
    compiled_plan,
    random_patterns,
    simulate_words,
)
from repro.netlist.traverse import topological_order
from repro.eco.config import EcoConfig
from repro.eco.incremental import IncrementalValidator
from repro.eco.patch import RewireOp
from repro.eco.validate import validate_rewire
from repro.bench.runner import traced_case_run

#: mid-size suite case: large enough that per-candidate re-encoding
#: dominates, small enough for a CI smoke job
PERF_CASE = 4
SIM_ROUNDS = 32
CANDIDATES = 20


def _candidate_ops(impl, spec, port, count, seed=11):
    """Deterministic spec-sourced rewires inside the failing cone."""
    rng = random.Random(seed)
    cone = topological_order(impl, roots=[impl.outputs[port]])
    pins = [Pin.gate(g, 0) for g in cone[-8:]] + [Pin.output(port)]
    spec_nets = (topological_order(spec, roots=[spec.outputs[port]])
                 + list(spec.inputs))
    return pins, [
        [RewireOp(pin=rng.choice(pins), source_net=rng.choice(spec_nets),
                  from_spec=True)]
        for _ in range(count)
    ]


def test_perf_simulation(benchmark, suite_cases, publish):
    impl = suite_cases[PERF_CASE].impl
    rng = random.Random(7)
    word_sets = [random_patterns(impl.inputs, rng)
                 for _ in range(SIM_ROUNDS)]
    order = list(topological_order(impl))

    def measure():
        t0 = time.perf_counter()
        reference = [simulate_words(impl, words, order)
                     for words in word_sets]
        t1 = time.perf_counter()
        batched = {n: 0 for n in impl.inputs}
        for r, words in enumerate(word_sets):
            for name, word in words.items():
                batched[name] |= word << (64 * r)
        plan = compiled_plan(impl)
        values = plan.run_dict(batched, mask=batch_mask(SIM_ROUNDS))
        t2 = time.perf_counter()
        # sanity: lane 0 of the batch equals the first reference round
        for net, value in reference[0].items():
            assert values[net] & ((1 << 64) - 1) == value
        return t1 - t0, t2 - t1

    walk_s, plan_s = benchmark.pedantic(measure, rounds=1, iterations=1)
    patterns = SIM_ROUNDS * 64
    data = {
        "bench": "perf_simulation",
        "case_id": PERF_CASE,
        "gates": len(impl.gates),
        "patterns": patterns,
        "dict_walk_patterns_per_s": patterns / walk_s,
        "plan_patterns_per_s": patterns / plan_s,
        "speedup": walk_s / plan_s,
    }
    publish("perf_simulation.txt", (
        f"perf: simulation, case {PERF_CASE} "
        f"({len(impl.gates)} gates, {patterns} patterns)\n"
        f"  dict walk     : {data['dict_walk_patterns_per_s']:>12.0f} "
        f"patterns/s\n"
        f"  compiled plan : {data['plan_patterns_per_s']:>12.0f} "
        f"patterns/s\n"
        f"  speedup       : {data['speedup']:.2f}x"), data=data)
    assert data["speedup"] > 1.0


def test_perf_validation(benchmark, suite_cases, publish):
    case = suite_cases[PERF_CASE]
    impl, spec = case.impl, case.spec
    failing = nonequivalent_outputs(impl, spec)
    port = failing[0]
    pins, candidates = _candidate_ops(impl, spec, port, CANDIDATES)

    def measure():
        t0 = time.perf_counter()
        legacy = [validate_rewire(impl, spec, ops, failing, {})
                  for ops in candidates]
        t1 = time.perf_counter()
        validator = IncrementalValidator(impl, spec, pins)
        incremental = [validator.validate(ops, failing, {})
                       for ops in candidates]
        t2 = time.perf_counter()
        for leg, inc in zip(legacy, incremental):
            assert inc.valid == leg.valid and inc.fixed == leg.fixed
        return t1 - t0, t2 - t1

    legacy_s, incremental_s = benchmark.pedantic(measure, rounds=1,
                                                 iterations=1)
    data = {
        "bench": "perf_validation",
        "case_id": PERF_CASE,
        "candidates": CANDIDATES,
        "legacy_candidates_per_s": CANDIDATES / legacy_s,
        "incremental_candidates_per_s": CANDIDATES / incremental_s,
        "speedup": legacy_s / incremental_s,
    }
    publish("perf_validation.txt", (
        f"perf: validation, case {PERF_CASE} "
        f"({CANDIDATES} candidates on output {port!r})\n"
        f"  legacy (copy + re-encode) : "
        f"{data['legacy_candidates_per_s']:>8.1f} candidates/s\n"
        f"  incremental (assumptions) : "
        f"{data['incremental_candidates_per_s']:>8.1f} candidates/s\n"
        f"  speedup                   : {data['speedup']:.2f}x"),
        data=data)
    assert data["speedup"] > 1.0


def test_perf_engine_run(benchmark, suite_cases, publish):
    """One traced end-to-end run, published for the regress gate."""
    case = suite_cases[PERF_CASE]
    result, record = benchmark.pedantic(
        lambda: traced_case_run(case, EcoConfig(seed=3), kind="perf"),
        rounds=1, iterations=1)
    counters = result.counters.as_dict()
    data = {
        "bench": "perf_engine_run",
        "case_id": PERF_CASE,
        "wall_seconds": benchmark.stats.stats.mean,
        "incremental_solves": counters["incremental_solves"],
        "encode_cache_hits": counters["encode_cache_hits"],
        "plan_evals": counters["plan_evals"],
        "per_output": dict(result.per_output),
    }
    publish("perf_engine_run.txt", (
        f"perf: engine run, case {PERF_CASE} "
        f"({benchmark.stats.stats.mean:.2f}s)\n"
        f"  incremental_solves : {data['incremental_solves']}\n"
        f"  encode_cache_hits  : {data['encode_cache_hits']}\n"
        f"  plan_evals         : {data['plan_evals']}"),
        data=data, run_records=[record])
    assert data["incremental_solves"] > 0
    assert data["plan_evals"] > 0
