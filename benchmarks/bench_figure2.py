"""Figure 2: parameterized rectification-point selection.

The figure shows the multiplexer construction realizing the selection
of pin ``q_2`` by the minterm ``t_i^2 = ~t_i0 & t_i1`` (big-endian code
of 2 over two bits is '10', i.e. t_i0=1 — the paper's figure labels the
complemented bit first; what matters and is asserted here is the exact
minterm semantics and the mux realization):

    out(pin) = ite(sel_j, data1_j, original)
    sel_j    = t_1^j | ... | t_m^j
    data1_j  = (t_1^j -> y_1) & ... & (t_m^j -> y_m)

For three rectification points over four pins, the bench verifies on
the BDD level that selecting pin ``q_2`` for point ``i`` forces the pin
function to ``y_i``, that non-selecting codes keep the original
function, and that multiple selections of the same pin merge.
"""

import itertools

from repro.bdd.manager import BddManager
from repro.eco.points import PointSelector


def test_figure2(benchmark, publish):
    def build():
        m = BddManager()
        orig = m.var(m.add_var())
        ys = [m.var(m.add_var()) for _ in range(3)]
        selector = PointSelector(m, num_points=3, num_pins=4)
        sel = selector.selection(2)
        data1 = selector.data1(2, ys)
        wired = m.ite(sel, data1, orig)
        return m, orig, ys, selector, wired

    m, orig, ys, selector, wired = benchmark.pedantic(
        build, rounds=1, iterations=1)

    def env(t_codes, orig_v, y_vals):
        assignment = {m.top_var(orig): orig_v}
        for y, v in zip(ys, y_vals):
            assignment[m.top_var(y)] = v
        for i, code in enumerate(t_codes):
            word = selector.t_vars[i]
            for b, var in enumerate(word):
                assignment[var] = bool((code >> (len(word) - 1 - b)) & 1)
        return assignment

    checks = 0
    for i in range(3):
        # point i selects pin 2, the others select pin 0
        codes = [2 if j == i else 0 for j in range(3)]
        for orig_v in (False, True):
            for y_vals in itertools.product([False, True], repeat=3):
                got = m.evaluate(wired, env(codes, orig_v, y_vals))
                assert got == y_vals[i], (i, orig_v, y_vals)
                checks += 1

    # no point selects pin 2: the original function flows through
    for orig_v in (False, True):
        got = m.evaluate(wired, env([0, 1, 3], orig_v,
                                    (True, True, True)))
        assert got == orig_v
        checks += 1

    # two points select pin 2 simultaneously: consistent y values pass
    got = m.evaluate(wired, env([2, 2, 0], False, (True, True, False)))
    assert got is True
    checks += 1

    publish("figure2.txt", "\n".join([
        "Figure 2 reproduction: parameterized pin selection via t-minterms",
        "  3 rectification points, 4 candidate pins, pin q2 checked",
        f"  point evaluations verified: {checks}",
        "  t_i^2 selects q2 for point i; unselected codes pass the",
        "  original function through; double selection merges.",
    ]))
