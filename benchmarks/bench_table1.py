"""Table 1: characteristics of the ECO test cases.

Regenerates the paper's Table 1 on the scaled suite: input/output/gate/
net/sink counts plus revised-output counts and percentages.  The shape
assertions check the properties the paper's suite exhibits: over an
order of magnitude of size spread and revised fractions from a few
percent to roughly half of the outputs.
"""

import dataclasses

from repro.bench.runner import lint_screen_stats, table1_row
from repro.bench.tables import format_table1

#: cases whose rectification is cheap enough to characterize the
#: static patch screen alongside the (otherwise engine-free) table
LINT_SCREEN_CASES = (2, 4, 5)


def test_table1(benchmark, suite_cases, publish):
    rows = benchmark.pedantic(
        lambda: [table1_row(suite_cases[cid]) for cid in range(1, 12)],
        rounds=1, iterations=1)
    run_records = []
    screen_stats = [lint_screen_stats(suite_cases[cid],
                                      run_records=run_records)
                    for cid in LINT_SCREEN_CASES]
    publish("table1.txt", format_table1(rows), data={
        "table": "table1",
        "wall_seconds": benchmark.stats.stats.mean,
        "rows": [dataclasses.asdict(r) for r in rows],
        "lint_screen": screen_stats,
    }, run_records=run_records)

    gates = [r.gates for r in rows]
    # size spread: largest case well over an order of magnitude above
    # the smallest (paper: 313 .. 379,784 gates)
    assert max(gates) / min(gates) > 10
    # cases 1 and 3 are the two largest, as in the paper
    by_size = sorted(rows, key=lambda r: -r.gates)
    assert {by_size[0].case_id, by_size[1].case_id} == {1, 3}
    # revised fractions span under 5% up to over 30%
    fractions = [r.revised_percent for r in rows]
    assert min(fractions) < 5.0
    assert max(fractions) > 30.0
    # every case has at least one revised output
    assert all(r.revised_outputs >= 1 for r in rows)
