"""Ablation A: sampling-domain size and error bias.

Section 5.1 claims (i) the domain size trades precision for complexity
and (ii) error-domain samples yield fewer false positives than uniform
ones.  This bench rectifies a fixed subset of suite cases while varying
``num_samples`` and ``error_bias``, reporting the engine telemetry:

* simulation-screen rejects = sampled candidates that were false
  positives on the full domain (the precision proxy);
* SAT validations and wall-clock time (the cost proxy).
"""

from repro.eco.config import EcoConfig
from repro.eco.engine import SysEco

CASE_IDS = (2, 5, 9)


def run_config(cases, **kwargs):
    totals = {"sim_rejects": 0, "sat_validations": 0, "gates": 0,
              "seconds": 0.0}
    for cid in CASE_IDS:
        case = cases[cid]
        result = SysEco(EcoConfig(**kwargs)).rectify(case.impl, case.spec)
        totals["sim_rejects"] += result.counters["sim_rejects"]
        totals["sat_validations"] += result.counters["sat_validations"]
        totals["gates"] += result.stats().gates
        totals["seconds"] += result.runtime_seconds
    return totals


def test_ablation_sampling_size(benchmark, suite_cases, publish):
    sizes = (4, 8, 16, 32)

    def run():
        return {n: run_config(suite_cases, num_samples=n) for n in sizes}

    by_size = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Ablation A1: sampling-domain size N (cases 2, 5, 9)",
             f"{'N':>4} {'false-pos rejects':>18} {'SAT validations':>16} "
             f"{'patch gates':>12} {'seconds':>8}"]
    for n in sizes:
        t = by_size[n]
        lines.append(f"{n:>4} {t['sim_rejects']:>18} "
                     f"{t['sat_validations']:>16} {t['gates']:>12} "
                     f"{t['seconds']:>8.2f}")
    publish("ablation_sampling_size.txt", "\n".join(lines))

    # larger domains are at least as precise: no more false positives
    # with N=32 than with N=4, and every size still rectifies
    assert by_size[32]["sim_rejects"] <= by_size[4]["sim_rejects"]
    assert all(by_size[n]["gates"] >= 0 for n in sizes)


def test_ablation_error_bias(benchmark, suite_cases, publish):
    biases = (0.0, 0.5, 1.0)

    def run():
        return {b: run_config(suite_cases, num_samples=8, error_bias=b)
                for b in biases}

    by_bias = benchmark.pedantic(run, rounds=1, iterations=1)

    def reject_rate(t):
        examined = t["sim_rejects"] + t["sat_validations"]
        return t["sim_rejects"] / examined if examined else 0.0

    lines = ["Ablation A2: error-domain bias of the samples "
             "(cases 2, 5, 9; N=8)",
             f"{'bias':>5} {'false-pos rejects':>18} "
             f"{'SAT validations':>16} {'patch gates':>12} "
             f"{'reject rate':>12}"]
    for b in biases:
        t = by_bias[b]
        lines.append(f"{b:>5.1f} {t['sim_rejects']:>18} "
                     f"{t['sat_validations']:>16} {t['gates']:>12} "
                     f"{reject_rate(t):>12.3f}")
    publish("ablation_error_bias.txt", "\n".join(lines))

    # the paper's recommendation: error-biased domains make the search
    # more precise — a smaller fraction of sampled candidates turn out
    # to be false positives on the full domain
    assert reject_rate(by_bias[1.0]) <= reject_rate(by_bias[0.0]) + 0.01
