"""Shared fixtures for the benchmark harness.

Suite cases are built once per session; every bench file that needs a
case pulls it from here.  Rendered tables are written to
``benchmarks/results/`` so EXPERIMENTS.md can reference one canonical
set of numbers.
"""

from __future__ import annotations

import os
from typing import Dict

import pytest

from repro.workloads.suite import (
    EcoCase,
    build_case,
    build_timing_case,
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def pytest_addoption(parser):
    parser.addoption(
        "--quick", action="store_true", default=False,
        help="shrink bench workloads (smaller circuits, fewer rounds) "
             "for the CI perf-smoke job")


@pytest.fixture(scope="session")
def quick(request) -> bool:
    """True under ``--quick``: CI smoke sizing instead of full runs."""
    return request.config.getoption("--quick")


@pytest.fixture(scope="session")
def suite_cases() -> Dict[int, EcoCase]:
    """All 11 Table-1/2 cases, built once."""
    return {cid: build_case(cid) for cid in range(1, 12)}


@pytest.fixture(scope="session")
def timing_cases() -> Dict[int, EcoCase]:
    """The 4 Table-3 cases, built once."""
    return {cid: build_timing_case(cid) for cid in (12, 13, 14, 15)}


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def publish(results_dir):
    """Callable that prints a rendered table and persists it.

    Delegates to :func:`repro.bench.runner.publish`: when ``data`` is
    given, a machine-readable JSON twin is written next to the text
    file (``table1.txt`` -> ``table1.json``) so result tracking across
    runs doesn't have to re-parse rendered tables, and any
    ``run_records`` land in the persistent run store
    (``$REPRO_RUN_STORE`` or ``.repro/runs``, see ``repro runs``).
    """
    from repro.bench.runner import publish as publish_results

    def _publish(name: str, text: str, data=None,
                 run_records=()) -> None:
        print()
        print(text)
        publish_results(name, text, data=data, results_dir=results_dir,
                        run_records=run_records)

    return _publish
