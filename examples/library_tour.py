"""A tour of the substrate libraries underneath the ECO engine.

Shows the pieces a downstream user can take independently of the ECO
flow: the netlist model with BLIF round-tripping, 64-way parallel
simulation, the ROBDD package (quantification, prime cubes, counting),
the CDCL SAT solver, SAT sweeping and static timing.

Run:  python examples/library_tour.py
"""

from repro.bdd import Bdd, BddManager, enumerate_primes
from repro.cec import check_equivalence, sweep_equivalent_nets
from repro.netlist import (
    Circuit,
    circuit_stats,
    dumps_blif,
    loads_blif,
    simulate,
)
from repro.sat import SAT, Solver
from repro.timing import analyze, critical_path


def netlist_demo() -> Circuit:
    print("== netlist: build, simulate, BLIF round-trip ==")
    c = Circuit("demo")
    a, b, cin = c.add_inputs(["a", "b", "cin"])
    axb = c.xor(a, b, name="axb")
    c.set_output("sum", c.xor(axb, cin, name="s"))
    g = c.and_(a, b, name="g")
    p = c.and_(axb, cin, name="p")
    c.set_output("carry", c.or_(g, p, name="cout"))
    print(f"  built {circuit_stats(c)}")

    values = simulate(c, {"a": True, "b": True, "cin": False})
    print(f"  1+1+0 -> sum={int(values['s'])} carry={int(values['cout'])}")

    text = dumps_blif(c)
    back = loads_blif(text)
    assert check_equivalence(c, back).equivalent is True
    print(f"  BLIF round-trip verified ({len(text.splitlines())} lines)")
    return c


def bdd_demo() -> None:
    print("\n== BDD package: operators, quantifiers, primes ==")
    m = BddManager(4)
    a, b, c, d = (Bdd.variable(m, i) for i in range(4))
    f = (a & b) | (c & d)
    print(f"  f = ab + cd: {f.size()} nodes, "
          f"{f.satcount()} / 16 satisfying assignments")
    print(f"  exists(a, f) satcount: {f.exists([0]).satcount()}")
    primes = list(enumerate_primes(m, f.node))
    print(f"  prime implicants: {primes}")


def sat_demo() -> None:
    print("\n== SAT solver: incremental solving under assumptions ==")
    s = Solver()
    x, y, z = s.new_var(), s.new_var(), s.new_var()
    s.add_clause([x, y, z])
    s.add_clause([-x, -y])
    status = s.solve(assumptions=[-z])
    assert status == SAT
    print(f"  model under ~z: x={s.model_value(x)} y={s.model_value(y)}")
    print(f"  under ~z,~x,~y: {s.solve(assumptions=[-z, -x, -y])}")


def sweep_and_timing_demo(c: Circuit) -> None:
    print("\n== sweeping and timing ==")
    # duplicate some logic, then let the sweeper find it
    dup = c.copy()
    redundant = dup.and_("a", "b", name="g_dup")
    dup.set_output("dup", redundant)
    swept, merges = sweep_equivalent_nets(dup)
    print(f"  sweeper merged {merges} duplicate net(s): "
          f"{dup.num_gates} -> {swept.num_gates} gates")

    report = analyze(c)
    path = critical_path(c)
    print(f"  critical path ({report.max_arrival:.1f} ps): "
          + " -> ".join(path))


def main() -> None:
    c = netlist_demo()
    bdd_demo()
    sat_demo()
    sweep_and_timing_demo(c)


if __name__ == "__main__":
    main()
