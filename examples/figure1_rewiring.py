"""The paper's Figure 1: rectification by rewiring multi-sink nets.

The implementation drives word gates from ``v(0) = b`` and
``v(1) = ~b``; the revision introduces ``c = a & b`` and redefines
``v(0) = c``, ``v(1) = ~c`` — but a bystander signal ``d`` still reads
``b`` and must be preserved.  Selecting rectification points at the
*sinks* of ``b`` / ``~b`` (all but the protected one) repairs the word
outputs without touching ``d``; selecting points past the sinks would
force a much larger patch.

The example runs syseco and the cone-replacement baseline side by side
to show exactly that gap.

Run:  python examples/figure1_rewiring.py
"""

from repro import EcoConfig, SysEco, check_equivalence
from repro.baselines import ConeMap
from repro.workloads.figures import figure1_circuits


def main() -> None:
    impl, spec = figure1_circuits(width=4)
    print(f"implementation: {impl}")
    print(f"revised spec  : {spec}")

    result = SysEco(EcoConfig(num_samples=8, max_points=2)).rectify(
        impl, spec)
    assert check_equivalence(result.patched, spec).equivalent is True

    print("\nsyseco rewires:")
    for op in result.patch.ops:
        print(f"  {op.describe()}")
    stats = result.stats()
    print(f"syseco patch: inputs={stats.inputs} outputs={stats.outputs} "
          f"gates={stats.gates} nets={stats.nets}")

    # the protected signal d keeps its original connection to b
    d_gate = result.patched.gates["dnet"]
    print(f"\nprotected signal d still reads: {d_gate.fanins}")
    assert d_gate.fanins == ["b", "u"]

    cone = ConeMap().rectify(impl, spec)
    c_stats = cone.stats()
    print(f"\ncone-replacement patch for the same ECO: "
          f"inputs={c_stats.inputs} outputs={c_stats.outputs} "
          f"gates={c_stats.gates} nets={c_stats.nets}")
    print(f"rewiring saves {c_stats.gates - stats.gates} gates "
          f"({stats.gates}/{c_stats.gates}).")


if __name__ == "__main__":
    main()
