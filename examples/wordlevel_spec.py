"""Authoring a specification with the word-level API, then an ECO.

Builds a small saturating-accumulator-style datapath with the
:mod:`repro.netlist.wordlevel` helpers, plays the industrial flow
(heavy synthesis -> revision -> light synthesis), and prints the
engine's full rectification report.

Run:  python examples/wordlevel_spec.py
"""

from repro import Circuit, EcoConfig, SysEco, check_equivalence
from repro.eco.report import format_patch_report
from repro.netlist.wordlevel import constant_word, input_word
from repro.synth import optimize_heavy, optimize_light
from repro.workloads.revisions import apply_revision

WIDTH = 4


def build_spec() -> Circuit:
    """out = sel ? (a + b) : (a & mask); flag = (a == b)."""
    c = Circuit("datapath")
    a = input_word(c, "a", WIDTH)
    b = input_word(c, "b", WIDTH)
    sel = c.add_input("sel")

    total, carry = a.add(b)
    mask = constant_word(c, 0b0110, WIDTH)
    masked = a & mask

    result = masked.mux(sel, total)   # sel ? total : masked
    result.outputs("out")
    c.set_output("overflow", carry)
    c.set_output("eq", a.equals(b))
    return c


def main() -> None:
    spec_source = build_spec()
    impl = optimize_heavy(spec_source, seed=404)
    print(f"spec: {spec_source}")
    print(f"impl: {impl} (heavy synthesis)")

    revised = spec_source.copy()
    revision = apply_revision(revised, "polarity", seed=6, bias="deep")
    spec = optimize_light(revised)
    print(f"revision applied to the spec: {revision.description}\n")

    result = SysEco(EcoConfig(num_samples=8)).rectify(impl, spec)
    assert check_equivalence(result.patched, spec).equivalent is True
    print(format_patch_report(result, impl=impl,
                              title="word-level datapath ECO"))


if __name__ == "__main__":
    main()
