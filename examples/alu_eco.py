"""A realistic ECO flow on an ALU, end to end.

Mirrors the industrial flow of the paper's evaluation:

1. elaborate a specification (a 4-bit ALU);
2. run *heavy* synthesis on it — that netlist taped in as the current
   implementation ``C`` (structurally remote from the source);
3. the specification is revised (a deep gate bug fix) and *lightly*
   synthesized into ``C'``;
4. three ECO engines rectify ``C`` against ``C'``: the cone-replacement
   proxy, the DeltaSyn reimplementation and syseco;
5. each result is formally verified, compared on Table-2 attributes and
   on post-patch slack, and syseco's patched netlist is written out as
   BLIF and structural Verilog.

Run:  python examples/alu_eco.py
"""

import os
import tempfile

from repro import EcoConfig, SysEco, check_equivalence
from repro.baselines import ConeMap, DeltaSyn
from repro.bench.runner import ECO_PLACEMENT_PENALTY_PS
from repro.netlist import circuit_stats, write_blif, write_verilog
from repro.synth import optimize_heavy, optimize_light
from repro.timing import analyze
from repro.workloads.generators import alu_design
from repro.workloads.revisions import apply_revision


def main() -> None:
    # 1-2: specification and heavily optimized implementation
    source = alu_design(width=4)
    impl = optimize_heavy(source, seed=2019)
    print(f"spec {circuit_stats(source)}")
    print(f"impl {circuit_stats(impl)}  (after heavy synthesis)")

    # 3: revise the spec and synthesize it lightly
    revised = source.copy()
    revision = apply_revision(revised, "gate-type", seed=7, bias="deep")
    spec = optimize_light(revised)
    print(f"\nrevision: {revision.description}")
    print(f"designer's estimate: {revision.estimate_gates} gate(s)")
    print(f"affected outputs: {', '.join(revision.affected_outputs)}")

    # 4: three engines
    period = analyze(impl).period
    engines = [
        ("cone-replacement", ConeMap()),
        ("DeltaSyn", DeltaSyn()),
        ("syseco", SysEco(EcoConfig(level_aware=True))),
    ]
    print(f"\n{'engine':>18} {'in':>4} {'out':>4} {'gates':>6} "
          f"{'nets':>5} {'slack,ps':>9} {'time,s':>7}")
    syseco_result = None
    for name, engine in engines:
        result = engine.rectify(impl, spec)
        assert check_equivalence(result.patched, spec).equivalent is True
        stats = result.stats()
        report = analyze(result.patched, period=period,
                         eco_gates=result.patch.cloned_gates,
                         eco_penalty_ps=ECO_PLACEMENT_PENALTY_PS)
        print(f"{name:>18} {stats.inputs:>4} {stats.outputs:>4} "
              f"{stats.gates:>6} {stats.nets:>5} "
              f"{report.worst_slack:>9.1f} "
              f"{result.runtime_seconds:>7.2f}")
        if name == "syseco":
            syseco_result = result

    # 5: ship the patched netlist
    out_dir = tempfile.mkdtemp(prefix="alu_eco_")
    blif_path = os.path.join(out_dir, "alu_patched.blif")
    verilog_path = os.path.join(out_dir, "alu_patched.v")
    write_blif(syseco_result.patched, blif_path)
    write_verilog(syseco_result.patched, verilog_path)
    print(f"\npatched netlist written to:\n  {blif_path}\n  {verilog_path}")


if __name__ == "__main__":
    main()
