"""Quickstart: rectify a one-gate bug with syseco.

The current implementation computes ``o = (a | b) ^ c`` while the
revised specification wants ``o = (a & b) ^ c``.  The engine locates a
rectification point, rewires it to a clone of the revised logic, proves
full equivalence with its own SAT solver and reports the Table-2 style
patch attributes.

Run:  python examples/quickstart.py

Pass ``--trace run.json --trace-format chrome`` to record a span trace
of the run (open it in Perfetto / ``chrome://tracing``, or summarize it
with ``python -m repro trace run.json``), and ``--metrics run.prom``
for a Prometheus-style metrics snapshot.  ``--store [DIR]`` publishes
the run into the persistent run store so ``python -m repro runs
list|show|diff|regress`` can track it across invocations.
"""

import argparse

from repro import Circuit, EcoConfig, SysEco, check_equivalence


def build_specification() -> Circuit:
    spec = Circuit("spec")
    a, b, c = spec.add_inputs(["a", "b", "c"])
    g1 = spec.and_(a, b, name="g1")
    spec.set_output("o", spec.xor(g1, c, name="g2"))
    return spec


def build_implementation() -> Circuit:
    impl = Circuit("impl")
    a, b, c = impl.add_inputs(["a", "b", "c"])
    h1 = impl.or_(a, b, name="h1")  # the bug: OR instead of AND
    impl.set_output("o", impl.xor(h1, c, name="h2"))
    return impl


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", metavar="FILE",
                        help="record a span trace of the run")
    parser.add_argument("--trace-format", choices=["jsonl", "chrome"],
                        default="jsonl")
    parser.add_argument("--metrics", metavar="FILE",
                        help="write a Prometheus-style metrics snapshot")
    parser.add_argument("--store", metavar="DIR", nargs="?",
                        const="", default=None,
                        help="publish the run into the run store "
                             "(default dir: $REPRO_RUN_STORE or "
                             ".repro/runs)")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    spec = build_specification()
    impl = build_implementation()

    trace = None
    if args.trace or args.metrics or args.store is not None:
        from repro.obs import MetricsRegistry, Trace
        trace = Trace(name=impl.name, metrics=MetricsRegistry())

    engine = SysEco(EcoConfig(num_samples=4))
    result = engine.rectify(impl, spec, trace=trace)

    print("committed rewire operations:")
    for op in result.patch.ops:
        print(f"  {op.describe()}")

    stats = result.stats()
    print(f"\npatch attributes: inputs={stats.inputs} "
          f"outputs={stats.outputs} gates={stats.gates} "
          f"nets={stats.nets}")
    print(f"runtime: {result.runtime_seconds:.3f}s")

    verdict = check_equivalence(result.patched, spec)
    print(f"formally equivalent to the revised spec: {verdict.equivalent}")
    assert verdict.equivalent is True

    if trace is not None:
        from repro.obs import (format_summary, summarize, write_chrome,
                               write_jsonl, write_prometheus)
        print()
        print(format_summary(summarize(trace.records())))
        if args.trace:
            writer = (write_chrome if args.trace_format == "chrome"
                      else write_jsonl)
            writer(trace, args.trace)
            print(f"\nwrote {args.trace} ({args.trace_format} trace)")
        if args.metrics:
            write_prometheus(trace, args.metrics)
            print(f"wrote {args.metrics} (metrics snapshot)")

    if args.store is not None:
        from repro.obs import RunStore, record_from_result
        record = record_from_result(
            result, trace=trace, kind="quickstart", name=impl.name,
            config=engine.config,
            outcome="ok" if verdict.equivalent is True else "failed")
        store = RunStore(args.store or None)
        store.publish(record)
        print(f"recorded run {record.run_id} (store: {store.root})")


if __name__ == "__main__":
    main()
