"""Tests for the sync-tracing runtime (``repro.runtime.sync``)."""

import threading

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.runtime.faultinject import FaultInjector
from repro.runtime.sync import (
    SITE_SYNC,
    SYNC_DEBUG_ENV,
    TracedLock,
    TracedRLock,
    disable_sync_debug,
    enable_sync_debug,
    make_condition,
    make_event,
    make_lock,
    make_rlock,
    make_thread,
    safe_mp_context,
    sync_debug_enabled,
    sync_graph,
    sync_state,
    sync_violations,
)


@pytest.fixture
def debug():
    """Enabled sync debugging, cleanly torn down."""
    state = enable_sync_debug()
    state.reset()
    yield state
    disable_sync_debug()


@pytest.fixture(autouse=True)
def _always_disable():
    yield
    disable_sync_debug()


class TestFactories:
    def test_disabled_returns_bare_primitives(self):
        disable_sync_debug()  # the session may run REPRO_SYNC_DEBUG=1
        assert not sync_debug_enabled()
        assert isinstance(make_lock("t"), type(threading.Lock()))
        assert isinstance(make_rlock("t"), type(threading.RLock()))
        assert isinstance(make_event("t"), threading.Event)
        assert isinstance(make_condition("t"), threading.Condition)

    def test_enabled_returns_traced_wrappers(self, debug):
        assert isinstance(make_lock("t"), TracedLock)
        assert isinstance(make_rlock("t"), TracedRLock)

    def test_construction_time_decision(self, debug):
        lock = make_lock("t")
        disable_sync_debug()
        # a lock built while tracing was on keeps working after
        with lock:
            pass

    def test_make_thread_always_named(self):
        seen = []
        t = make_thread(lambda: seen.append(1), name="sync-test")
        t.start()
        t.join(timeout=5.0)
        assert seen == [1]
        assert t.name == "sync-test"
        assert not t.daemon


class TestLockSemantics:
    def test_context_manager_and_locked(self, debug):
        lock = make_lock("t")
        assert not lock.locked()
        with lock:
            assert lock.locked()
        assert not lock.locked()

    def test_rlock_reentrant(self, debug):
        lock = make_rlock("t")
        with lock:
            with lock:
                pass
        assert sync_violations() == ()

    def test_condition_over_traced_rlock(self, debug):
        cond = make_condition("t")
        hits = []

        def waiter():
            with cond:
                cond.wait(timeout=5.0)
                hits.append(1)

        t = make_thread(waiter, name="sync-waiter")
        t.start()
        # let the waiter reach wait(); notify until it drains
        for _ in range(500):
            with cond:
                cond.notify_all()
            if hits:
                break
        t.join(timeout=5.0)
        assert hits == [1]

    def test_event_wait(self, debug):
        event = make_event("t")
        assert not event.is_set()
        event.set()
        assert event.wait(timeout=1.0)
        event.clear()
        assert not event.wait(timeout=0.01)


class TestLockOrderGraph:
    def test_ordered_nesting_no_violation(self, debug):
        a, b = make_lock("A"), make_lock("B")
        for _ in range(3):
            with a:
                with b:
                    pass
        assert sync_violations() == ()
        graph = sync_graph()
        assert graph["enabled"]
        assert ("A", "B") in {(e["src"], e["dst"])
                              for e in graph["edges"]}

    def test_inversion_detected_with_both_stacks(self, debug):
        a, b = make_lock("inv.A"), make_lock("inv.B")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        violations = sync_violations()
        assert len(violations) == 1
        v = violations[0]
        assert set(v.cycle) == {"inv.A", "inv.B"}
        # the closing edge and the return path both carry stacks
        assert len(v.edges) == 2
        assert all(e.stack for e in v.edges)
        orders = {(e.src, e.dst) for e in v.edges}
        assert orders == {("inv.A", "inv.B"), ("inv.B", "inv.A")}
        rendered = v.render()
        assert rendered.count("thread") >= 2
        assert "test_sync.py" in rendered

    def test_duplicate_cycle_reported_once(self, debug):
        a, b = make_lock("dup.A"), make_lock("dup.B")
        for _ in range(3):
            with a:
                with b:
                    pass
            with b:
                with a:
                    pass
        assert len(sync_violations()) == 1

    def test_same_name_locks_add_no_edges(self, debug):
        # shards share a role name; nesting them is not an ordering
        a, b = make_lock("shard"), make_lock("shard")
        with a:
            with b:
                pass
        assert sync_graph()["edges"] == []

    def test_graph_disabled_shape(self):
        disable_sync_debug()  # the session may run REPRO_SYNC_DEBUG=1
        graph = sync_graph()
        assert graph == {"enabled": False, "locks": [],
                         "acquisitions": 0, "edges": [],
                         "violations": []}


class TestMetricsAndJitter:
    def test_wait_histogram_fed(self, debug):
        registry = MetricsRegistry()
        debug.set_registry(registry)
        lock = make_lock("histo")
        with lock:
            pass
        series = registry.series("repro_sync_lock_wait_seconds")
        assert series
        assert sum(s.count for s in series) >= 1
        assert any(("lock", "histo") in s.labels for s in series)

    def test_jitter_injector_observed(self, debug):
        injector = FaultInjector()
        injector.arm(SITE_SYNC, 1, payload=0.0)
        debug.set_jitter(injector)
        lock = make_lock("jit")
        with lock:
            pass
        debug.set_jitter(None)
        assert injector.calls(SITE_SYNC) >= 1
        assert len(injector.fired) == 1


class TestEnvBootstrap:
    def test_env_enables(self, monkeypatch):
        import subprocess
        import sys
        code = ("from repro.runtime.sync import sync_debug_enabled; "
                "print(sync_debug_enabled())")
        out = subprocess.run(
            [sys.executable, "-c", code],
            env={"PYTHONPATH": "src", SYNC_DEBUG_ENV: "1"},
            capture_output=True, text=True, cwd="/root/repo")
        assert out.stdout.strip() == "True"

    def test_enable_is_idempotent(self, debug):
        assert enable_sync_debug() is sync_state()


class TestSafeMpContext:
    def test_returns_context_with_pool_support(self):
        ctx = safe_mp_context()
        assert ctx.get_start_method() in ("fork", "spawn", "forkserver")

    def test_spawn_when_threads_alive(self):
        import multiprocessing
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("platform has no fork")
        stop = make_event("mp-test")
        t = make_thread(lambda: stop.wait(timeout=10.0),
                        name="mp-probe", daemon=True)
        t.start()
        try:
            assert safe_mp_context().get_start_method() != "fork"
        finally:
            stop.set()
            t.join(timeout=5.0)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_START", "spawn")
        assert safe_mp_context().get_start_method() == "spawn"
