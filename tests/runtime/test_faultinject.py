"""Unit tests for the deterministic fault-injection harness."""

import pytest

from repro.runtime import (
    FaultInjector,
    InjectedClock,
    RunCounters,
    SITE_BDD,
    SITE_CLOCK,
    SITE_SAT,
)


class FakeClock:
    def __init__(self, t: float = 0.0):
        self.t = t

    def now(self) -> float:
        return self.t


class TestFaultInjector:
    def test_fires_exactly_at_the_nth_call(self):
        injector = FaultInjector().arm(SITE_SAT, 3, payload="unknown")
        assert injector.observe(SITE_SAT) is None
        assert injector.observe(SITE_SAT) is None
        fault = injector.observe(SITE_SAT)
        assert fault is not None and fault.payload == "unknown"
        assert injector.observe(SITE_SAT) is None
        assert injector.calls(SITE_SAT) == 4

    def test_sites_count_independently(self):
        injector = FaultInjector().arm(SITE_BDD, 1)
        assert injector.observe(SITE_SAT) is None
        assert injector.observe(SITE_BDD) is not None

    def test_ordinal_lists(self):
        injector = FaultInjector().arm(SITE_SAT, [1, 3])
        hits = [injector.observe(SITE_SAT) is not None for _ in range(4)]
        assert hits == [True, False, True, False]

    def test_fired_records_order(self):
        injector = FaultInjector()
        injector.arm(SITE_SAT, 2, payload="a").arm(SITE_BDD, 1, payload="b")
        injector.observe(SITE_BDD)
        injector.observe(SITE_SAT)
        injector.observe(SITE_SAT)
        assert [f.payload for f in injector.fired] == ["b", "a"]

    def test_ordinals_are_one_based(self):
        with pytest.raises(ValueError):
            FaultInjector().arm(SITE_SAT, 0)


class TestInjectedClock:
    def test_jump_is_persistent(self):
        base = FakeClock(100.0)
        injector = FaultInjector().arm(SITE_CLOCK, 2, payload=50.0)
        clock = InjectedClock(base, injector)
        assert clock.now() == pytest.approx(100.0)
        assert clock.now() == pytest.approx(150.0)  # jump fires here
        assert clock.now() == pytest.approx(150.0)  # ... and persists

    def test_without_injector_tracks_base(self):
        base = FakeClock(7.0)
        clock = InjectedClock(base)
        assert clock.now() == pytest.approx(7.0)
        base.t = 9.0
        assert clock.now() == pytest.approx(9.0)


class TestRunCounters:
    def test_mapping_protocol(self):
        counters = RunCounters(choices=5, sat_validations=2)
        assert counters["choices"] == 5
        assert counters.get("sat_validations") == 2
        assert counters.get("not_a_counter", 42) == 42
        assert "fallbacks" in counters
        assert "not_a_counter" not in counters
        assert dict(counters.items())["choices"] == 5
        assert counters.as_dict()["sat_validations"] == 2
        assert counters.nonzero() == {"choices": 5, "sat_validations": 2}
        with pytest.raises(KeyError):
            counters["not_a_counter"]
