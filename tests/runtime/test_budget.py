"""Unit tests for run budgets, escalation and the error hierarchy."""

import pytest

from repro.errors import (
    BddError,
    BddNodeLimitError,
    DeadlineExceeded,
    ResourceBudgetExceeded,
    SatBudgetExceeded,
)
from repro.runtime import EscalationPolicy, RunBudget


class FakeClock:
    def __init__(self, t: float = 0.0):
        self.t = t

    def now(self) -> float:
        return self.t


class TestErrorHierarchy:
    def test_budget_errors_share_one_base(self):
        # one except clause catches every budget exhaustion
        for exc in (BddNodeLimitError("x"), SatBudgetExceeded("x"),
                    DeadlineExceeded("x")):
            with pytest.raises(ResourceBudgetExceeded):
                raise exc

    def test_bdd_node_limit_keeps_bdd_parent(self):
        assert issubclass(BddNodeLimitError, BddError)
        assert issubclass(BddNodeLimitError, ResourceBudgetExceeded)

    def test_plain_budget_error_is_not_a_bdd_error(self):
        assert not issubclass(ResourceBudgetExceeded, BddError)


class TestRunBudgetDeadline:
    def test_no_deadline_never_raises(self):
        budget = RunBudget(clock=FakeClock())
        assert budget.time_left() is None
        budget.check_deadline()

    def test_deadline_expiry_raises(self):
        clock = FakeClock()
        budget = RunBudget(deadline_s=10.0, clock=clock)
        budget.check_deadline()
        assert budget.time_left() == pytest.approx(10.0)
        clock.t = 10.5
        with pytest.raises(DeadlineExceeded):
            budget.check_deadline()

    def test_elapsed_tracks_clock(self):
        clock = FakeClock(5.0)
        budget = RunBudget(clock=clock)
        clock.t = 7.5
        assert budget.elapsed() == pytest.approx(2.5)


class TestRunBudgetSat:
    def test_unlimited_passes_request_through(self):
        budget = RunBudget(clock=FakeClock())
        assert budget.grant_sat(123) == 123
        assert budget.grant_sat(None) is None

    def test_grants_capped_by_remainder(self):
        budget = RunBudget(total_sat_conflicts=100, clock=FakeClock())
        assert budget.grant_sat(50) == 50
        budget.charge_sat(60)
        assert budget.grant_sat(50) == 40
        assert budget.grant_sat(None) == 40

    def test_exhaustion_raises(self):
        budget = RunBudget(total_sat_conflicts=100, clock=FakeClock())
        budget.charge_sat(100)
        with pytest.raises(SatBudgetExceeded):
            budget.grant_sat(1)

    def test_grant_checks_deadline_too(self):
        clock = FakeClock()
        budget = RunBudget(deadline_s=1.0, clock=clock)
        clock.t = 2.0
        with pytest.raises(DeadlineExceeded):
            budget.grant_sat(10)


class TestRunBudgetBdd:
    def test_grants_and_charges(self):
        budget = RunBudget(total_bdd_nodes=1000, clock=FakeClock())
        assert budget.grant_bdd(400) == 400
        budget.charge_bdd(900)
        assert budget.grant_bdd(400) == 100

    def test_exhaustion_is_not_a_node_limit_error(self):
        # the engine's shrink-and-retry handler catches
        # BddNodeLimitError; aggregate exhaustion must NOT be caught by
        # it, so it has to be the plain budget class
        budget = RunBudget(total_bdd_nodes=10, clock=FakeClock())
        budget.charge_bdd(10)
        with pytest.raises(ResourceBudgetExceeded) as info:
            budget.grant_bdd(5)
        assert not isinstance(info.value, BddNodeLimitError)


class TestEscalationPolicy:
    def test_geometric_attempt_budgets(self):
        policy = EscalationPolicy(initial=100, factor=2.0, ceiling=10000,
                                  max_attempts=4)
        assert list(policy.attempt_budgets()) == [100, 200, 400, 800]
        assert policy.escalations == 3

    def test_ceiling_stops_escalation(self):
        policy = EscalationPolicy(initial=600, factor=4.0, ceiling=1000,
                                  max_attempts=5)
        assert list(policy.attempt_budgets()) == [600, 1000]

    def test_deescalation_after_repeated_failures(self):
        policy = EscalationPolicy(initial=1024, factor=2.0, ceiling=4096,
                                  max_attempts=2, deescalate_after=3)
        for _ in range(3):
            policy.record(False)
        assert policy.current_initial == 512
        assert policy.deescalations == 1

    def test_success_restores_configured_initial(self):
        policy = EscalationPolicy(initial=1024, factor=2.0, ceiling=4096,
                                  max_attempts=2, deescalate_after=1)
        policy.record(False)
        assert policy.current_initial == 512
        policy.record(True)
        assert policy.current_initial == 1024

    def test_deescalation_floors(self):
        policy = EscalationPolicy(initial=70, factor=2.0,
                                  max_attempts=1, deescalate_after=1)
        for _ in range(10):
            policy.record(False)
        assert policy.current_initial == 64  # MIN_INITIAL

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            EscalationPolicy(initial=0)
        with pytest.raises(ValueError):
            EscalationPolicy(initial=10, factor=1.0)
        with pytest.raises(ValueError):
            EscalationPolicy(initial=10, max_attempts=0)
