"""Retry-policy tests: schedule determinism and budget-aware sleeps."""

import pytest

from repro.runtime.retry import RetryPolicy


class FakeBudget:
    def __init__(self, left):
        self.left = left

    def time_left(self):
        return self.left


class TestSchedule:
    def test_delays_grow_geometrically_and_cap(self):
        policy = RetryPolicy(base_delay_s=1.0, factor=2.0,
                             max_delay_s=5.0, jitter=0.0)
        assert policy.delay_s(1) == 1.0
        assert policy.delay_s(2) == 2.0
        assert policy.delay_s(3) == 4.0
        assert policy.delay_s(4) == 5.0  # capped pre-jitter
        assert policy.delay_s(10) == 5.0

    def test_jitter_is_bounded_and_additive(self):
        policy = RetryPolicy(base_delay_s=1.0, factor=1.0, jitter=0.5)
        for attempt in range(1, 8):
            d = policy.delay_s(attempt)
            assert 1.0 <= d <= 1.5

    def test_schedule_is_deterministic_per_seed(self):
        a = RetryPolicy(seed=7)
        b = RetryPolicy(seed=7)
        c = RetryPolicy(seed=8)
        schedule = [a.delay_s(n) for n in range(1, 6)]
        assert schedule == [b.delay_s(n) for n in range(1, 6)]
        assert schedule != [c.delay_s(n) for n in range(1, 6)]

    def test_attempts_are_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay_s(0)

    def test_allows_counts_failures_against_max_retries(self):
        policy = RetryPolicy(max_retries=1)
        assert policy.allows(1) is True
        assert policy.allows(2) is False
        none = RetryPolicy(max_retries=0)
        assert none.allows(1) is False

    @pytest.mark.parametrize("kwargs", [
        {"max_retries": -1}, {"base_delay_s": -0.1}, {"factor": 0.5},
        {"jitter": 1.5}, {"jitter": -0.1},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestBudgetedSleep:
    def test_sleeps_and_returns_delay_without_budget(self):
        slept = []
        policy = RetryPolicy(base_delay_s=0.5, jitter=0.0)
        taken = policy.sleep_within_budget(1, sleep=slept.append)
        assert taken == 0.5
        assert slept == [0.5]

    def test_refuses_when_delay_would_eat_the_deadline(self):
        slept = []
        policy = RetryPolicy(base_delay_s=2.0, jitter=0.0)
        # 2s backoff against 3s left: the redo would get < 2s — refuse
        taken = policy.sleep_within_budget(1, budget=FakeBudget(3.0),
                                           sleep=slept.append)
        assert taken is None
        assert slept == []

    def test_sleeps_when_budget_is_comfortable(self):
        slept = []
        policy = RetryPolicy(base_delay_s=2.0, jitter=0.0)
        taken = policy.sleep_within_budget(1, budget=FakeBudget(100.0),
                                           sleep=slept.append)
        assert taken == 2.0
        assert slept == [2.0]

    def test_unlimited_budget_never_refuses(self):
        policy = RetryPolicy(base_delay_s=2.0, jitter=0.0)
        taken = policy.sleep_within_budget(1, budget=FakeBudget(None),
                                           sleep=lambda _s: None)
        assert taken == 2.0

    def test_zero_delay_skips_the_sleep_call(self):
        slept = []
        policy = RetryPolicy(base_delay_s=0.0, jitter=0.0)
        taken = policy.sleep_within_budget(1, sleep=slept.append)
        assert taken == 0.0
        assert slept == []
