"""The ``--serve-metrics`` HTTP endpoint: conformance and liveness."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.metrics import MetricsRegistry, parse_prometheus_text
from repro.obs.serve import MetricsServer, maybe_serve
from repro.obs.trace import Trace


def fetch(url):
    with urllib.request.urlopen(url, timeout=2.0) as resp:
        return resp.status, resp.headers.get("Content-Type"), \
            resp.read().decode("utf-8")


@pytest.fixture
def registry():
    reg = MetricsRegistry()
    reg.counter("repro_counter_total", {"counter": "sat_validations"},
                help="RunCounters totals").inc(9)
    reg.histogram("repro_sat_call_seconds",
                  help="SAT call latency").observe(0.004)
    return reg


class TestMetricsEndpoint:
    def test_metrics_payload_is_conformant(self, registry):
        with MetricsServer(registry) as server:
            status, ctype, body = fetch(server.url + "/metrics")
        assert status == 200
        assert ctype.startswith("text/plain")
        families = parse_prometheus_text(body)      # strict: raises
        assert families["repro_sat_call_seconds"]["type"] == "histogram"
        assert families["repro_counter_total"]["samples"][0][2] == 9.0

    def test_metrics_include_trace_phase_snapshot(self, registry):
        trace = Trace(name="t", metrics=registry)
        with trace.span("eco.rectify"):
            pass
        with MetricsServer(registry, trace=trace) as server:
            _, _, body = fetch(server.url + "/metrics")
        families = parse_prometheus_text(body)
        # registry families and trace-derived phase families coexist in
        # one conformant payload
        assert "repro_sat_call_seconds" in families
        assert any(name.startswith("repro_phase_") or
                   name.startswith("repro_run_") for name in families)

    def test_unknown_path_is_404(self, registry):
        with MetricsServer(registry) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                fetch(server.url + "/nope")
            assert err.value.code == 404


class TestHealthz:
    def test_health_reports_phase_stack_and_progress(self, registry):
        trace = Trace(name="demo", metrics=registry)
        span = trace.span("eco.rectify")
        inner = trace.span("eco.output", output="o1")
        with MetricsServer(registry, trace=trace) as server:
            _, ctype, body = fetch(server.url + "/healthz")
        inner.finish()
        span.finish()
        assert ctype == "application/json"
        doc = json.loads(body)
        assert doc["status"] == "ok"
        assert doc["run"] == "demo"
        assert doc["phase"] == ["eco.rectify", "eco.output"]
        assert doc["progress"] == 2
        assert doc["stalled"] is False

    def test_stall_event_flips_the_status(self, registry):
        trace = Trace(name="demo")
        trace.event("run.stalled", idle_s=99)
        server = MetricsServer(registry, trace=trace)
        assert server.health()["status"] == "stalled"
        server.stop()

    def test_health_provider_merges_and_degrades(self, registry):
        server = MetricsServer(
            registry, health_provider=lambda: {"outputs_done": 3})
        assert server.health()["outputs_done"] == 3
        server.health_provider = lambda: 1 // 0
        doc = server.health()
        assert "ZeroDivisionError" in doc["health_provider_error"]
        server.stop()


class TestMaybeServe:
    def test_none_port_means_no_server(self, registry):
        assert maybe_serve(registry, None) is None

    def test_port_zero_binds_ephemeral(self, registry):
        server = maybe_serve(registry, 0)
        try:
            assert server is not None
            assert server.port != 0
        finally:
            server.stop()

    def test_bind_failure_degrades_to_none(self, registry):
        holder = MetricsServer(registry).start()
        try:
            # the exact port is taken; telemetry must not take the
            # run down
            assert maybe_serve(registry, holder.port) is None
        finally:
            holder.stop()


class TestShutdown:
    """Idempotent, leak-free teardown: the PR's port-rebind satellite."""

    def test_stop_is_idempotent(self, registry):
        server = MetricsServer(registry).start()
        server.stop()
        server.stop()
        server.stop()  # any number of times, no raise

    def test_stop_without_start_closes_socket(self, registry):
        server = MetricsServer(registry)
        port = server.port
        server.stop()  # never started: must still release the socket
        rebound = MetricsServer(registry, port=port)
        rebound.stop()

    def test_sequential_runs_bind_the_same_port(self, registry):
        first = MetricsServer(registry).start()
        port = first.port
        status, _, _ = fetch(first.url + "/healthz")
        assert status == 200
        first.stop()

        # the exact port the first run used must be free immediately
        second = MetricsServer(registry, port=port).start()
        try:
            assert second.port == port
            status, _, _ = fetch(second.url + "/metrics")
            assert status == 200
        finally:
            second.stop()

    def test_serve_thread_joined_on_stop(self, registry):
        import threading

        server = MetricsServer(registry).start()
        server.stop()
        assert not [t for t in threading.enumerate()
                    if t.name == "repro-obs-serve" and t.is_alive()]
