"""Atomic file primitive tests: durability and crash hygiene."""

import os

import pytest

from repro.obs.atomicio import (
    append_jsonl_line,
    atomic_write_text,
    read_jsonl,
    sweep_temp_leftovers,
)


class TestAtomicWriteText:
    def test_writes_and_replaces(self, tmp_path):
        path = str(tmp_path / "f.txt")
        atomic_write_text(path, "one\n")
        atomic_write_text(path, "two\n")
        assert open(path).read() == "two\n"
        assert os.listdir(tmp_path) == ["f.txt"]

    def test_failure_leaves_target_intact(self, tmp_path):
        path = str(tmp_path / "f.txt")
        atomic_write_text(path, "original\n")

        with pytest.raises(TypeError):
            atomic_write_text(path, object())  # not writable text
        assert open(path).read() == "original\n"
        # the aborted temp file was cleaned up
        assert os.listdir(tmp_path) == ["f.txt"]


class TestAppendJsonl:
    def test_appends_in_order(self, tmp_path):
        path = str(tmp_path / "r.jsonl")
        append_jsonl_line(path, {"n": 1})
        append_jsonl_line(path, {"n": 2})
        records, skipped = read_jsonl(path)
        assert [r["n"] for r in records] == [1, 2]
        assert skipped == 0

    def test_survives_preexisting_garbage(self, tmp_path):
        path = str(tmp_path / "r.jsonl")
        append_jsonl_line(path, {"n": 1})
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("{torn record")  # a crashed writer's last gasp
        append_jsonl_line(path, {"n": 2})
        records, skipped = read_jsonl(path)
        assert [r["n"] for r in records] == [1, 2]
        assert skipped == 1


class TestReadJsonl:
    def test_missing_file_is_empty(self, tmp_path):
        records, skipped = read_jsonl(str(tmp_path / "absent.jsonl"))
        assert records == []
        assert skipped == 0

    def test_non_dict_lines_skipped(self, tmp_path):
        path = tmp_path / "r.jsonl"
        path.write_text('{"ok": 1}\n[1, 2]\n"str"\n{"ok": 2}\n')
        records, skipped = read_jsonl(str(path))
        assert [r["ok"] for r in records] == [1, 2]
        assert skipped == 2


class TestTempSweep:
    def test_sweeps_only_temp_files(self, tmp_path):
        keep = tmp_path / "data.jsonl"
        keep.write_text("{}\n")
        (tmp_path / ".tmp-abandoned").write_text("partial")
        removed = sweep_temp_leftovers(str(tmp_path))
        assert [os.path.basename(p) for p in removed] == [".tmp-abandoned"]
        assert sorted(os.listdir(tmp_path)) == ["data.jsonl"]
