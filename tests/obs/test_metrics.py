"""Metrics registry, histogram math, and exposition conformance.

The round-trip tests are the conformance satellite: every payload
``render_prometheus`` emits must survive ``parse_prometheus_text``,
whose validation encodes the exposition-format contract (HELP before
TYPE, ``le`` ordering, cumulative bucket counts, terminal ``+Inf``
equal to ``_count``).
"""

import math

import pytest

from repro.obs.metrics import (
    LATENCY_BUCKETS,
    SIZE_BUCKETS,
    SPAN_HISTOGRAMS,
    Histogram,
    MetricsRegistry,
    PrometheusParseError,
    histogram_percentiles,
    log_buckets,
    parse_prometheus_text,
    render_prometheus,
)
from repro.obs.trace import Trace


class TestBuckets:
    def test_log_buckets_are_geometric(self):
        assert log_buckets(1.0, 2.0, 4) == [1.0, 2.0, 4.0, 8.0]

    @pytest.mark.parametrize("start,factor,count", [
        (0.0, 2.0, 4), (-1.0, 2.0, 4), (1.0, 1.0, 4), (1.0, 2.0, 0),
    ])
    def test_log_buckets_rejects_degenerate_shapes(self, start, factor,
                                                   count):
        with pytest.raises(ValueError):
            log_buckets(start, factor, count)

    def test_default_boundaries_cover_the_useful_range(self):
        assert LATENCY_BUCKETS[0] == pytest.approx(0.0001)
        assert LATENCY_BUCKETS[-1] > 50.0          # ~52 s
        assert SIZE_BUCKETS[0] == 64
        assert SIZE_BUCKETS[-1] > 1e9


class TestCounterGauge:
    def test_counter_is_monotone(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_x_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_set_to_at_least_never_lowers(self):
        c = MetricsRegistry().counter("repro_x_total")
        c.set_to_at_least(10)
        c.set_to_at_least(4)
        assert c.value == 10

    def test_gauge_moves_both_ways(self):
        g = MetricsRegistry().gauge("repro_x")
        g.set(5)
        g.inc(2)
        g.dec(3)
        assert g.value == 4.0


class TestHistogram:
    def test_observations_land_in_their_buckets(self):
        h = Histogram("h", (), [1.0, 10.0, 100.0])
        for v in (0.5, 1.0, 5.0, 50.0, 500.0):
            h.observe(v)
        # <=1, <=10, <=100, overflow
        assert h.bucket_counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.sum == pytest.approx(556.5)

    def test_bounds_must_strictly_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", (), [1.0, 1.0, 2.0])
        with pytest.raises(ValueError):
            Histogram("h", (), [2.0, 1.0])

    def test_percentile_interpolates_within_a_bucket(self):
        h = Histogram("h", (), [1.0, 2.0])
        for _ in range(10):
            h.observe(1.5)                         # all in (1, 2]
        assert h.percentile(0.5) == pytest.approx(1.5)
        assert 1.0 < h.percentile(0.95) <= 2.0

    def test_percentile_of_overflow_reports_last_bound(self):
        h = Histogram("h", (), [1.0, 2.0])
        for _ in range(10):
            h.observe(99.0)
        assert h.percentile(0.5) == 2.0

    def test_empty_percentile_is_zero(self):
        assert Histogram("h", (), [1.0]).percentile(0.95) == 0.0

    def test_snapshot_buckets_are_cumulative_with_inf(self):
        h = Histogram("h", (), [1.0, 10.0])
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["buckets"] == [[1.0, 1], [10.0, 2], ["+Inf", 3]]
        assert snap["p50"] > 0

    def test_merge_requires_identical_bounds(self):
        a = Histogram("h", (), [1.0, 2.0])
        b = Histogram("h", (), [1.0, 2.0])
        a.observe(0.5)
        b.observe(1.5)
        a.merge_counts(b)
        assert a.count == 2
        assert a.bucket_counts == [1, 1, 0]
        with pytest.raises(ValueError):
            a.merge_counts(Histogram("h", (), [1.0, 3.0]))


class TestRegistry:
    def test_same_name_and_labels_share_a_series(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_n_total", {"k": "x"})
        b = reg.counter("repro_n_total", {"k": "x"})
        c = reg.counter("repro_n_total", {"k": "y"})
        assert a is b and a is not c

    def test_kind_collision_is_an_error(self):
        reg = MetricsRegistry()
        reg.counter("repro_n")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("repro_n")

    def test_names_are_sanitized(self):
        reg = MetricsRegistry()
        reg.counter("repro bad-name.total")
        assert "repro_bad_name_total" in reg.families()

    def test_sync_counters_accumulates_monotonically(self):
        reg = MetricsRegistry()
        reg.sync_counters({"sat_validations": 3, "zeros": 0})
        reg.sync_counters({"sat_validations": 7})
        reg.sync_counters({"sat_validations": 5})   # stale: ignored
        (series,) = reg.series("repro_counter_total")
        assert series.labels == (("counter", "sat_validations"),)
        assert series.value == 7

    def test_observe_span_routes_mapped_names(self):
        reg = MetricsRegistry()
        reg.observe_span("sat.validate", 0.01, {})
        reg.observe_span("no.such.phase", 0.01, {})
        fam, _ = SPAN_HISTOGRAMS["sat.validate"]
        (series,) = reg.series(fam)
        assert series.count == 1
        assert len(reg.series()) == 1               # unmapped: no series

    def test_observe_span_bdd_session_uses_nodes_tag(self):
        reg = MetricsRegistry()
        reg.observe_span("bdd.session", 0.5, {"nodes": 5000})
        reg.observe_span("bdd.session", 0.5, {})    # no tag: skipped
        (series,) = reg.series("repro_bdd_session_nodes")
        assert series.count == 1
        assert series.bounds[0] == 64.0             # size, not latency

    def test_histogram_snapshots_merge_label_series(self):
        reg = MetricsRegistry()
        reg.histogram("repro_h_seconds", {"w": "1"},
                      buckets=[1.0, 2.0]).observe(0.5)
        reg.histogram("repro_h_seconds", {"w": "2"},
                      buckets=[1.0, 2.0]).observe(1.5)
        snaps = reg.histogram_snapshots()
        assert snaps["repro_h_seconds"]["count"] == 2


class TestTraceIntegration:
    def test_finished_spans_feed_the_registry(self):
        reg = MetricsRegistry()
        trace = Trace(name="t", metrics=reg)
        with trace.span("eco.output", output="o1"):
            with trace.span("sat.validate"):
                pass
        assert reg.series("repro_sat_call_seconds")[0].count == 1
        assert reg.series("repro_output_seconds")[0].count == 1

    def test_absorb_does_not_double_feed(self):
        """Worker spans reach the registry via the live bus only; the
        final graft must not observe them again."""
        reg = MetricsRegistry()
        trace = Trace(name="t", metrics=reg)
        trace.absorb([{"type": "span", "id": 1, "parent": None,
                       "name": "sat.validate", "ts": 0.0, "dur": 0.5,
                       "tags": {}, "counters": {}}])
        assert reg.series("repro_sat_call_seconds") == []


class TestExpositionRoundTrip:
    def make_registry(self):
        reg = MetricsRegistry()
        reg.counter("repro_counter_total", {"counter": "sat_validations"},
                    help="RunCounters totals").inc(42)
        reg.gauge("repro_trace_progress", help="span activity").set(17.5)
        h = reg.histogram("repro_sat_call_seconds",
                          help="SAT call latency")
        for v in (0.0002, 0.003, 0.003, 0.8, 120.0):   # incl. overflow
            h.observe(v)
        return reg

    def test_round_trip_preserves_families_and_samples(self):
        reg = self.make_registry()
        families = parse_prometheus_text(render_prometheus(reg))
        assert families["repro_counter_total"]["type"] == "counter"
        assert families["repro_trace_progress"]["type"] == "gauge"
        hist = families["repro_sat_call_seconds"]
        assert hist["type"] == "histogram"
        assert hist["help"] == "SAT call latency"
        (sample,) = families["repro_counter_total"]["samples"]
        assert sample == ("repro_counter_total",
                          {"counter": "sat_validations"}, 42.0)
        buckets = [s for s in hist["samples"]
                   if s[0] == "repro_sat_call_seconds_bucket"]
        assert buckets[-1][1]["le"] == "+Inf"
        assert buckets[-1][2] == 5.0

    def test_round_trip_with_label_escaping(self):
        reg = MetricsRegistry()
        reg.gauge("repro_g", {"path": 'a\\b"c\nd'}).set(1)
        families = parse_prometheus_text(render_prometheus(reg))
        (_, labels, _) = families["repro_g"]["samples"][0]
        assert labels == {"path": 'a\\b"c\nd'}

    def test_percentiles_recoverable_from_parsed_payload(self):
        reg = self.make_registry()
        families = parse_prometheus_text(render_prometheus(reg))
        pcts = histogram_percentiles(families["repro_sat_call_seconds"])
        ((_, derived),) = list(pcts.items())
        direct = reg.series("repro_sat_call_seconds")[0]
        assert derived["count"] == 5
        assert derived["p50"] == pytest.approx(direct.percentile(0.5))
        assert derived["p95"] == pytest.approx(direct.percentile(0.95))


class TestParserStrictness:
    GOOD = ("# HELP repro_x help text\n"
            "# TYPE repro_x gauge\n"
            "repro_x 1\n")

    def test_accepts_conformant_text(self):
        families = parse_prometheus_text(self.GOOD)
        assert families["repro_x"]["samples"] == [("repro_x", {}, 1.0)]

    @pytest.mark.parametrize("text,match", [
        ("# TYPE repro_x gauge\nrepro_x 1\n", "no # HELP"),
        ("# HELP repro_x h\n# TYPE repro_x gauge\n"
         "# HELP repro_x h\n# TYPE repro_x gauge\n", "duplicate # TYPE"),
        ("repro_x 1\n", "no # TYPE family"),
        ("# HELP repro_x h\n# TYPE repro_x widget\n", "unknown metric"),
        ("# HELP repro_x h\n# TYPE repro_x gauge\nrepro_x not-a-num\n",
         "unparsable sample value"),
        ("# HELP repro_x h\n# TYPE repro_x gauge\n"
         'repro_x{k=unquoted} 1\n', "malformed labels"),
    ])
    def test_rejects_malformed_text(self, text, match):
        with pytest.raises(PrometheusParseError, match=match):
            parse_prometheus_text(text)

    def _hist(self, body):
        return ("# HELP repro_h h\n# TYPE repro_h histogram\n" + body)

    def test_rejects_histogram_without_inf_bucket(self):
        text = self._hist('repro_h_bucket{le="1"} 1\n'
                          "repro_h_sum 1\nrepro_h_count 1\n")
        with pytest.raises(PrometheusParseError, match="\\+Inf"):
            parse_prometheus_text(text)

    def test_rejects_non_cumulative_buckets(self):
        text = self._hist('repro_h_bucket{le="1"} 5\n'
                          'repro_h_bucket{le="2"} 3\n'
                          'repro_h_bucket{le="+Inf"} 5\n'
                          "repro_h_sum 1\nrepro_h_count 5\n")
        with pytest.raises(PrometheusParseError, match="not cumulative"):
            parse_prometheus_text(text)

    def test_rejects_inf_bucket_count_mismatch(self):
        text = self._hist('repro_h_bucket{le="+Inf"} 5\n'
                          "repro_h_sum 1\nrepro_h_count 7\n")
        with pytest.raises(PrometheusParseError, match="!="):
            parse_prometheus_text(text)

    def test_rejects_bucket_without_le(self):
        text = self._hist("repro_h_bucket 5\n"
                          "repro_h_sum 1\nrepro_h_count 5\n")
        with pytest.raises(PrometheusParseError, match="without le"):
            parse_prometheus_text(text)

    def test_special_values_parse(self):
        text = ("# HELP repro_x h\n# TYPE repro_x gauge\n"
                'repro_x{k="a"} +Inf\nrepro_x{k="b"} NaN\n')
        samples = parse_prometheus_text(text)["repro_x"]["samples"]
        assert samples[0][2] == math.inf
        assert math.isnan(samples[1][2])


class TestConcurrentRegistry:
    """The registry hammer: the double-checked fast path must never
    lose an update or hand out a mis-kinded series."""

    def test_no_lost_increments_across_threads(self):
        from repro.runtime.sync import make_thread

        registry = MetricsRegistry()
        workers, rounds = 8, 500

        def hammer(wid):
            counter = registry.counter("repro_hammer_total",
                                       labels={"w": str(wid % 2)})
            hist = registry.histogram("repro_hammer_seconds")
            gauge = registry.gauge("repro_hammer_gauge")
            for i in range(rounds):
                counter.inc()
                hist.observe(i * 1e-4)
                gauge.set(float(i))

        threads = [make_thread(hammer, name=f"hammer-{i}", args=(i,))
                   for i in range(workers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert not any(t.is_alive() for t in threads)

        total = sum(s.value
                    for s in registry.series("repro_hammer_total"))
        assert total == workers * rounds
        hist = registry.histogram("repro_hammer_seconds")
        assert hist.count == workers * rounds
        assert sum(hist.bucket_counts) == workers * rounds

    def test_fast_path_cannot_bypass_kind_check(self):
        from repro.runtime.sync import make_thread

        registry = MetricsRegistry()
        outcomes = []

        def register(kind):
            try:
                if kind == "counter":
                    registry.counter("repro_kind_clash")
                else:
                    registry.gauge("repro_kind_clash")
                outcomes.append(("ok", kind))
            except ValueError:
                outcomes.append(("raised", kind))

        for trial in range(20):
            registry = MetricsRegistry()
            outcomes = []
            pair = [make_thread(register, name=f"kind-{trial}-c",
                                args=("counter",)),
                    make_thread(register, name=f"kind-{trial}-g",
                                args=("gauge",))]
            for t in pair:
                t.start()
            for t in pair:
                t.join(timeout=10.0)
            verdicts = sorted(v for v, _ in outcomes)
            assert verdicts == ["ok", "raised"], outcomes
            assert len(registry.series("repro_kind_clash")) == 1

    def test_render_is_atomic_against_observers(self):
        from repro.runtime.sync import make_event, make_thread

        registry = MetricsRegistry()
        registry.histogram("repro_torn_seconds").observe(0.001)
        stop = make_event("torn-stop")

        def observe_forever():
            hist = registry.histogram("repro_torn_seconds")
            while not stop.is_set():
                hist.observe(0.002)

        writer = make_thread(observe_forever, name="torn-writer")
        writer.start()
        try:
            for _ in range(50):
                # the strict parser asserts +Inf == _count: a torn
                # histogram read fails this round-trip
                parse_prometheus_text(render_prometheus(registry))
        finally:
            stop.set()
            writer.join(timeout=10.0)
        assert not writer.is_alive()
