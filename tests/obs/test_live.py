"""Live-bus telemetry: publisher, aggregator, graft reconciliation.

Everything runs on the deterministic inline transport (a plain
``queue.Queue``) with an injected clock; the multiprocessing manager
path is exercised by the parallel-engine integration tests.
"""

import queue

from repro.obs.live import (
    HEARTBEAT_GAUGE,
    WORKERS_GAUGE,
    LiveAggregator,
    LiveBus,
    WorkerPublisher,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Trace


class FakeClock:
    def __init__(self):
        self.t = 100.0

    def __call__(self):
        return self.t


class FakeCounters:
    def __init__(self, **totals):
        self.totals = totals

    def as_dict(self):
        return dict(self.totals)


def make_pair(registry=None):
    """A worker trace publishing onto a bus an aggregator consumes."""
    clock = FakeClock()
    bus = LiveBus.create(inline=True)
    counters = FakeCounters()
    publisher = WorkerPublisher(bus.queue, "o1@1", counters=counters,
                                clock=clock)
    worker_trace = Trace(name="worker", clock=clock)
    worker_trace.listener = publisher
    main = Trace(name="main", clock=clock)
    aggregator = LiveAggregator(main, bus, registry=registry, clock=clock)
    return clock, counters, worker_trace, main, aggregator


class TestWorkerPublisher:
    def test_span_lifecycle_is_published(self):
        _, _, worker_trace, _, aggregator = make_pair()
        with worker_trace.span("sat.validate", result="eq"):
            pass
        messages = aggregator.bus.drain()
        kinds = [m["kind"] for m in messages]
        assert kinds.count("span_open") == 1
        assert kinds.count("span_close") == 1
        close = next(m for m in messages if m["kind"] == "span_close")
        assert close["worker"] == "o1@1"
        assert close["record"]["name"] == "sat.validate"
        assert close["record"]["tags"] == {"result": "eq"}

    def test_heartbeats_are_throttled(self):
        clock, counters, worker_trace, _, aggregator = make_pair()
        counters.totals = {"sat_validations": 3, "zero": 0}
        publisher = worker_trace.listener
        publisher.heartbeat(force=True)
        publisher.heartbeat()                  # same instant: suppressed
        clock.t += 1.0
        publisher.heartbeat()
        beats = [m for m in aggregator.bus.drain()
                 if m["kind"] == "heartbeat"]
        assert len(beats) == 2
        assert beats[-1]["counters"] == {"sat_validations": 3}

    def test_close_flushes_then_says_bye(self):
        _, _, worker_trace, _, aggregator = make_pair()
        worker_trace.listener.close()
        kinds = [m["kind"] for m in aggregator.bus.drain()]
        assert kinds == ["heartbeat", "bye"]

    def test_broken_queue_never_raises(self):
        class Broken:
            def put_nowait(self, message):
                raise BrokenPipeError

        publisher = WorkerPublisher(Broken(), "w", clock=FakeClock())
        publisher.heartbeat(force=True)
        publisher.close()


class TestLiveAggregator:
    def test_streamed_close_feeds_the_registry(self):
        registry = MetricsRegistry()
        _, _, worker_trace, _, aggregator = make_pair(registry)
        with worker_trace.span("sat.validate"):
            pass
        aggregator.pump()
        (series,) = registry.series("repro_sat_call_seconds")
        assert series.count == 1

    def test_heartbeat_updates_gauges(self):
        registry = MetricsRegistry()
        clock, counters, worker_trace, _, aggregator = make_pair(registry)
        counters.totals = {"plan_evals": 5}
        worker_trace.listener.heartbeat(force=True)
        aggregator.pump()
        (workers,) = registry.series(WORKERS_GAUGE)
        assert workers.value == 1
        (beat,) = registry.series(HEARTBEAT_GAUGE)
        assert beat.value == clock.t

    def test_discard_drops_the_buffer(self):
        """A worker that returns normally grafts via its shipped
        records; the live buffer must vanish without touching the main
        trace."""
        _, _, worker_trace, main, aggregator = make_pair()
        with worker_trace.span("eco.worker"):
            pass
        aggregator.pump()
        aggregator.discard("o1@1")
        assert aggregator.snapshot() == {}
        assert main.spans == []
        assert aggregator.flush_dead("o1@1") == {}

    def test_flush_dead_grafts_closed_and_synthesizes_open(self):
        registry = MetricsRegistry()
        clock, counters, worker_trace, main, aggregator = \
            make_pair(registry)
        counters.totals = {"sat_conflicts_spent": 40, "plan_evals": 7}
        outer = worker_trace.span("eco.worker")
        inner = worker_trace.span("sat.validate")
        clock.t += 2.0
        inner.finish()                               # dies after this
        aggregator.pump()

        totals = aggregator.flush_dead("o1@1")
        assert totals == {"sat_conflicts_spent": 40, "plan_evals": 7}
        names = {s.name: s for s in main.spans}
        assert set(names) == {"eco.worker", "sat.validate"}
        partial = names["eco.worker"]
        assert partial.tags["partial"] is True
        assert partial.tags["worker"] == "o1@1"
        # runs to the last published span activity, not zero
        assert partial.duration == 2.0
        assert "partial" not in names["sat.validate"].tags
        (event,) = [e for e in main.events
                    if e.name == "worker.partial_telemetry"]
        assert event.tags["worker"] == "o1@1"
        assert event.tags["spans"] == 2
        outer.finish()

    def test_flush_dead_unknown_worker_is_empty(self):
        _, _, _, main, aggregator = make_pair()
        assert aggregator.flush_dead("nobody") == {}
        assert main.spans == []

    def test_background_thread_drains_without_pump(self):
        registry = MetricsRegistry()
        _, _, worker_trace, _, aggregator = make_pair(registry)
        aggregator.start()
        try:
            with worker_trace.span("sat.validate"):
                pass
        finally:
            aggregator.stop()
        (series,) = registry.series("repro_sat_call_seconds")
        assert series.count == 1

    def test_snapshot_reports_worker_state(self):
        clock, _, worker_trace, _, aggregator = make_pair()
        worker_trace.span("eco.worker")                # left open
        aggregator.pump()
        clock.t += 3.0
        snap = aggregator.snapshot()
        assert snap["o1@1"]["open_spans"] == 1
        assert snap["o1@1"]["closed_spans"] == 0
        assert snap["o1@1"]["age_s"] == 3.0
        assert snap["o1@1"]["gone"] is False


class TestLiveBus:
    def test_inline_bus_is_a_plain_queue(self):
        bus = LiveBus.create(inline=True)
        assert isinstance(bus.queue, queue.Queue)
        bus.queue.put_nowait({"kind": "heartbeat", "worker": "w"})
        assert len(bus.drain()) == 1
        assert bus.drain() == []
        bus.close()                                   # no-op, no error

    def test_get_times_out_to_none(self):
        bus = LiveBus.create(inline=True)
        assert bus.get(timeout=0.01) is None
