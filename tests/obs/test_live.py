"""Live-bus telemetry: publisher, aggregator, graft reconciliation.

Everything runs on the deterministic inline transport (a plain
``queue.Queue``) with an injected clock; the multiprocessing manager
path is exercised by the parallel-engine integration tests.
"""

import queue

from repro.obs.live import (
    HEARTBEAT_GAUGE,
    WORKERS_GAUGE,
    LiveAggregator,
    LiveBus,
    WorkerPublisher,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Trace


class FakeClock:
    def __init__(self):
        self.t = 100.0

    def __call__(self):
        return self.t


class FakeCounters:
    def __init__(self, **totals):
        self.totals = totals

    def as_dict(self):
        return dict(self.totals)


def make_pair(registry=None):
    """A worker trace publishing onto a bus an aggregator consumes."""
    clock = FakeClock()
    bus = LiveBus.create(inline=True)
    counters = FakeCounters()
    publisher = WorkerPublisher(bus.queue, "o1@1", counters=counters,
                                clock=clock)
    worker_trace = Trace(name="worker", clock=clock)
    worker_trace.listener = publisher
    main = Trace(name="main", clock=clock)
    aggregator = LiveAggregator(main, bus, registry=registry, clock=clock)
    return clock, counters, worker_trace, main, aggregator


class TestWorkerPublisher:
    def test_span_lifecycle_is_published(self):
        _, _, worker_trace, _, aggregator = make_pair()
        with worker_trace.span("sat.validate", result="eq"):
            pass
        messages = aggregator.bus.drain()
        kinds = [m["kind"] for m in messages]
        assert kinds.count("span_open") == 1
        assert kinds.count("span_close") == 1
        close = next(m for m in messages if m["kind"] == "span_close")
        assert close["worker"] == "o1@1"
        assert close["record"]["name"] == "sat.validate"
        assert close["record"]["tags"] == {"result": "eq"}

    def test_heartbeats_are_throttled(self):
        clock, counters, worker_trace, _, aggregator = make_pair()
        counters.totals = {"sat_validations": 3, "zero": 0}
        publisher = worker_trace.listener
        publisher.heartbeat(force=True)
        publisher.heartbeat()                  # same instant: suppressed
        clock.t += 1.0
        publisher.heartbeat()
        beats = [m for m in aggregator.bus.drain()
                 if m["kind"] == "heartbeat"]
        assert len(beats) == 2
        assert beats[-1]["counters"] == {"sat_validations": 3}

    def test_close_flushes_then_says_bye(self):
        _, _, worker_trace, _, aggregator = make_pair()
        worker_trace.listener.close()
        kinds = [m["kind"] for m in aggregator.bus.drain()]
        assert kinds == ["heartbeat", "bye"]

    def test_broken_queue_never_raises(self):
        class Broken:
            def put_nowait(self, message):
                raise BrokenPipeError

        publisher = WorkerPublisher(Broken(), "w", clock=FakeClock())
        publisher.heartbeat(force=True)
        publisher.close()


class TestLiveAggregator:
    def test_streamed_close_feeds_the_registry(self):
        registry = MetricsRegistry()
        _, _, worker_trace, _, aggregator = make_pair(registry)
        with worker_trace.span("sat.validate"):
            pass
        aggregator.pump()
        (series,) = registry.series("repro_sat_call_seconds")
        assert series.count == 1

    def test_heartbeat_updates_gauges(self):
        registry = MetricsRegistry()
        clock, counters, worker_trace, _, aggregator = make_pair(registry)
        counters.totals = {"plan_evals": 5}
        worker_trace.listener.heartbeat(force=True)
        aggregator.pump()
        (workers,) = registry.series(WORKERS_GAUGE)
        assert workers.value == 1
        (beat,) = registry.series(HEARTBEAT_GAUGE)
        assert beat.value == clock.t

    def test_discard_drops_the_buffer(self):
        """A worker that returns normally grafts via its shipped
        records; the live buffer must vanish without touching the main
        trace."""
        _, _, worker_trace, main, aggregator = make_pair()
        with worker_trace.span("eco.worker"):
            pass
        aggregator.pump()
        aggregator.discard("o1@1")
        assert aggregator.snapshot() == {}
        assert main.spans == []
        assert aggregator.flush_dead("o1@1") == {}

    def test_flush_dead_grafts_closed_and_synthesizes_open(self):
        registry = MetricsRegistry()
        clock, counters, worker_trace, main, aggregator = \
            make_pair(registry)
        counters.totals = {"sat_conflicts_spent": 40, "plan_evals": 7}
        outer = worker_trace.span("eco.worker")
        inner = worker_trace.span("sat.validate")
        clock.t += 2.0
        inner.finish()                               # dies after this
        aggregator.pump()

        totals = aggregator.flush_dead("o1@1")
        assert totals == {"sat_conflicts_spent": 40, "plan_evals": 7}
        names = {s.name: s for s in main.spans}
        assert set(names) == {"eco.worker", "sat.validate"}
        partial = names["eco.worker"]
        assert partial.tags["partial"] is True
        assert partial.tags["worker"] == "o1@1"
        # runs to the last published span activity, not zero
        assert partial.duration == 2.0
        assert "partial" not in names["sat.validate"].tags
        (event,) = [e for e in main.events
                    if e.name == "worker.partial_telemetry"]
        assert event.tags["worker"] == "o1@1"
        assert event.tags["spans"] == 2
        outer.finish()

    def test_flush_dead_unknown_worker_is_empty(self):
        _, _, _, main, aggregator = make_pair()
        assert aggregator.flush_dead("nobody") == {}
        assert main.spans == []

    def test_background_thread_drains_without_pump(self):
        registry = MetricsRegistry()
        _, _, worker_trace, _, aggregator = make_pair(registry)
        aggregator.start()
        try:
            with worker_trace.span("sat.validate"):
                pass
        finally:
            aggregator.stop()
        (series,) = registry.series("repro_sat_call_seconds")
        assert series.count == 1

    def test_snapshot_reports_worker_state(self):
        clock, _, worker_trace, _, aggregator = make_pair()
        worker_trace.span("eco.worker")                # left open
        aggregator.pump()
        clock.t += 3.0
        snap = aggregator.snapshot()
        assert snap["o1@1"]["open_spans"] == 1
        assert snap["o1@1"]["closed_spans"] == 0
        assert snap["o1@1"]["age_s"] == 3.0
        assert snap["o1@1"]["gone"] is False


class TestLiveBus:
    def test_inline_bus_is_a_plain_queue(self):
        bus = LiveBus.create(inline=True)
        assert isinstance(bus.queue, queue.Queue)
        bus.queue.put_nowait({"kind": "heartbeat", "worker": "w"})
        assert len(bus.drain()) == 1
        assert bus.drain() == []
        bus.close()                                   # no-op, no error

    def test_get_times_out_to_none(self):
        bus = LiveBus.create(inline=True)
        assert bus.get(timeout=0.01) is None


class TestFlushDeadRaces:
    """``flush_dead`` vs. the pump thread: the graft must happen at
    most once however the two interleave (the PR's stress satellite)."""

    def _open_message(self, i, worker="w1"):
        return {"kind": "span_open", "worker": worker, "id": i,
                "parent": None, "name": f"sat.validate{i % 3}",
                "ts": float(i), "tags": {}}

    def test_flush_dead_races_pump_thread(self):
        from repro.runtime.sync import make_thread

        for trial in range(10):
            trace = Trace(name=f"stress-{trial}")
            bus = LiveBus(queue.Queue())
            agg = LiveAggregator(trace, bus).start()
            opens = 30

            def produce():
                for i in range(1, opens + 1):
                    bus.queue.put_nowait(self._open_message(i))

            producer = make_thread(produce,
                                   name=f"stress-producer-{trial}")
            producer.start()
            agg.flush_dead("w1")   # races the producer + pump thread
            agg.flush_dead("w1")   # and reconciliation is idempotent
            producer.join(timeout=10.0)
            assert not producer.is_alive()
            agg.stop()

            partial_events = [e for e in trace.events
                              if e.name == "worker.partial_telemetry"]
            assert len(partial_events) <= 1
            partial_ids = [sp.tags.get("worker")
                           for sp in trace.spans
                           if sp.tags.get("partial")]
            assert len(partial_ids) <= opens
            # late messages must not resurrect the flushed worker
            assert "w1" not in agg.snapshot()

    def test_finalized_worker_ignores_late_messages(self):
        trace = Trace(name="late")
        bus = LiveBus(queue.Queue())
        agg = LiveAggregator(trace, bus)
        bus.queue.put_nowait(self._open_message(1))
        agg.pump()
        flushed = agg.flush_dead("w1")
        assert flushed == {}
        spans_after_flush = len(trace.spans)
        # a message that was in flight when the worker was declared
        # dead arrives now: it must be dropped, not re-buffered
        bus.queue.put_nowait(self._open_message(2))
        agg.pump()
        assert "w1" not in agg.snapshot()
        assert agg.flush_dead("w1") == {}
        assert len(trace.spans) == spans_after_flush

    def test_retry_attempt_worker_ids_are_distinct(self):
        # the engine keys workers as "<targets>@<attempt>", so a
        # retried partition publishes under a fresh id and is not
        # silenced by its dead predecessor's tombstone
        trace = Trace(name="retry")
        bus = LiveBus(queue.Queue())
        agg = LiveAggregator(trace, bus)
        bus.queue.put_nowait(self._open_message(1, worker="o1@0"))
        agg.pump()
        agg.flush_dead("o1@0")
        bus.queue.put_nowait(self._open_message(2, worker="o1@1"))
        agg.pump()
        assert "o1@1" in agg.snapshot()
