"""Exporter tests: JSONL / Chrome round-trips and the metrics snapshot."""

import json

import pytest

from repro.obs.export import (
    chrome_payload,
    prometheus_text,
    read_trace,
    write_chrome,
    write_jsonl,
    write_prometheus,
)
from repro.obs.trace import Trace


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


@pytest.fixture
def sample_trace():
    clock = FakeClock()
    trace = Trace(name="sample", clock=clock)
    with trace.span("root", impl="sample"):
        clock.t = 0.25
        with trace.span("work", output="o1") as sp:
            clock.t = 0.75
            trace.event("hiccup", reason="test")
            sp.tag(result="ok")
        clock.t = 1.0
    trace.meta.update(counters={"sat_conflicts_spent": 3}, degraded=False)
    return trace


class TestJsonl:
    def test_round_trip(self, sample_trace, tmp_path):
        path = str(tmp_path / "t.jsonl")
        write_jsonl(sample_trace, path)
        assert read_trace(path) == json.loads(
            json.dumps(sample_trace.records()))

    def test_one_record_per_line(self, sample_trace, tmp_path):
        path = str(tmp_path / "t.jsonl")
        write_jsonl(sample_trace, path)
        lines = open(path).read().strip().splitlines()
        assert len(lines) == len(sample_trace.records())
        assert json.loads(lines[0])["type"] == "meta"


class TestChrome:
    def test_payload_shape(self, sample_trace):
        payload = chrome_payload(sample_trace)
        assert payload["displayTimeUnit"] == "ms"
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        instants = [e for e in payload["traceEvents"] if e["ph"] == "i"]
        assert len(complete) == 2
        assert len(instants) == 1
        work = next(e for e in complete if e["name"] == "work")
        assert work["ts"] == pytest.approx(0.25e6)  # microseconds
        assert work["dur"] == pytest.approx(0.5e6)
        assert work["args"]["tags"] == {"output": "o1", "result": "ok"}

    def test_file_is_single_valid_json(self, sample_trace, tmp_path):
        path = str(tmp_path / "t.json")
        write_chrome(sample_trace, path)
        payload = json.loads(open(path).read())
        assert "traceEvents" in payload
        assert payload["otherData"]["name"] == "sample"

    def test_round_trip_preserves_structure(self, sample_trace, tmp_path):
        path = str(tmp_path / "t.json")
        write_chrome(sample_trace, path)
        records = read_trace(path)
        direct = sample_trace.records()
        assert [r["type"] for r in records] == [r["type"] for r in direct]
        spans = [r for r in records if r["type"] == "span"]
        by_name = {s["name"]: s for s in spans}
        assert by_name["work"]["parent"] == by_name["root"]["id"]
        assert by_name["work"]["ts"] == pytest.approx(0.25)
        assert by_name["work"]["dur"] == pytest.approx(0.5)
        (event,) = [r for r in records if r["type"] == "event"]
        assert event["name"] == "hiccup"
        assert event["span"] == by_name["work"]["id"]


class TestPrometheus:
    def test_snapshot_contents(self, sample_trace, tmp_path):
        text = prometheus_text(sample_trace)
        assert '# TYPE repro_phase_seconds_total counter' in text
        assert 'repro_phase_calls_total{phase="root"} 1' in text
        assert 'repro_phase_calls_total{phase="root/work"} 1' in text
        assert 'repro_run_degraded 0' in text
        assert ('repro_run_counter_total{counter="sat_conflicts_spent"} 3'
                in text)
        path = str(tmp_path / "m.prom")
        write_prometheus(sample_trace, path)
        assert open(path).read() == text

    def test_label_escaping(self):
        clock = FakeClock()
        trace = Trace(name='we"ird\\name', clock=clock)
        with trace.span('we"ird\\name'):
            clock.t = 1.0
        text = prometheus_text(trace)
        assert 'phase="we\\"ird\\\\name"' in text


class TestReadTrace:
    def test_unknown_lines_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "meta", "name": "x"}\nnot json\n')
        with pytest.raises(json.JSONDecodeError):
            read_trace(str(path))
